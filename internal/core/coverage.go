package core

// SRAC clause coverage: with coverage enabled, every spatial prefix
// evaluation also records, per subformula of the permission's
// constraint, how often the clause was evaluated, what it evaluated
// to, and how often it was DECISIVE — the clause srac.Attribute blames
// the whole verdict on. Aggregated over traffic this exposes dead
// clauses (never evaluated, or never decisive) that a policy author
// can tighten or delete; /debug/coverage serves it and the federate
// poller folds it across the coalition.

import (
	"sort"

	"stac/internal/model"
	"stac/internal/obs/perf"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/trace"
)

// covKey addresses one clause of one permission's spatial constraint.
type covKey struct {
	perm rbac.PermID
	path string
}

// covStripes shards the coverage cells by permission hash. Eight
// stripes keeps hot permissions on distinct mutexes; each stripe is a
// perf.Mutex, instrumented as coverage_00..coverage_07 alongside the
// engine's other stripes.
const covStripes = 8

// covStripe is one hashed slice of the coverage cell table.
type covStripe struct {
	mu    perf.Mutex
	cells map[covKey]*covCell
}

// covStripeFor hashes a permission onto its coverage stripe (FNV-1a).
func (e *Engine) covStripeFor(perm rbac.PermID) *covStripe {
	h := uint32(2166136261)
	for i := 0; i < len(perm); i++ {
		h ^= uint32(perm[i])
		h *= 16777619
	}
	return &e.cov[h%covStripes]
}

// covCell accumulates one clause's outcomes; guarded by its stripe's
// mutex.
type covCell struct {
	clause    string
	evaluated int64
	satisfied int64
	violated  int64
	pending   int64
	decisive  int64
}

// ClauseCoverage is the exported per-clause tally (one row of
// /debug/coverage).
type ClauseCoverage struct {
	// Perm and Path address the clause; Clause is its concrete syntax
	// (from the policy's unstamped constraint, so rows are comparable
	// across objects and members).
	Perm   string `json:"perm"`
	Path   string `json:"path"`
	Clause string `json:"clause"`
	// Evaluated counts prefix evaluations that reached the clause;
	// Satisfied/Violated/Pending split them by outcome; Decisive
	// counts evaluations whose whole-constraint verdict was attributed
	// to this clause.
	Evaluated int64 `json:"evaluated"`
	Satisfied int64 `json:"satisfied"`
	Violated  int64 `json:"violated"`
	Pending   int64 `json:"pending"`
	Decisive  int64 `json:"decisive"`
}

// Dead reports whether the clause never decided anything: either no
// evaluation ever reached it, or it was never the decisive clause.
func (c ClauseCoverage) Dead() bool { return c.Decisive == 0 }

// EnableCoverage turns on clause-coverage accounting and pre-seeds a
// cell for every clause of every registered permission, so clauses
// that never get evaluated still appear (with zero counts) — absence
// of evidence is the finding, not a missing row.
func (e *Engine) EnableCoverage() {
	e.policyMu.RLock()
	specs := make([]PermSpec, 0, len(e.specs))
	for _, ps := range e.specs {
		specs = append(specs, ps)
	}
	e.policyMu.RUnlock()
	for _, ps := range specs {
		e.seedCoverage(ps)
	}
	e.covEnabled.Store(true)
}

// CoverageEnabled reports whether clause coverage is being recorded.
func (e *Engine) CoverageEnabled() bool { return e.covEnabled.Load() }

func (e *Engine) seedCoverage(ps PermSpec) {
	if ps.Spatial == nil {
		return
	}
	st := e.covStripeFor(ps.Perm.ID)
	st.mu.Lock()
	defer st.mu.Unlock()
	srac.WalkPaths(ps.Spatial, func(path string, c srac.Constraint) {
		key := covKey{perm: ps.Perm.ID, path: path}
		if _, ok := st.cells[key]; !ok {
			st.cells[key] = &covCell{clause: srac.String(c)}
		}
	})
}

// Coverage returns the per-clause tallies, sorted by permission then
// clause path (parents before children).
func (e *Engine) Coverage() []ClauseCoverage {
	var out []ClauseCoverage
	for i := range e.cov {
		st := &e.cov[i]
		st.mu.Lock()
		for key, cell := range st.cells {
			out = append(out, ClauseCoverage{
				Perm:      string(key.perm),
				Path:      key.path,
				Clause:    cell.clause,
				Evaluated: cell.evaluated,
				Satisfied: cell.satisfied,
				Violated:  cell.violated,
				Pending:   cell.pending,
				Decisive:  cell.decisive,
			})
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Perm != out[j].Perm {
			return out[i].Perm < out[j].Perm
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// applyCoverage folds one evaluation's node outcomes into the cells.
// Clause text comes from the policy's unstamped constraint resolved
// by path, NOT the stamped evaluation tree, so one row covers every
// requesting object.
func (e *Engine) applyCoverage(perm rbac.PermID, unstamped srac.Constraint, nodes []srac.NodeCoverage) {
	st := e.covStripeFor(perm)
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, n := range nodes {
		key := covKey{perm: perm, path: n.Path}
		cell, ok := st.cells[key]
		if !ok {
			cell = &covCell{}
			if c, found := srac.SubclauseAt(unstamped, n.Path); found {
				cell.clause = srac.String(c)
			}
			st.cells[key] = cell
		}
		cell.evaluated++
		switch n.Status {
		case srac.Satisfied:
			cell.satisfied++
		case srac.Violated:
			cell.violated++
		default:
			cell.pending++
		}
		if n.Decisive {
			cell.decisive++
		}
	}
}

// coverScan records coverage for a scan-path evaluation: the stamped
// constraint against the hypothetical post-state history. The
// detail-free leaf evaluator decides identically to the explaining
// one; coverage only keeps (Status, Stable, Decisive), so the detail
// strings would be formatted and dropped.
func (e *Engine) coverScan(perm rbac.PermID, unstamped, stamped srac.Constraint, hyp trace.Trace, oracle srac.ProofOracle) {
	nodes, _ := srac.Cover(stamped, srac.PlainTraceLeafEval(hyp, oracle))
	e.applyCoverage(perm, unstamped, nodes)
}

// countSnapshot snapshots, under the counter read-lock, the observed
// count of every counting atom in the stamped constraint including
// the hypothetical requested access. Coverage and cost walks then run
// lock-free over the snapshot, so e.cntMu and the coverage/cost
// stripes are never held together.
func (e *Engine) countSnapshot(stamped srac.Constraint, hyp model.Access) map[string]int {
	counts := make(map[string]int)
	e.cntMu.RLock()
	srac.Walk(stamped, func(c srac.Constraint) bool {
		if cnt, ok := c.(srac.Count); ok {
			n := e.countForLocked(cnt.Sel)
			if cnt.Sel.SelectAccess(hyp) {
				n++
			}
			counts[selKey(cnt.Sel)] = n
		}
		return true
	})
	e.cntMu.RUnlock()
	return counts
}

// coverIncremental records coverage for a counter-path evaluation.
func (e *Engine) coverIncremental(perm rbac.PermID, unstamped, stamped srac.Constraint, hyp model.Access) {
	counts := e.countSnapshot(stamped, hyp)
	nodes, _ := srac.Cover(stamped, srac.PlainCountLeafEval(func(x srac.Count) int {
		return counts[selKey(x.Sel)]
	}))
	e.applyCoverage(perm, unstamped, nodes)
}
