package core

import (
	"time"

	"stac/internal/obs"
)

// DenyReason is the machine-readable classification of a denial — the
// label the decision-path metrics and the audit trail share, so a
// security officer can go from a counter spike to the matching audit
// records without parsing prose.
type DenyReason string

// Denial classes, in the order Authorize checks them.
const (
	// DenyNone marks a granted decision.
	DenyNone DenyReason = ""
	// DenyNoSession: the request carried no authenticated session.
	DenyNoSession DenyReason = "no_session"
	// DenyInvalidAccess: the requested access failed validation.
	DenyInvalidAccess DenyReason = "invalid_access"
	// DenyRBAC: no active role confers a covering permission.
	DenyRBAC DenyReason = "rbac"
	// DenyProgram: the declared program can never satisfy the spatial
	// constraint (check(P, C) returned NoTrace).
	DenyProgram DenyReason = "program_rejected"
	// DenySpatialViolated: the post-state history irreversibly
	// violates the spatial constraint.
	DenySpatialViolated DenyReason = "spatial_violated"
	// DenySpatialStrict: the constraint is not yet satisfied and the
	// permission demands strict (already-satisfied) enforcement.
	DenySpatialStrict DenyReason = "spatial_strict"
	// DenyTemporalExhausted: the permission is active but its validity
	// budget is spent (Expression 4.1).
	DenyTemporalExhausted DenyReason = "temporal_exhausted"
	// DenyTemporalInactive: the permission is not temporally active.
	DenyTemporalInactive DenyReason = "temporal_inactive"
)

// denyReasons enumerates every class so the counters exist (at zero)
// from the first scrape.
var denyReasons = []DenyReason{
	DenyNoSession, DenyInvalidAccess, DenyRBAC, DenyProgram,
	DenySpatialViolated, DenySpatialStrict,
	DenyTemporalExhausted, DenyTemporalInactive,
}

// authzBuckets resolve the in-process decision cost (single-digit µs
// on the E4 hot path) up through ledger-scan outliers.
var authzBuckets = []float64{
	500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 25e-6,
	100e-6, 500e-6, 2.5e-3, 10e-3, 50e-3,
}

// engineMetrics holds the engine's resolved metric handles. Handles
// are resolved once (at engine construction or SetObs), so the
// Authorize hot path only touches atomics.
type engineMetrics struct {
	reg         *obs.Registry
	granted     *obs.Counter
	denied      map[DenyReason]*obs.Counter
	authorize   *obs.Histogram
	prefixEval  *obs.Histogram
	staticCheck *obs.Histogram
	// batchSize distributes AuthorizeMany batch sizes (a value
	// histogram: buckets are request counts, not seconds) and
	// batchInflight gauges how many batches are currently decoding —
	// together they show whether batching is actually amortising the
	// per-request overhead or queueing behind the engine.
	batchSize     *obs.Histogram
	batchInflight *obs.Gauge
}

// batchBuckets span AuthorizeMany batch sizes.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

func newEngineMetrics(r *obs.Registry) *engineMetrics {
	m := &engineMetrics{
		reg: r,
		granted: r.Counter("stac_authz_granted_total", "",
			"Authorization decisions that granted the access."),
		denied: make(map[DenyReason]*obs.Counter, len(denyReasons)),
		authorize: r.Histogram("stac_authz_seconds", "",
			"End-to-end Engine.Authorize latency.", authzBuckets),
		prefixEval: r.Histogram("stac_authz_prefix_eval_seconds", "",
			"Spatial prefix-evaluation latency (scan or incremental path).", authzBuckets),
		staticCheck: r.Histogram("stac_authz_static_check_seconds", "",
			"check(P, C) static program-check latency.", authzBuckets),
		batchSize: r.Histogram("stac_authz_batch_size", "",
			"AuthorizeMany batch sizes (requests per call).", batchBuckets),
		batchInflight: r.Gauge("stac_authz_batch_inflight", "",
			"AuthorizeMany batches currently executing."),
	}
	// Decision-latency exemplars: each bucket of the authorize
	// histogram retains the decision ID (and trace ID when sampled) of
	// a recent bucket-max observation, so a p99 cell links to a
	// replayable decision.
	m.authorize.EnableExemplars(0)
	for _, reason := range denyReasons {
		m.denied[reason] = r.Counter("stac_authz_denied_total",
			obs.Label("reason", string(reason)),
			"Authorization denials by reason class.")
	}
	return m
}

// captureExemplar retains slow decisions in the authorize histogram's
// exemplar slots, minting the decision ID lazily — only observations
// that claim a slot (rare, by construction the slowest recent one per
// bucket) pay the allocation, so the unsampled hot path stays
// ID-free.
func (m *engineMetrics) captureExemplar(d *Decision, elapsed time.Duration, tc obs.TraceContext) {
	if !m.authorize.ExemplarQualifies(elapsed) {
		return
	}
	if d.ID == "" {
		d.ID = obs.NewDecisionID()
	}
	traceID := ""
	if tc.Valid() {
		traceID = tc.Trace.String()
	}
	m.authorize.RecordExemplar(elapsed, d.ID, traceID)
}

// DecisionExemplars returns the engine's currently retained decision
// latency exemplars, ordered by bucket.
func (e *Engine) DecisionExemplars() []obs.Exemplar {
	return e.met.Load().authorize.Exemplars()
}

// recordDecision classifies one finished decision.
func (m *engineMetrics) recordDecision(d Decision, elapsed time.Duration) {
	m.authorize.Observe(elapsed)
	if d.Granted {
		m.granted.Inc()
		return
	}
	if c, ok := m.denied[d.Deny]; ok {
		c.Inc()
		return
	}
	// An unclassified denial still counts (future-proofing).
	m.reg.Counter("stac_authz_denied_total", obs.Label("reason", "other"),
		"Authorization denials by reason class.").Inc()
}
