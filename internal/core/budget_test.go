package core

import (
	"math"
	"testing"

	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/temporal"
)

// TestSampleBudgetsTracksConsumption pins the sampled quantities
// against the tracker arithmetic under a deterministic clock: a
// permission with a 100 s budget, continuously active, burns at
// exactly 1 s/s.
func TestSampleBudgetsTracksConsumption(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 100, temporal.GlobalBase)
	reg := obs.NewRegistry()
	e.SetObs(reg)
	e.ActivatePermissions(sess, "o1")

	first := e.SampleBudgets(0)
	if len(first) != 1 {
		t.Fatalf("budgets = %+v", first)
	}
	if b := first[0]; b.Object != "o1" || b.Perm != "p-read-f1" ||
		b.Consumed != 0 || b.Budget != 100 || b.Remaining != 100 ||
		b.ETA != -1 || b.Scheme != "global" || b.State != "valid" {
		t.Fatalf("first sample = %+v", b)
	}

	clk.Advance(40)
	second := e.SampleBudgets(-1)
	b := second[0]
	if b.Consumed != 40 || b.Remaining != 60 {
		t.Fatalf("second sample = %+v", b)
	}
	if b.BurnRate != 1 {
		t.Fatalf("burn rate = %g, want 1 (continuously active)", b.BurnRate)
	}
	if b.ETA != 60 {
		t.Fatalf("eta = %g, want 60", b.ETA)
	}
	if len(b.Series) != 2 || b.Series[0].Value != 0 || b.Series[1].Value != 40 {
		t.Fatalf("series = %+v", b.Series)
	}

	// Gauges mirror the latest sample in the engine's registry.
	lbl := obs.Labels(obs.Label("object", "o1"), obs.Label("perm", "p-read-f1"))
	if v := reg.FloatGaugeValue("stac_budget_consumed_seconds", lbl); v != 40 {
		t.Fatalf("consumed gauge = %g", v)
	}
	if v := reg.FloatGaugeValue("stac_budget_eta_seconds", lbl); v != 60 {
		t.Fatalf("eta gauge = %g", v)
	}
}

// TestBudgetETAPredictsDenialTime is the acceptance check: under a
// deterministic clock, the time-to-exhaustion estimate names the
// actual instant the engine starts denying for temporal exhaustion.
func TestBudgetETAPredictsDenialTime(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 100, temporal.GlobalBase)
	e.SetObs(obs.NewRegistry())
	e.ActivatePermissions(sess, "o1")
	a := model.NewAccess("o1", "read", "f1", "s1")

	// Burn 30 s of budget, sampling as a daemon would.
	e.SampleBudgets(0)
	clk.Advance(10)
	e.SampleBudgets(0)
	clk.Advance(20)
	st := e.SampleBudgets(0)[0]
	if st.BurnRate != 1 {
		t.Fatalf("burn rate = %g", st.BurnRate)
	}
	predicted := st.At + st.ETA // absolute predicted exhaustion time

	// Walk the clock forward and find the actual denial instant.
	for clk.Now() < predicted-1e-9 {
		if d := e.Authorize(req(sess, a)); !d.Granted {
			t.Fatalf("denied at t=%g, before predicted exhaustion %g: %s", clk.Now(), predicted, d)
		}
		clk.Advance(5)
	}
	clk.Advance(1)
	d := e.Authorize(req(sess, a))
	if d.Granted || d.Deny != DenyTemporalExhausted {
		t.Fatalf("decision after predicted exhaustion = %+v", d)
	}
	actual := clk.Now()
	if diff := math.Abs(actual - predicted); diff > 1+1e-9 {
		t.Fatalf("denial at t=%g vs predicted %g (|diff| = %g beyond stepping tolerance)",
			actual, predicted, diff)
	}
	if x := d.Explanation; x == nil || x.Temporal == nil || x.Temporal.Consumed != 100 {
		t.Fatalf("explanation = %+v", x)
	}

	// Post-exhaustion samples report a spent budget with ETA 0.
	st = e.SampleBudgets(0)[0]
	if st.Remaining != 0 || st.ETA != 0 || st.State != "active-but-invalid" {
		t.Fatalf("post-exhaustion sample = %+v", st)
	}
	if st.Exhausting(10) != true {
		t.Fatal("Exhausting(10) = false at ETA 0")
	}
}

// TestSampleBudgetsIdleAndInfinite: an inactive permission burns
// nothing (rate 0, no ETA), and time-insensitive permissions carry no
// budget to sample.
func TestSampleBudgetsIdleAndInfinite(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 50, temporal.PerServerBase)
	e.SetObs(obs.NewRegistry())
	e.ActivatePermissions(sess, "o1")
	clk.Advance(5)
	e.DeactivatePermissions(sess, "o1")

	e.SampleBudgets(0)
	clk.Advance(100)
	st := e.SampleBudgets(0)[0]
	if st.Consumed != 5 || st.State != "inactive" || st.Scheme != "per-server" {
		t.Fatalf("idle sample = %+v", st)
	}
	if st.BurnRate != 0 || st.ETA != -1 {
		t.Fatalf("idle burn = %+v", st)
	}
	if st.Exhausting(1e9) {
		t.Fatal("idle budget reported as exhausting")
	}

	// An unconstrained (infinite-duration) permission never shows up.
	e2, sess2, _ := testEngine(t, nil, 0, temporal.GlobalBase)
	e2.SetObs(obs.NewRegistry())
	e2.ActivatePermissions(sess2, "o1")
	if got := e2.SampleBudgets(0); len(got) != 0 {
		t.Fatalf("infinite-budget trackers sampled: %+v", got)
	}
}

// TestSampleBudgetsTailBounds checks the tail argument contract.
func TestSampleBudgetsTailBounds(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 1000, temporal.GlobalBase)
	e.SetObs(obs.NewRegistry())
	e.ActivatePermissions(sess, "o1")
	for i := 0; i < 5; i++ {
		e.SampleBudgets(0)
		clk.Advance(1)
	}
	if st := e.SampleBudgets(0)[0]; len(st.Series) != 0 {
		t.Fatalf("tail 0 kept series: %+v", st.Series)
	}
	if st := e.SampleBudgets(2)[0]; len(st.Series) != 2 {
		t.Fatalf("tail 2 series = %+v", st.Series)
	}
	if st := e.SampleBudgets(-1)[0]; len(st.Series) != 8 {
		t.Fatalf("full series = %d samples, want 8", len(st.Series))
	}
}
