package core

// Engine-level boundary tests for the temporal constraint: the access
// at which the accumulated valid time reaches dur(perm) EXACTLY is
// the first denied one, under both base-time schemes.

import (
	"strings"
	"testing"

	"stac/internal/model"
	"stac/internal/temporal"
)

func TestAuthorizeExactBudgetBoundaryGlobal(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 10, temporal.GlobalBase)
	a := model.NewAccess("o1", "read", "f1", "s1")
	e.ObjectArrived("o1", "s1")
	e.ActivatePermissions(sess, "o1")

	clk.Advance(9.999999)
	if d := e.Authorize(req(sess, a)); !d.Granted {
		t.Fatalf("denied strictly inside the budget: %s", d)
	}
	clk.Advance(0.000001) // now exactly dur(perm) accumulated
	d := e.Authorize(req(sess, a))
	if d.Granted {
		t.Fatal("granted at the exact budget boundary")
	}
	if d.Temporal != temporal.ActiveInvalid || !strings.Contains(d.Reason, "active-but-invalid") {
		t.Fatalf("boundary decision = %+v", d)
	}
	if got := e.RemainingValidity("o1", "p-read-f1"); got != 0 {
		t.Fatalf("remaining validity at boundary = %v, want exactly 0", got)
	}
}

func TestAuthorizeExactBudgetPerServerRegainsOnMigration(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 10, temporal.PerServerBase)
	e.ObjectArrived("o1", "s1")
	e.ActivatePermissions(sess, "o1")
	clk.Advance(10) // the per-server budget is spent to the instant
	if d := e.Authorize(req(sess, model.NewAccess("o1", "read", "f1", "s1"))); d.Granted {
		t.Fatal("granted at the exact per-server boundary")
	}

	// Migrating at that very instant opens a fresh epoch with the
	// full budget on the new server.
	e.ObjectArrived("o1", "s2")
	e.ActivatePermissions(sess, "o1")
	if got := e.RemainingValidity("o1", "p-read-f1"); got != 10 {
		t.Fatalf("remaining after migration = %v, want the full budget", got)
	}
	if d := e.Authorize(req(sess, model.NewAccess("o1", "read", "f1", "s2"))); !d.Granted {
		t.Fatalf("denied after per-server epoch reset: %s", d)
	}
	clk.Advance(10) // and the new epoch expires at its own boundary
	if d := e.Authorize(req(sess, model.NewAccess("o1", "read", "f1", "s2"))); d.Granted {
		t.Fatal("granted at the second epoch's exact boundary")
	}
}

func TestAuthorizeExactBudgetGlobalDeniesAfterMigration(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 10, temporal.GlobalBase)
	e.ObjectArrived("o1", "s1")
	e.ActivatePermissions(sess, "o1")
	clk.Advance(6)
	e.ObjectArrived("o1", "s2") // t_b stays the first arrival
	e.ActivatePermissions(sess, "o1")
	clk.Advance(4) // 6 + 4 == dur(perm) exactly
	d := e.Authorize(req(sess, model.NewAccess("o1", "read", "f1", "s2")))
	if d.Granted {
		t.Fatal("granted at the exact global boundary after migration")
	}
	if got := e.RemainingValidity("o1", "p-read-f1"); got != 0 {
		t.Fatalf("remaining after migration = %v, want exactly 0", got)
	}
}
