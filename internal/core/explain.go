package core

import (
	"fmt"
	"strings"

	"stac/internal/srac"
)

// Explanation is the machine-readable "why" of a denial, attached to
// the Decision and carried into the audit log: the specific SRAC
// subformula that evaluated Violated (with the window state of every
// counting atom inside it), or the temporal budget arithmetic that
// exhausted the permission. Constraint renderings use the concrete
// SRAC syntax, so an explanation round-trips through JSON without
// losing the formula.
type Explanation struct {
	// Constraint is the permission's whole spatial constraint ("" when
	// the denial was not spatial).
	Constraint string `json:"constraint,omitempty"`
	// Clause is the attributed subformula — the smallest part of
	// Constraint whose violation forced the denial.
	Clause string `json:"clause,omitempty"`
	// Detail is the one-line human reading of why Clause has its
	// status (e.g. "count 3 exceeds ceiling 2 of window [0,2] ...").
	Detail string `json:"detail,omitempty"`
	// Counts is the [m,n] window state of every counting atom inside
	// Clause (Max -1 = unbounded).
	Counts []srac.CountWindow `json:"counts,omitempty"`
	// Temporal is set for temporal denials: the Expression 4.1 budget
	// arithmetic at decision time.
	Temporal *TemporalExplanation `json:"temporal,omitempty"`
}

// TemporalExplanation is the budget state behind a temporal verdict:
// consumed valid duration vs. dur(perm), under the permission's
// base-time scheme.
type TemporalExplanation struct {
	// Consumed is the accumulated valid duration in seconds.
	Consumed float64 `json:"consumed_seconds"`
	// Budget is dur(perm) in seconds (-1 = time-insensitive).
	Budget float64 `json:"budget_seconds"`
	// Remaining is the unused validity in seconds.
	Remaining float64 `json:"remaining_seconds"`
	// Scheme names the base-time scheme (global or per-server).
	Scheme string `json:"scheme"`
}

// String renders the explanation on one line for logs and transcripts.
func (ex *Explanation) String() string {
	if ex == nil {
		return ""
	}
	var b strings.Builder
	if ex.Clause != "" {
		fmt.Fprintf(&b, "violated clause: %s", ex.Clause)
	}
	if ex.Detail != "" {
		if b.Len() > 0 {
			b.WriteString(" — ")
		}
		b.WriteString(ex.Detail)
	}
	for _, cw := range ex.Counts {
		fmt.Fprintf(&b, "; %s", cw)
	}
	if ex.Temporal != nil {
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "temporal budget: consumed %.6gs of %.6gs (%.6gs remaining, scheme %s)",
			ex.Temporal.Consumed, ex.Temporal.Budget, ex.Temporal.Remaining, ex.Temporal.Scheme)
	}
	return b.String()
}

// spatialExplanation converts a violation attribution into a decision
// explanation.
func spatialExplanation(whole srac.Constraint, a srac.Attribution) *Explanation {
	return &Explanation{
		Constraint: srac.String(whole),
		Clause:     a.ClauseString(),
		Detail:     a.Detail,
		Counts:     a.Counts,
	}
}
