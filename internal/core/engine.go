// Package core implements the paper's primary contribution: the
// coordinated spatio-temporal access control model. It extends the
// RBAC substrate so that a permission is granted to a mobile object
// iff
//
//   - Expression 3.1 (spatial): some role active in the object's
//     session confers the permission AND the object's program and
//     proof-backed access history satisfy the permission's SRAC
//     constraint, and
//   - Expression 4.1 (temporal): the permission is in the valid state
//     — the accumulated valid duration since the base time does not
//     exceed the permission's validity duration, under either the
//     per-server or the global base-time scheme.
//
// The Engine is the decision point coalition servers consult from
// their SecurityManager on every shared-resource access request.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"stac/internal/hlc"
	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/obs/cost"
	"stac/internal/obs/perf"
	"stac/internal/obs/record"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/sral"
	"stac/internal/temporal"
	"stac/internal/trace"
)

// SpatialMode selects the enforcement reading of Definition 3.7 for a
// permission's spatial constraint.
type SpatialMode int

// Spatial enforcement modes.
const (
	// Admissible (the default) grants unless the post-state history
	// irreversibly violates the constraint: a not-yet-witnessed
	// required access or ordering is merely pending and the program
	// still has the chance to satisfy it. This is the right reading
	// for liveness-style obligations.
	Admissible SpatialMode = iota
	// Strict requires the post-state history to ALREADY satisfy the
	// constraint (Definition 3.6 on the executed trace). This gates
	// accesses on prior actions — e.g. "o2 may read the plan only
	// after companion o1 uploaded the key" — and is the reading for
	// safety-style pre-conditions.
	Strict
)

// String implements fmt.Stringer.
func (m SpatialMode) String() string {
	if m == Strict {
		return "strict"
	}
	return "admissible"
}

// PermSpec attaches the spatio-temporal extension to an RBAC
// permission: the spatial SRAC constraint and the validity duration
// with its base-time scheme.
type PermSpec struct {
	Perm rbac.Permission
	// Spatial is the SRAC constraint associated with the permission;
	// nil means T (no spatial requirement).
	Spatial srac.Constraint
	// Mode selects the enforcement reading of Spatial.
	Mode SpatialMode
	// Duration is dur(perm) in seconds; temporal.Infinite (the
	// default when zero) marks a time-insensitive permission.
	Duration float64
	// Scheme selects the base time t_b (global or per-server).
	Scheme temporal.Scheme
}

func (ps PermSpec) duration() float64 {
	if ps.Duration == 0 {
		return temporal.Infinite
	}
	return ps.Duration
}

// Request is one shared-resource access request by a mobile object.
type Request struct {
	// Session is the subject established for the object at the
	// current server.
	Session *rbac.Session
	// Access is the requested access (object stamped).
	Access model.Access
	// Program is the object's declared SRAL program; when non-nil the
	// engine statically rules out programs that can never satisfy the
	// permission's spatial constraint (check(P, C) of Section 3.4).
	Program sral.Node
	// History is the object's proof-backed access trace so far,
	// across all coalition servers.
	History trace.Trace
	// Proofs attests the history; nil means fully attested.
	Proofs srac.ProofOracle
}

// Decision explains an authorisation outcome.
type Decision struct {
	Granted bool
	// ID identifies this decision for cross-correlation (wire reply,
	// audit record, trace span). Minted by AuthorizeTraced when the
	// decision is traced; callers that persist untraced decisions mint
	// one with obs.NewDecisionID — the engine leaves it empty on the
	// unsampled hot path to keep that path allocation-free.
	ID string
	// Perm is the permission that covered the access (when any).
	Perm rbac.PermID
	// Spatial is the prefix-evaluation status of the spatial
	// constraint on the post-state of the request.
	Spatial srac.Status
	// ProgramVerdict is the static check of the program against the
	// constraint (AllTraces when no program or constraint was given).
	ProgramVerdict srac.Verdict
	// Temporal is the permission's temporal state at decision time.
	Temporal temporal.PermState
	// Deny classifies a denial for metrics and audit queries; empty on
	// grants.
	Deny DenyReason
	// Reason is a human-readable explanation of a denial.
	Reason string
	// Explanation attributes a denial to the specific violated SRAC
	// subformula or the exhausted temporal budget; nil on grants.
	Explanation *Explanation
	// HLC is the decision's hybrid logical timestamp: every decision
	// ticks the engine's HLC, the stamp rides the wire reply, and the
	// requesting agent folds it into its own clock — so decisions that
	// causally follow each other (hops of one itinerary) carry
	// strictly increasing timestamps coalition-wide even under clock
	// skew. Journal records and audit entries reuse this exact stamp.
	HLC hlc.Timestamp
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	if d.Granted {
		return fmt.Sprintf("GRANT perm=%s spatial=%s temporal=%s", d.Perm, d.Spatial, d.Temporal)
	}
	return fmt.Sprintf("DENY %s", d.Reason)
}

// ErrNoSpec is returned when a permission referenced by the RBAC layer
// has no spatio-temporal specification.
var ErrNoSpec = errors.New("core: permission has no spatio-temporal spec")

// Engine is the coordinated access control decision point. It is safe
// for concurrent use.
type Engine struct {
	// RBAC is the underlying role-based substrate; policies register
	// users, roles and assignments directly on it.
	RBAC *rbac.System

	clock temporal.Clock

	// met holds the resolved metric handles; swapped atomically by
	// SetObs so the Authorize hot path never takes a lock for metrics.
	met atomic.Pointer[engineMetrics]
	// tracer records the per-decision span tree; swapped atomically by
	// SetTracer for the same reason. Defaults to obs.DefaultTracer
	// (sampling off), so an untraced engine pays only a nil-check.
	tracer atomic.Pointer[obs.Tracer]
	// incremental flags the counting fast path (see incremental.go);
	// atomic so eligibility checks stay outside the engine lock.
	incremental atomic.Bool
	// recorder is the attached decision flight recorder (see
	// record.go); nil when recording is off. Atomic for the same
	// hot-path reason as met and tracer.
	recorder atomic.Pointer[record.Recorder]
	// coverage aggregates per-clause SRAC outcomes (see coverage.go);
	// the flag is atomic so disabled engines pay one load per decision.
	covEnabled atomic.Bool

	// slo, when non-nil, classifies every decision latency against a
	// latency objective and derives the burn rate (see perf.SLOTracker).
	// Atomic like met/tracer; a nil tracker's methods are inert.
	slo atomic.Pointer[perf.SLOTracker]

	// hlcClock is the engine's hybrid logical clock (see Decision.HLC).
	// Atomic only so SetHLCWall (tests, skew injection) can swap the
	// wall source without racing the decision path.
	hlcClock atomic.Pointer[hlc.Clock]

	// policyMu guards the read-mostly policy tables: permission specs
	// and permission classes. Decisions only ever take the read lock;
	// the write lock is held by DefinePermission/DefineClass (setup and
	// policy reload), so concurrent authorizations never serialize on
	// policy lookups. The perf wrapper samples wait/hold times per
	// stripe; uninstrumented it is one nil-check over sync.RWMutex.
	policyMu perf.RWMutex
	specs    map[rbac.PermID]PermSpec
	// classes aggregate validity durations across permissions (the
	// conclusion's future-work extension; see aggregate.go).
	classes map[ClassID]Class
	classOf map[rbac.PermID]ClassID

	// cntMu guards the incremental counting state (see incremental.go).
	// evalIncremental holds the read lock across its whole constraint
	// walk so a decision sees an atomic counter snapshot; RecordGrant
	// takes the write lock per executed access.
	cntMu     perf.RWMutex
	counters  map[string]int
	selectors map[string]model.Selector

	// shards hold the per-object runtime state (temporal trackers,
	// budget series, arrival bookkeeping, recorder history bases),
	// hashed by object ID. Independent credentials land on independent
	// shards — and even within a shard, the shard lock only covers the
	// map lookup; mutation happens under the objectState's own lock.
	shards [numShards]engineShard

	// cov holds the per-permission SRAC clause coverage cells (see
	// coverage.go), sharded by permission hash behind instrumented
	// perf.Mutex stripes — separate from the tracker/spec state so
	// coverage bookkeeping never contends with it, and visible in the
	// lock-stripe telemetry instead of being an invisible global
	// serialization point on the decide path.
	cov [covStripes]covStripe

	// costEnabled/costC hold the per-clause evaluation-cost profiler
	// (see cost.go): the flag is atomic like covEnabled, and the
	// collector pointer swaps atomically so a disabled engine pays one
	// load per decision. costPolicy caches the current policy digest
	// for the static-check cost table — recomputed on policy change,
	// never on the decide path.
	costEnabled atomic.Bool
	costC       atomic.Pointer[cost.Collector]
	costPolicy  atomic.Pointer[string]
}

// numShards is the object-state shard count. Sized well above typical
// core counts so hash collisions between concurrently active
// credentials are rare; must be a power of two for the mask below.
const numShards = 32

// engineShard is one hashed slice of the per-object state table.
type engineShard struct {
	mu   perf.RWMutex
	objs map[model.ObjectID]*objectState
}

// objectState is everything the engine tracks for one mobile object.
// All of it used to live in engine-global maps behind one mutex; now
// two objects only share a lock when they hash to the same shard, and
// even then only for the get-or-create lookup.
type objectState struct {
	mu sync.Mutex
	// trackers holds the temporal validity trackers keyed by the
	// resolved tracker identity (the permission's own ID, or its class
	// pool key when classed).
	trackers map[rbac.PermID]*temporal.Tracker
	// budgets holds the per-tracker consumption time series fed by
	// SampleBudgets (see budget.go); lazily created per tracker.
	budgets map[rbac.PermID]*obs.TimeSeries
	// lastArrival/hasArrived record the object's server arrivals, so
	// trackers created later inherit the base time.
	lastArrival float64
	hasArrived  bool

	// recMu guards recHist and recProg: the proof-backed history
	// entries the flight recorder has already emitted for this object,
	// against which recordDecide delta-encodes the next decide record,
	// and the declared program of the object's previous decide record,
	// against which programs are interned (see record.go). A separate
	// lock so recording never blocks the temporal bookkeeping above.
	recMu   sync.Mutex
	recHist []record.HistoryEntry
	recProg sral.Node
}

// shardFor hashes an object ID onto its shard (FNV-1a).
func (e *Engine) shardFor(obj model.ObjectID) *engineShard {
	h := uint32(2166136261)
	for i := 0; i < len(obj); i++ {
		h ^= uint32(obj[i])
		h *= 16777619
	}
	return &e.shards[h&(numShards-1)]
}

// objState returns (creating if needed) the object's state. The fast
// path is one shard read-lock and a map hit.
func (e *Engine) objState(obj model.ObjectID) *objectState {
	sh := e.shardFor(obj)
	sh.mu.RLock()
	os, ok := sh.objs[obj]
	sh.mu.RUnlock()
	if ok {
		return os
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if os, ok = sh.objs[obj]; ok {
		return os
	}
	os = &objectState{
		trackers: make(map[rbac.PermID]*temporal.Tracker),
		budgets:  make(map[rbac.PermID]*obs.TimeSeries),
	}
	sh.objs[obj] = os
	return os
}

// lookupObj returns the object's state without creating it.
func (e *Engine) lookupObj(obj model.ObjectID) (*objectState, bool) {
	sh := e.shardFor(obj)
	sh.mu.RLock()
	os, ok := sh.objs[obj]
	sh.mu.RUnlock()
	return os, ok
}

// trackerLocked returns (creating if needed) the tracker for a
// resolved tracker identity; s.mu must be held.
func (s *objectState) trackerLocked(key rbac.PermID, dur float64, scheme temporal.Scheme) *temporal.Tracker {
	tr, ok := s.trackers[key]
	if !ok {
		tr = temporal.NewTracker(dur, scheme)
		if s.hasArrived {
			tr.ArriveServer(s.lastArrival)
		}
		s.trackers[key] = tr
	}
	return tr
}

// NewEngine creates an engine over a fresh RBAC system using the given
// clock (nil defaults to a simulated clock starting at 0 — callers in
// production pass temporal.NewRealClock()).
func NewEngine(clock temporal.Clock) *Engine {
	if clock == nil {
		clock = temporal.NewSimClock(0)
	}
	e := &Engine{
		RBAC:    rbac.NewSystem(),
		clock:   clock,
		specs:   make(map[rbac.PermID]PermSpec),
		classes: make(map[ClassID]Class),
		classOf: make(map[rbac.PermID]ClassID),
	}
	for i := range e.shards {
		e.shards[i].objs = make(map[model.ObjectID]*objectState)
	}
	for i := range e.cov {
		e.cov[i].cells = make(map[covKey]*covCell)
	}
	e.met.Store(newEngineMetrics(obs.Default))
	e.instrumentLocks(obs.Default)
	e.tracer.Store(obs.DefaultTracer)
	e.hlcClock.Store(hlc.New(hlc.WallFromTemporal(clock)))
	return e
}

// instrumentLocks points the engine's lock stripes at per-stripe
// telemetry sinks in the given registry. The stripes share the
// registry's histogram families, so engines reconciled onto the same
// registry (the obs.Default case in tests) merge their stripe
// telemetry exactly as they merge decision counters.
func (e *Engine) instrumentLocks(r *obs.Registry) {
	e.policyMu.Instrument(perf.NewLockStats(r, "policy"))
	e.cntMu.Instrument(perf.NewLockStats(r, "counters"))
	for i := range e.shards {
		e.shards[i].mu.Instrument(perf.NewLockStats(r, fmt.Sprintf("shard_%02d", i)))
	}
	for i := range e.cov {
		e.cov[i].mu.Instrument(perf.NewLockStats(r, fmt.Sprintf("coverage_%02d", i)))
	}
	if col := e.costC.Load(); col != nil {
		col.Instrument(r)
	}
}

// Clock returns the engine's clock.
func (e *Engine) Clock() temporal.Clock { return e.clock }

// HLC returns the engine's hybrid logical clock. Servers observe
// request timestamps on it before deciding, so the decision stamp
// dominates everything the requester had seen.
func (e *Engine) HLC() *hlc.Clock { return e.hlcClock.Load() }

// SetHLCWall replaces the HLC's physical wall source — clock-skew
// injection for tests (faults.WallSkew) and the hook a deployment
// with a disciplined time service would use. The logical component
// restarts; causal monotonicity against previously issued stamps is
// only preserved going forward if the new source is not behind the
// old one by more than the logical counter can absorb, so swap before
// traffic, not during.
func (e *Engine) SetHLCWall(wall func() int64) {
	e.hlcClock.Store(hlc.New(wall))
}

// SetObs points the engine's decision-path metrics at a registry
// other than obs.Default — tests and embedders use it to reconcile one
// engine's counters in isolation. Call it during setup, before serving
// traffic, so no decision lands between two registries.
func (e *Engine) SetObs(r *obs.Registry) {
	e.met.Store(newEngineMetrics(r))
	e.instrumentLocks(r)
}

// SetSLO attaches a latency SLO to the decision path: every decision
// is classified against the target and the burn rate becomes available
// through SLOSnapshot/PublishPerf. A zero Target detaches.
func (e *Engine) SetSLO(slo perf.SLO) {
	if slo.Target <= 0 {
		e.slo.Store(nil)
		return
	}
	e.slo.Store(perf.NewSLOTracker(slo))
}

// SLOSnapshot reports the attached SLO's health (zero snapshot when no
// SLO is set).
func (e *Engine) SLOSnapshot() perf.SLOSnapshot { return e.slo.Load().Snapshot() }

// SLOTracker exposes the attached tracker (nil when no SLO is set) so
// the daemon's budget sampler can append burn-rate samples.
func (e *Engine) SLOTracker() *perf.SLOTracker { return e.slo.Load() }

// Obs returns the registry the engine currently reports into.
func (e *Engine) Obs() *obs.Registry { return e.met.Load().reg }

// SetTracer points the engine's decision span tree at a tracer other
// than obs.DefaultTracer (nil restores the default). Like SetObs, call
// it during setup.
func (e *Engine) SetTracer(t *obs.Tracer) {
	if t == nil {
		t = obs.DefaultTracer
	}
	e.tracer.Store(t)
}

// Tracer returns the tracer the engine currently records spans into.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer.Load() }

// DefinePermission registers a permission together with its
// spatio-temporal specification.
func (e *Engine) DefinePermission(ps PermSpec) error {
	if ps.Spatial != nil {
		if err := srac.Validate(ps.Spatial); err != nil {
			return fmt.Errorf("core: permission %q: %w", ps.Perm.ID, err)
		}
	}
	if err := e.RBAC.AddPermission(ps.Perm); err != nil {
		return err
	}
	e.policyMu.Lock()
	e.specs[ps.Perm.ID] = ps
	e.policyMu.Unlock()
	if e.incremental.Load() {
		e.cntMu.Lock()
		e.registerSelectorsLocked(ps)
		e.cntMu.Unlock()
	}
	if e.covEnabled.Load() {
		e.seedCoverage(ps)
	}
	if e.costEnabled.Load() {
		e.seedCost(ps)
		e.refreshCostPolicyDigest()
	}
	return nil
}

// Spec returns the spatio-temporal specification of a permission.
func (e *Engine) Spec(id rbac.PermID) (PermSpec, error) {
	e.policyMu.RLock()
	defer e.policyMu.RUnlock()
	ps, ok := e.specs[id]
	if !ok {
		return PermSpec{}, fmt.Errorf("%w: %q", ErrNoSpec, id)
	}
	return ps, nil
}

// tracker returns (creating if needed) the temporal tracker governing
// a permission for an object — the permission's own tracker, or its
// class pool when the permission is classed.
func (e *Engine) tracker(obj model.ObjectID, ps PermSpec) *temporal.Tracker {
	key, dur, scheme := e.resolveTemporal(ps)
	os := e.objState(obj)
	os.mu.Lock()
	defer os.mu.Unlock()
	return os.trackerLocked(key, dur, scheme)
}

// ObjectArrived records that a mobile object has arrived at a server
// at the current clock time. Under the per-server scheme this resets
// the temporal budgets of all the object's permissions (t_b = t_i);
// under the global scheme only the first arrival establishes t_b.
// Only the arriving object's shard is touched — other credentials'
// decisions proceed undisturbed.
func (e *Engine) ObjectArrived(obj model.ObjectID, server model.ServerID) {
	now := e.clock.Now()
	e.recordArrive(obj, server, now)
	os := e.objState(obj)
	os.mu.Lock()
	defer os.mu.Unlock()
	os.lastArrival = now
	os.hasArrived = true
	for _, tr := range os.trackers {
		tr.ArriveServer(now)
	}
}

// sessionTrackers snapshots the specs under one policy read-lock and
// resolves (creating if needed) the trackers for every permission the
// session confers under one objectState lock. The trackers are
// internally locked, so callers mutate them after release.
func (e *Engine) sessionTrackers(sess *rbac.Session, obj model.ObjectID) []*temporal.Tracker {
	perms := sess.Permissions()
	type resolved struct {
		key    rbac.PermID
		dur    float64
		scheme temporal.Scheme
	}
	rs := make([]resolved, 0, len(perms))
	e.policyMu.RLock()
	for _, p := range perms {
		ps, ok := e.specs[p.ID]
		if !ok {
			ps = PermSpec{Perm: p}
		}
		key, dur, scheme := e.resolveTemporalLocked(ps)
		rs = append(rs, resolved{key: key, dur: dur, scheme: scheme})
	}
	e.policyMu.RUnlock()
	os := e.objState(obj)
	trs := make([]*temporal.Tracker, 0, len(rs))
	os.mu.Lock()
	for _, r := range rs {
		trs = append(trs, os.trackerLocked(r.key, r.dur, r.scheme))
	}
	os.mu.Unlock()
	return trs
}

// ActivatePermissions marks every permission conferred by the
// session's active roles as temporally active for the object —
// role activation starts the validity accumulation of Section 4.
func (e *Engine) ActivatePermissions(sess *rbac.Session, obj model.ObjectID) {
	now := e.clock.Now()
	e.recordSession(record.KindActivate, sess, obj, now)
	for _, tr := range e.sessionTrackers(sess, obj) {
		tr.Activate(now)
	}
}

// DeactivatePermissions closes the valid periods of the session's
// permissions (role deactivation or session end).
func (e *Engine) DeactivatePermissions(sess *rbac.Session, obj model.ObjectID) {
	now := e.clock.Now()
	e.recordSession(record.KindDeactivate, sess, obj, now)
	for _, tr := range e.sessionTrackers(sess, obj) {
		tr.Deactivate(now)
	}
}

// Authorize decides a shared-resource access request — the
// checkPermission interposition of the coalition SecurityManager. It
// evaluates, in order: the RBAC layer (some active role confers a
// covering permission), the spatial constraint (static program check
// and prefix evaluation of the post-state history), and the temporal
// validity (Expression 4.1).
func (e *Engine) Authorize(req Request) Decision {
	return e.AuthorizeTraced(obs.TraceContext{}, req)
}

// AuthorizeTraced is Authorize under a propagated trace context: when
// the context is sampled (and the engine's tracer is recording), the
// decision emits a span tree — authorize → static_check / prefix_eval
// / temporal_check — and the Decision carries a freshly minted ID
// correlating it with the spans. With an invalid or unsampled context
// the tracing cost is a few branches and the ID stays empty (lazy
// minting: persistent consumers mint one themselves).
func (e *Engine) AuthorizeTraced(tc obs.TraceContext, req Request) Decision {
	m := e.met.Load()
	t := e.tracer.Load()
	sp, ctx := t.StartSpan(tc, "authorize")
	start := time.Now()
	d := e.authorize(ctx, t, req, m, nil)
	d.HLC = e.hlcClock.Load().Now()
	elapsed := time.Since(start)
	m.recordDecision(d, elapsed)
	e.slo.Load().Observe(elapsed)
	if sp != nil {
		d.ID = obs.NewDecisionID()
		sp.SetService("engine")
		sp.SetAttr("decision_id", d.ID)
		sp.SetAttr("object", string(req.Access.Object))
		sp.SetAttr("access", req.Access.String())
		sp.SetAttr("granted", strconv.FormatBool(d.Granted))
		if !d.Granted {
			sp.SetAttr("deny", string(d.Deny))
		}
		sp.Finish()
	}
	m.captureExemplar(&d, elapsed, ctx)
	e.recordDecide(tc, req, d)
	return d
}

// AuthorizeMany decides a burst of requests in one call — the entry
// point for agents issuing accesses in batches. Decisions come back in
// request order and are observable exactly as if each request went
// through Authorize (same metrics, same flight-recorder records), but
// the metric handles, tracer and permission-spec lookups are resolved
// once per batch instead of once per request, so a burst against the
// same few permissions never re-takes the policy read lock.
func (e *Engine) AuthorizeMany(reqs []Request) []Decision {
	out := make([]Decision, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	m := e.met.Load()
	t := e.tracer.Load()
	m.batchInflight.Inc()
	defer m.batchInflight.Dec()
	m.batchSize.ObserveValue(float64(len(reqs)))
	slo := e.slo.Load()
	// Per-batch spec cache: the batch decides against one policy
	// snapshot (a concurrent DefinePermission lands on the next batch).
	cache := make(map[rbac.PermID]PermSpec, 8)
	for i := range reqs {
		start := time.Now()
		d := e.authorize(obs.TraceContext{}, t, reqs[i], m, cache)
		d.HLC = e.hlcClock.Load().Now()
		elapsed := time.Since(start)
		m.recordDecision(d, elapsed)
		slo.Observe(elapsed)
		m.captureExemplar(&d, elapsed, obs.TraceContext{})
		e.recordDecide(obs.TraceContext{}, reqs[i], d)
		out[i] = d
	}
	return out
}

// specFor resolves a permission's spec, falling back to an
// unconstrained spec for permissions registered directly on the RBAC
// layer. With a non-nil cache (AuthorizeMany), repeated lookups skip
// the policy read lock.
func (e *Engine) specFor(perm rbac.Permission, cache map[rbac.PermID]PermSpec) PermSpec {
	if cache != nil {
		if ps, ok := cache[perm.ID]; ok {
			return ps
		}
	}
	ps, err := e.Spec(perm.ID)
	if err != nil {
		ps = PermSpec{Perm: perm}
	}
	if cache != nil {
		cache[perm.ID] = ps
	}
	return ps
}

// authorize is the uninstrumented decision body; AuthorizeTraced wraps
// it with timing, per-outcome accounting and the decision span. cache,
// when non-nil, memoises spec lookups across a batch (AuthorizeMany).
func (e *Engine) authorize(tc obs.TraceContext, t *obs.Tracer, req Request, m *engineMetrics, cache map[rbac.PermID]PermSpec) Decision {
	d := Decision{Spatial: srac.Satisfied, ProgramVerdict: srac.AllTraces, Temporal: temporal.Inactive}
	if req.Session == nil {
		d.Deny = DenyNoSession
		d.Reason = "no session (unauthenticated subject)"
		return d
	}
	if err := req.Access.Validate(); err != nil {
		d.Deny = DenyInvalidAccess
		d.Reason = err.Error()
		return d
	}
	perm, ok := req.Session.PermissionFor(req.Access)
	if !ok {
		d.Deny = DenyRBAC
		d.Reason = fmt.Sprintf("no active role of %q confers a permission covering %s",
			req.Session.User(), req.Access)
		return d
	}
	d.Perm = perm.ID

	// Permissions registered directly on the RBAC layer resolve to an
	// unconstrained spec (T, time-insensitive).
	ps := e.specFor(perm, cache)

	obj := req.Access.Object

	// --- Spatial constraint (Expression 3.1). ---
	if ps.Spatial != nil {
		stamped := srac.StampObject(ps.Spatial, obj)
		// check(P, C): a program that can never satisfy C disqualifies
		// the object up front. Constraints that mention a companion's
		// actions cannot be decided from this object's program alone,
		// so they are left to the runtime history check.
		if req.Program != nil && !srac.MentionsOtherObject(stamped, obj) {
			csp, _ := t.StartSpan(tc, "static_check")
			csp.SetService("engine")
			checkStart := time.Now()
			d.ProgramVerdict = srac.CheckProgram(req.Program, stamped, obj)
			checkElapsed := time.Since(checkStart)
			m.staticCheck.Observe(checkElapsed)
			if e.costEnabled.Load() {
				e.costStatic(req.Program, d.ProgramVerdict, checkElapsed)
			}
			csp.SetAttr("verdict", d.ProgramVerdict.String())
			csp.Finish()
			if d.ProgramVerdict == srac.NoTrace {
				d.Spatial = srac.Violated
				d.Deny = DenyProgram
				d.Reason = fmt.Sprintf("program can never satisfy spatial constraint %s",
					srac.String(ps.Spatial))
				d.Explanation = &Explanation{
					Constraint: srac.String(ps.Spatial),
					Clause:     srac.String(stamped),
					Detail:     "static check: no trace of the declared program satisfies the constraint",
				}
				return d
			}
		}
		if e.incrementalEligible(ps) {
			// Counting-only fast path: decide from engine counters in
			// O(|C|), no history scan (see incremental.go).
			esp, _ := t.StartSpan(tc, "prefix_eval")
			esp.SetService("engine")
			evalStart := time.Now()
			d.Spatial = e.evalIncremental(stamped, req.Access)
			m.prefixEval.ObserveSince(evalStart)
			esp.SetAttr("path", "incremental")
			esp.SetAttr("status", d.Spatial.String())
			esp.Finish()
			// One walk feeds both aggregations when coverage and cost
			// are on together (the production default).
			switch {
			case e.covEnabled.Load():
				if e.costEnabled.Load() {
					e.coverCostIncremental(perm.ID, ps.Spatial, stamped, req.Access)
				} else {
					e.coverIncremental(perm.ID, ps.Spatial, stamped, req.Access)
				}
			case e.costEnabled.Load():
				e.costIncremental(perm.ID, ps.Spatial, stamped, req.Access)
			}
			if d.Spatial == srac.Violated {
				d.Deny = DenySpatialViolated
				d.Reason = fmt.Sprintf("spatial constraint %s irreversibly violated",
					srac.String(ps.Spatial))
				d.Explanation = spatialExplanation(ps.Spatial, e.attributeIncremental(stamped, req.Access))
				return d
			}
			if ps.Mode == Strict && d.Spatial != srac.Satisfied {
				d.Deny = DenySpatialStrict
				d.Reason = fmt.Sprintf("spatial constraint %s not yet satisfied (strict mode)",
					srac.String(ps.Spatial))
				d.Explanation = spatialExplanation(ps.Spatial, e.attributeIncremental(stamped, req.Access))
				return d
			}
		} else {
			// Prefix evaluation of the post-state: the requested access
			// is hypothetically performed and proven.
			hyp := req.History.Concat(trace.Trace{req.Access})
			oracle := srac.HypotheticalOracle(req.Proofs, req.Access)
			esp, _ := t.StartSpan(tc, "prefix_eval")
			esp.SetService("engine")
			evalStart := time.Now()
			d.Spatial = srac.EvalPrefix(hyp, stamped, oracle)
			strictOK := d.Spatial != srac.Violated &&
				(ps.Mode != Strict || srac.SatisfiesTrace(hyp, stamped, oracle))
			m.prefixEval.ObserveSince(evalStart)
			esp.SetAttr("path", "scan")
			esp.SetAttr("status", d.Spatial.String())
			esp.SetAttr("history_len", strconv.Itoa(len(hyp)))
			esp.Finish()
			switch {
			case e.covEnabled.Load():
				if e.costEnabled.Load() {
					e.coverCostScan(perm.ID, ps.Spatial, stamped, hyp, oracle)
				} else {
					e.coverScan(perm.ID, ps.Spatial, stamped, hyp, oracle)
				}
			case e.costEnabled.Load():
				e.costScan(perm.ID, ps.Spatial, stamped, hyp, oracle)
			}
			if d.Spatial == srac.Violated {
				d.Deny = DenySpatialViolated
				d.Reason = fmt.Sprintf("spatial constraint %s irreversibly violated",
					srac.String(ps.Spatial))
				d.Explanation = spatialExplanation(ps.Spatial, srac.Attribute(hyp, stamped, oracle))
				return d
			}
			if !strictOK {
				d.Spatial = srac.Pending
				d.Deny = DenySpatialStrict
				d.Reason = fmt.Sprintf("spatial constraint %s not yet satisfied (strict mode)",
					srac.String(ps.Spatial))
				d.Explanation = spatialExplanation(ps.Spatial, srac.Attribute(hyp, stamped, oracle))
				return d
			}
		}
	}

	// --- Temporal validity (Expression 4.1). ---
	tsp, _ := t.StartSpan(tc, "temporal_check")
	tsp.SetService("engine")
	tr := e.tracker(obj, ps)
	now := e.clock.Now()
	// Role activation in this session implies the permission is
	// active; make sure the tracker reflects it (idempotent).
	tr.Activate(now)
	d.Temporal = tr.StateAt(now)
	tsp.SetAttr("state", d.Temporal.String())
	tsp.Finish()
	if d.Temporal != temporal.Valid {
		if d.Temporal == temporal.ActiveInvalid {
			d.Deny = DenyTemporalExhausted
		} else {
			d.Deny = DenyTemporalInactive
		}
		_, dur, scheme := e.resolveTemporal(ps)
		d.Reason = fmt.Sprintf("permission %q is %s (validity duration %.6gs, scheme %s)",
			perm.ID, d.Temporal, dur, scheme)
		budget := dur
		if budget == temporal.Infinite {
			budget = -1
		}
		remaining := tr.Remaining(now)
		if remaining == temporal.Infinite {
			remaining = -1
		}
		d.Explanation = &Explanation{Temporal: &TemporalExplanation{
			Consumed:  tr.Accumulated(now),
			Budget:    budget,
			Remaining: remaining,
			Scheme:    scheme.String(),
		}}
		return d
	}

	d.Granted = true
	return d
}

// trackerFor resolves the tracker currently governing a permission for
// an object (class pool or own), without creating one.
func (e *Engine) trackerFor(obj model.ObjectID, id rbac.PermID) (*temporal.Tracker, float64, bool) {
	ps, err := e.Spec(id)
	if err != nil {
		ps = PermSpec{Perm: rbac.Permission{ID: id}}
	}
	key, dur, _ := e.resolveTemporal(ps)
	os, found := e.lookupObj(obj)
	if !found {
		return nil, dur, false
	}
	os.mu.Lock()
	tr, ok := os.trackers[key]
	os.mu.Unlock()
	return tr, dur, ok
}

// PermissionState reports the temporal state of a permission for an
// object at the current time.
func (e *Engine) PermissionState(obj model.ObjectID, id rbac.PermID) temporal.PermState {
	tr, _, ok := e.trackerFor(obj, id)
	if !ok {
		return temporal.Inactive
	}
	return tr.StateAt(e.clock.Now())
}

// RemainingValidity returns the unused validity duration of a
// permission for an object. For a classed permission this is the
// remaining pooled budget of its class.
func (e *Engine) RemainingValidity(obj model.ObjectID, id rbac.PermID) float64 {
	tr, dur, ok := e.trackerFor(obj, id)
	if !ok {
		if _, err := e.Spec(id); err != nil {
			return 0
		}
		return dur
	}
	return tr.Remaining(e.clock.Now())
}
