package core

import (
	"strings"
	"testing"

	"stac/internal/model"
	"stac/internal/rbac"
	"stac/internal/temporal"
)

// classEngine builds an engine with two permissions sharing a 10s
// pooled class, plus one unclassed permission.
func classEngine(t *testing.T) (*Engine, *rbac.Session, *temporal.SimClock) {
	t.Helper()
	clk := temporal.NewSimClock(0)
	e := NewEngine(clk)
	for _, step := range []error{
		e.RBAC.AddUser("o1"),
		e.RBAC.AddRole("editor"),
		e.DefinePermission(PermSpec{Perm: rbac.Permission{ID: "p-headline", Op: "write", Resource: "headline"}}),
		e.DefinePermission(PermSpec{Perm: rbac.Permission{ID: "p-body", Op: "write", Resource: "body"}}),
		e.DefinePermission(PermSpec{Perm: rbac.Permission{ID: "p-archive", Op: "read", Resource: "archive"}}),
		e.RBAC.GrantPermission("editor", "p-headline"),
		e.RBAC.GrantPermission("editor", "p-body"),
		e.RBAC.GrantPermission("editor", "p-archive"),
		e.RBAC.AssignUserRole("o1", "editor"),
		e.DefineClass(Class{ID: "edit-pool", Members: []rbac.PermID{"p-headline", "p-body"}, Duration: 10, Scheme: temporal.GlobalBase}),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ActivateRole("editor"); err != nil {
		t.Fatal(err)
	}
	return e, sess, clk
}

func TestDefineClassValidation(t *testing.T) {
	e := NewEngine(nil)
	if err := e.DefineClass(Class{Members: []rbac.PermID{"x"}}); err == nil {
		t.Fatal("class without ID accepted")
	}
	if err := e.DefineClass(Class{ID: "c"}); err == nil {
		t.Fatal("empty class accepted")
	}
	if err := e.DefineClass(Class{ID: "c", Members: []rbac.PermID{"ghost"}}); err == nil {
		t.Fatal("unknown member accepted")
	}
	if err := e.DefinePermission(PermSpec{Perm: rbac.Permission{ID: "p1"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineClass(Class{ID: "c", Members: []rbac.PermID{"p1"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.DefineClass(Class{ID: "c", Members: []rbac.PermID{"p1"}}); err == nil {
		t.Fatal("duplicate class accepted")
	}
	if err := e.DefineClass(Class{ID: "c2", Members: []rbac.PermID{"p1"}}); err == nil {
		t.Fatal("double membership accepted")
	}
	got, ok := e.ClassOf("p1")
	if !ok || got.ID != "c" {
		t.Fatalf("ClassOf = %+v %v", got, ok)
	}
	if _, ok := e.ClassOf("ghost"); ok {
		t.Fatal("ClassOf unknown permission")
	}
	if len(e.Classes()) != 1 {
		t.Fatalf("Classes = %v", e.Classes())
	}
}

func TestClassedPermissionsShareOnePool(t *testing.T) {
	e, sess, clk := classEngine(t)
	headline := model.NewAccess("o1", "write", "headline", "s1")
	body := model.NewAccess("o1", "write", "body", "s1")
	archive := model.NewAccess("o1", "read", "archive", "s1")

	e.ActivatePermissions(sess, "o1")
	if d := e.Authorize(Request{Session: sess, Access: headline}); !d.Granted {
		t.Fatalf("headline denied: %s", d)
	}
	clk.Advance(6)
	// 6s of the 10s pool consumed — by EITHER member.
	if got := e.ClassRemaining("o1", "edit-pool"); got != 4 {
		t.Fatalf("pool remaining = %v", got)
	}
	if d := e.Authorize(Request{Session: sess, Access: body}); !d.Granted {
		t.Fatalf("body denied at 6s: %s", d)
	}
	clk.Advance(5)
	// Pool exhausted at 10s: BOTH members are invalid.
	if d := e.Authorize(Request{Session: sess, Access: headline}); d.Granted {
		t.Fatal("headline granted after pool exhausted")
	}
	d := e.Authorize(Request{Session: sess, Access: body})
	if d.Granted {
		t.Fatal("body granted after pool exhausted")
	}
	if !strings.Contains(d.Reason, "active-but-invalid") {
		t.Fatalf("reason = %q", d.Reason)
	}
	// The unclassed permission is unaffected.
	if d := e.Authorize(Request{Session: sess, Access: archive}); !d.Granted {
		t.Fatalf("archive denied: %s", d)
	}
	// Per-permission views reflect the pool.
	if s := e.PermissionState("o1", "p-headline"); s != temporal.ActiveInvalid {
		t.Fatalf("p-headline state = %v", s)
	}
	if r := e.RemainingValidity("o1", "p-body"); r != 0 {
		t.Fatalf("p-body remaining = %v", r)
	}
}

func TestClassRemainingUnknownAndFresh(t *testing.T) {
	e, _, _ := classEngine(t)
	if got := e.ClassRemaining("o1", "ghost"); got != 0 {
		t.Fatalf("unknown class remaining = %v", got)
	}
	// Fresh object: full pool.
	if got := e.ClassRemaining("o9", "edit-pool"); got != 10 {
		t.Fatalf("fresh pool remaining = %v", got)
	}
}

func TestClassifyByDuration(t *testing.T) {
	specs := []PermSpec{
		{Perm: rbac.Permission{ID: "a"}, Duration: 10},
		{Perm: rbac.Permission{ID: "b"}, Duration: 20},
		{Perm: rbac.Permission{ID: "c"}, Duration: 10},
		{Perm: rbac.Permission{ID: "d"}, Duration: 10, Scheme: temporal.PerServerBase},
		{Perm: rbac.Permission{ID: "e"}}, // infinite
	}
	classes := ClassifyByDuration(specs)
	if len(classes) != 4 {
		t.Fatalf("classes = %+v", classes)
	}
	// Sorted by duration then scheme: (10, global) first with {a, c}.
	if classes[0].Duration != 10 || len(classes[0].Members) != 2 ||
		classes[0].Members[0] != "a" || classes[0].Members[1] != "c" {
		t.Fatalf("class 0 = %+v", classes[0])
	}
	if classes[1].Duration != 10 || classes[1].Scheme != temporal.PerServerBase {
		t.Fatalf("class 1 = %+v", classes[1])
	}
	if classes[3].Duration != temporal.Infinite {
		t.Fatalf("class 3 = %+v", classes[3])
	}
	// Classification is applicable to an engine.
	e := NewEngine(nil)
	for _, ps := range specs {
		if err := e.DefinePermission(ps); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range classes {
		if err := e.DefineClass(c); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.Classes()) != 4 {
		t.Fatal("classification not applied")
	}
}

func TestPolicyClassDirective(t *testing.T) {
	e := NewEngine(temporal.NewSimClock(0))
	policy := `
user o1
role editor
permission p-a write a @ *
permission p-b write b @ *
grant editor p-a
grant editor p-b
assign o1 editor
class edit-pool 10s global p-a p-b
`
	if err := LoadPolicyString(e, policy); err != nil {
		t.Fatal(err)
	}
	c, ok := e.ClassOf("p-a")
	if !ok || c.Duration != 10 || len(c.Members) != 2 {
		t.Fatalf("class = %+v %v", c, ok)
	}
}

func TestPolicyClassDirectiveErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"class c 10s global", "at least one permission"},
		{"class c nope global p", "duration"},
		{"class c 10s sometimes p", "scheme"},
		{"class c 10s global ghost", "no spatio-temporal spec"},
	}
	for _, tc := range cases {
		e := NewEngine(nil)
		err := LoadPolicyString(e, tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("policy %q error = %v (want %q)", tc.src, err, tc.want)
		}
	}
}
