package core

import (
	"math/rand"
	"testing"

	"stac/internal/model"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/temporal"
	"stac/internal/trace"
)

func TestCountingOnly(t *testing.T) {
	tests := []struct {
		src  string
		want bool
	}{
		{"T", true},
		{"count(0, 5, sigma[r=rsw])", true},
		{"count(0, 5, sigma[*]) and not count(3, 3, sigma[op=read])", true},
		{"[read f @ s]", false},
		{"[read a @ *] >> [read b @ *]", false},
		{"count(0, 5, sigma[*]) and [read f @ s]", false},
	}
	for _, tt := range tests {
		if got := countingOnly(srac.MustParse(tt.src)); got != tt.want {
			t.Errorf("countingOnly(%q) = %v", tt.src, got)
		}
	}
}

// incrementalEngine builds an engine with a counting ceiling on rsw.
func incrementalEngine(t *testing.T, max int) (*Engine, *rbac.Session) {
	t.Helper()
	e := NewEngine(temporal.NewSimClock(0))
	e.EnableIncrementalCounting()
	for _, step := range []error{
		e.RBAC.AddUser("o1"),
		e.RBAC.AddRole("r"),
		e.DefinePermission(PermSpec{
			Perm:    rbac.Permission{ID: "p-rsw", Op: "execute", Resource: "rsw"},
			Spatial: srac.AtMost(max, model.Selector{Resources: []model.ResourceID{"rsw"}}),
		}),
		e.RBAC.GrantPermission("r", "p-rsw"),
		e.RBAC.AssignUserRole("o1", "r"),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ActivateRole("r"); err != nil {
		t.Fatal(err)
	}
	return e, sess
}

func TestIncrementalCeilingWithoutHistory(t *testing.T) {
	e, sess := incrementalEngine(t, 2)
	a := model.NewAccess("o1", "execute", "rsw", "s1")
	for i := 0; i < 2; i++ {
		// No History passed at all: the counters carry the state.
		d := e.Authorize(Request{Session: sess, Access: a})
		if !d.Granted {
			t.Fatalf("access %d denied: %s", i+1, d)
		}
		e.RecordGrant(a)
	}
	d := e.Authorize(Request{Session: sess, Access: a})
	if d.Granted {
		t.Fatal("3rd access granted despite counter ceiling")
	}
	if d.Spatial != srac.Violated {
		t.Fatalf("spatial = %v", d.Spatial)
	}
	if len(e.Counters()) == 0 {
		t.Fatal("no counters recorded")
	}
}

func TestIncrementalCountsPerObject(t *testing.T) {
	e, sess := incrementalEngine(t, 1)
	if err := e.RBAC.AddUser("o2"); err != nil {
		t.Fatal(err)
	}
	if err := e.RBAC.AssignUserRole("o2", "r"); err != nil {
		t.Fatal(err)
	}
	sess2, err := e.RBAC.CreateSession("o2")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess2.ActivateRole("r"); err != nil {
		t.Fatal(err)
	}
	a1 := model.NewAccess("o1", "execute", "rsw", "s1")
	a2 := model.NewAccess("o2", "execute", "rsw", "s1")
	if d := e.Authorize(Request{Session: sess, Access: a1}); !d.Granted {
		t.Fatal("o1 first access denied")
	}
	e.RecordGrant(a1)
	// o1 is at its ceiling; o2's own budget is untouched (StampObject
	// makes objectless selectors per-object).
	if d := e.Authorize(Request{Session: sess, Access: a1}); d.Granted {
		t.Fatal("o1 over ceiling granted")
	}
	if d := e.Authorize(Request{Session: sess2, Access: a2}); !d.Granted {
		t.Fatal("o2 blocked by o1's consumption")
	}
}

func TestRecordGrantNoopWhenDisabled(t *testing.T) {
	e := NewEngine(nil)
	e.RecordGrant(model.NewAccess("o1", "read", "f", "s"))
	if len(e.Counters()) != 0 {
		t.Fatal("disabled engine recorded a grant")
	}
}

func TestEnableAfterDefineRegistersSelectors(t *testing.T) {
	e := NewEngine(nil)
	if err := e.DefinePermission(PermSpec{
		Perm:    rbac.Permission{ID: "p", Op: "read"},
		Spatial: srac.AtMost(1, model.Selector{Ops: []model.Operation{"read"}}),
	}); err != nil {
		t.Fatal(err)
	}
	e.EnableIncrementalCounting() // after DefinePermission
	a := model.NewAccess("o1", "read", "f", "s")
	e.RecordGrant(a)
	if len(e.Counters()) == 0 {
		t.Fatal("late enabling did not register selectors")
	}
}

// Equivalence property: for random counting-only constraints and
// random grant sequences, the incremental decision equals the
// scan-path decision at every step.
func TestIncrementalEquivalentToScan(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	resources := []model.ResourceID{"f1", "f2", "rsw"}
	ops := []model.Operation{"read", "execute"}
	for trial := 0; trial < 60; trial++ {
		// Random counting-only constraint.
		cons := randomCountingConstraint(r, 2, resources, ops)

		mk := func(incremental bool) (*Engine, *rbac.Session) {
			e := NewEngine(temporal.NewSimClock(0))
			if incremental {
				e.EnableIncrementalCounting()
			}
			must := func(err error) {
				if err != nil {
					t.Fatal(err)
				}
			}
			must(e.RBAC.AddUser("o1"))
			must(e.RBAC.AddRole("r"))
			must(e.DefinePermission(PermSpec{Perm: rbac.Permission{ID: "p"}, Spatial: cons}))
			must(e.RBAC.GrantPermission("r", "p"))
			must(e.RBAC.AssignUserRole("o1", "r"))
			sess, err := e.RBAC.CreateSession("o1")
			must(err)
			must(sess.ActivateRole("r"))
			return e, sess
		}
		inc, incSess := mk(true)
		scan, scanSess := mk(false)

		var history trace.Trace
		for step := 0; step < 12; step++ {
			a := model.NewAccess("o1", ops[r.Intn(len(ops))],
				resources[r.Intn(len(resources))], "s1")
			di := inc.Authorize(Request{Session: incSess, Access: a})
			ds := scan.Authorize(Request{Session: scanSess, Access: a, History: history})
			if di.Granted != ds.Granted {
				t.Fatalf("trial %d step %d: incremental=%v scan=%v\nconstraint: %s\nhistory: %v\naccess: %v",
					trial, step, di.Granted, ds.Granted, srac.String(cons), history, a)
			}
			if di.Granted {
				inc.RecordGrant(a)
				history = append(history, a)
			}
		}
	}
}

func randomCountingConstraint(r *rand.Rand, depth int, resources []model.ResourceID, ops []model.Operation) srac.Constraint {
	if depth <= 0 {
		lo := r.Intn(2)
		hi := lo + r.Intn(5)
		sel := model.Selector{}
		if r.Intn(2) == 0 {
			sel.Resources = []model.ResourceID{resources[r.Intn(len(resources))]}
		}
		if r.Intn(3) == 0 {
			sel.Ops = []model.Operation{ops[r.Intn(len(ops))]}
		}
		return srac.Count{Min: lo, Max: hi, Sel: sel}
	}
	switch r.Intn(4) {
	case 0:
		return srac.And{
			Left:  randomCountingConstraint(r, depth-1, resources, ops),
			Right: randomCountingConstraint(r, depth-1, resources, ops),
		}
	case 1:
		return srac.Or{
			Left:  randomCountingConstraint(r, depth-1, resources, ops),
			Right: randomCountingConstraint(r, depth-1, resources, ops),
		}
	case 2:
		return srac.Not{C: randomCountingConstraint(r, depth-1, resources, ops)}
	default:
		return srac.Count{Min: 0, Max: r.Intn(6), Sel: model.Selector{}}
	}
}
