package core

import (
	"math/rand"
	"strings"
	"testing"

	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/obs/record"
	"stac/internal/rbac"
	"stac/internal/temporal"
	"stac/internal/trace"
)

const replayPolicy = `
user o1
user o2
role surveyor
permission p-map read map @ * {
    spatial count(0, 3, sigma[op=read])
    duration 10s
    scheme global
}
permission p-log write log @ * {
    spatial [read map @ s1] >> [write log @ s2]
    mode strict
}
grant surveyor p-map
grant surveyor p-log
assign o1 surveyor
assign o2 surveyor
`

// liveRun drives a recorded itinerary on a fresh engine: arrivals,
// role activations, a mix of granted and denied accesses (spatial
// ceiling, strict-mode gate, temporal exhaustion), departures. It
// returns the recorder's stream and the decisions taken.
func liveRun(t *testing.T, incremental bool) ([]record.Record, []Decision) {
	t.Helper()
	clk := temporal.NewSimClock(0)
	e := NewEngine(clk)
	e.SetObs(obs.NewRegistry())
	if err := LoadPolicyString(e, replayPolicy); err != nil {
		t.Fatal(err)
	}
	if incremental {
		e.EnableIncrementalCounting()
	}
	rec := record.New(record.Config{Capacity: 256, Registry: obs.NewRegistry()})
	e.SetRecorder(rec)

	var decisions []Decision
	var hist trace.Trace
	decide := func(sess *rbac.Session, a model.Access) Decision {
		d := e.Authorize(Request{Session: sess, Access: a, History: hist.Clone()})
		decisions = append(decisions, d)
		if d.Granted {
			hist = append(hist, a)
			e.RecordGrant(a)
		}
		return d
	}

	newSubject := func(user string) *rbac.Session {
		sess, err := e.RBAC.CreateSession(rbac.UserID(user))
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.ActivateRole("surveyor"); err != nil {
			t.Fatal(err)
		}
		return sess
	}

	// o1 arrives at s1; the strict-mode gate denies the log write
	// before the ordered premise is witnessed.
	e.ObjectArrived("o1", "s1")
	s1 := newSubject("o1")
	e.ActivatePermissions(s1, "o1")
	decide(s1, model.NewAccess("o1", "write", "log", "s2"))
	// Burn through the count ceiling.
	for i := 0; i < 5; i++ {
		decide(s1, model.NewAccess("o1", "read", "map", "s1"))
		clk.Advance(1)
	}
	// Premise witnessed now: the same write is granted.
	decide(s1, model.NewAccess("o1", "write", "log", "s2"))
	// o2 roams: per-server arrival, temporal budget burning down.
	e.ObjectArrived("o2", "s2")
	s2 := newSubject("o2")
	e.ActivatePermissions(s2, "o2")
	decide(s2, model.NewAccess("o2", "read", "map", "s2"))
	clk.Advance(12) // past the 10s global budget
	decide(s2, model.NewAccess("o2", "read", "map", "s2"))
	// o1 departs and comes back (fresh session, budget persists).
	e.DeactivatePermissions(s1, "o1")
	s1.Close()
	clk.Advance(1)
	e.ObjectArrived("o1", "s2")
	s1b := newSubject("o1")
	e.ActivatePermissions(s1b, "o1")
	decide(s1b, model.NewAccess("o1", "read", "map", "s2"))
	return rec.Records(), decisions
}

func TestReplayReproducesLiveRunScan(t *testing.T) { testReplayReproduces(t, false) }

func TestReplayReproducesLiveRunIncremental(t *testing.T) { testReplayReproduces(t, true) }

func testReplayReproduces(t *testing.T, incremental bool) {
	records, decisions := liveRun(t, incremental)
	res, err := Replay(replayPolicy, records, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions != len(decisions) {
		t.Fatalf("replayed %d decisions, live run took %d", res.Decisions, len(decisions))
	}
	if !res.Deterministic() {
		t.Fatalf("replay diverged: %+v", res.Divergences)
	}
	if res.PolicyMismatch {
		t.Fatalf("policy mismatch: recorded %s vs replay %s", res.RecordedDigest, res.ReplayDigest)
	}
	// The live run must have exercised all three denial families, or
	// the oracle is vacuous.
	var sawSpatial, sawTemporal, sawStrict bool
	for _, d := range decisions {
		switch d.Deny {
		case DenySpatialViolated:
			sawSpatial = true
		case DenyTemporalExhausted:
			sawTemporal = true
		case DenySpatialStrict:
			sawStrict = true
		}
	}
	if !sawSpatial || !sawTemporal || !sawStrict {
		t.Fatalf("itinerary too tame: spatial=%v temporal=%v strict=%v", sawSpatial, sawTemporal, sawStrict)
	}
}

// Property: random itineraries replay deterministically, on both
// evaluation paths.
func TestReplayPropertyRandomItineraries(t *testing.T) {
	for _, incremental := range []bool{false, true} {
		r := rand.New(rand.NewSource(331))
		for iter := 0; iter < 30; iter++ {
			records, n := randomLiveRun(t, r, incremental)
			res, err := Replay(replayPolicy, records, ReplayOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Decisions != n {
				t.Fatalf("incremental=%v iter %d: replayed %d of %d decisions", incremental, iter, res.Decisions, n)
			}
			if !res.Deterministic() {
				t.Fatalf("incremental=%v iter %d: replay diverged: %+v", incremental, iter, res.Divergences)
			}
		}
	}
}

func randomLiveRun(t *testing.T, r *rand.Rand, incremental bool) ([]record.Record, int) {
	t.Helper()
	clk := temporal.NewSimClock(0)
	e := NewEngine(clk)
	e.SetObs(obs.NewRegistry())
	if err := LoadPolicyString(e, replayPolicy); err != nil {
		t.Fatal(err)
	}
	if incremental {
		e.EnableIncrementalCounting()
	}
	rec := record.New(record.Config{Capacity: 512, Registry: obs.NewRegistry()})
	e.SetRecorder(rec)

	users := []string{"o1", "o2"}
	servers := []model.ServerID{"s1", "s2", "s3"}
	sessions := map[string]*rbac.Session{}
	hists := map[string]trace.Trace{}
	decisions := 0
	for step := 0; step < 20+r.Intn(30); step++ {
		u := users[r.Intn(len(users))]
		obj := model.ObjectID(u)
		switch r.Intn(5) {
		case 0:
			e.ObjectArrived(obj, servers[r.Intn(len(servers))])
		case 1:
			if old := sessions[u]; old != nil {
				e.DeactivatePermissions(old, obj)
				old.Close()
			}
			sess, err := e.RBAC.CreateSession(rbac.UserID(u))
			if err != nil {
				t.Fatal(err)
			}
			if err := sess.ActivateRole("surveyor"); err != nil {
				t.Fatal(err)
			}
			sessions[u] = sess
			e.ActivatePermissions(sess, obj)
		case 2:
			if sess := sessions[u]; sess != nil {
				e.DeactivatePermissions(sess, obj)
			}
		default:
			sess := sessions[u]
			if sess == nil {
				continue
			}
			var a model.Access
			if r.Intn(3) == 0 {
				a = model.NewAccess(obj, "write", "log", "s2")
			} else {
				a = model.NewAccess(obj, "read", "map", servers[r.Intn(len(servers))])
			}
			d := e.Authorize(Request{Session: sess, Access: a, History: hists[u].Clone()})
			decisions++
			if d.Granted {
				hists[u] = append(hists[u], a)
				e.RecordGrant(a)
			}
		}
		if r.Intn(2) == 0 {
			clk.Advance(float64(r.Intn(4)) + 0.5)
		}
	}
	return rec.Records(), decisions
}

// A corrupted stream must surface as a divergence, not silently pass.
func TestReplayDetectsTamperedVerdict(t *testing.T) {
	records, _ := liveRun(t, false)
	tampered := false
	for i := range records {
		if records[i].Kind == record.KindDecide && records[i].Granted {
			records[i].Granted = false
			records[i].Deny = "spatial_violation"
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no granted decision to tamper with")
	}
	res, err := Replay(replayPolicy, records, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deterministic() {
		t.Fatal("tampered stream replayed clean")
	}
}

// ShadowDiff against a tightened count ceiling must flip exactly the
// grants beyond the new ceiling and blame the ceiling clause.
func TestShadowDiffTightenedCeiling(t *testing.T) {
	records, decisions := liveRun(t, false)
	candidate := strings.Replace(replayPolicy, "count(0, 3, sigma[op=read])", "count(0, 1, sigma[op=read])", 1)
	rep, err := ShadowDiff(candidate, records, ReplayOptions{Coverage: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decisions != len(decisions) {
		t.Fatalf("diffed %d decisions, want %d", rep.Decisions, len(decisions))
	}
	if rep.CandidateDigest == rep.RecordedDigest || rep.CandidateDigest == "" {
		t.Fatalf("digests: recorded %s candidate %s", rep.RecordedDigest, rep.CandidateDigest)
	}
	if len(rep.Flips) == 0 {
		t.Fatal("tightened ceiling produced no flips")
	}
	for _, f := range rep.Flips {
		if !f.RecordedGranted || f.CandidateGranted {
			t.Fatalf("unexpected flip direction: %+v", f)
		}
		if !strings.Contains(f.Clause, "count(0, 1") {
			t.Fatalf("flip not attributed to the tightened ceiling clause: %+v", f)
		}
	}
	// The candidate's coverage must mark the ceiling clause decisive.
	decisive := false
	for _, c := range rep.Coverage {
		if strings.Contains(c.Clause, "count(0, 1") && c.Decisive > 0 {
			decisive = true
		}
	}
	if !decisive {
		t.Fatalf("ceiling clause not decisive in candidate coverage: %+v", rep.Coverage)
	}
}

// A loosened policy flips denials to grants, attributed via the
// RECORDED explanation.
func TestShadowDiffLoosenedCeiling(t *testing.T) {
	records, _ := liveRun(t, false)
	candidate := strings.Replace(replayPolicy, "count(0, 3, sigma[op=read])", "count(0, 30, sigma[op=read])", 1)
	candidate = strings.Replace(candidate, "duration 10s", "duration 1000s", 1)
	rep, err := ShadowDiff(candidate, records, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var denyToGrant int
	for _, f := range rep.Flips {
		if !f.RecordedGranted && f.CandidateGranted {
			denyToGrant++
			if f.Deny == string(DenySpatialViolated) && !strings.Contains(f.Clause, "count(0, 3") {
				t.Fatalf("deny→grant spatial flip should cite the recorded clause: %+v", f)
			}
			if f.Deny == string(DenyTemporalExhausted) && !strings.Contains(f.Detail, "temporal budget") {
				t.Fatalf("deny→grant temporal flip should carry budget arithmetic: %+v", f)
			}
		}
	}
	if denyToGrant == 0 {
		t.Fatal("loosened policy produced no deny→grant flips")
	}
}

// Replay under a different policy is reported as a policy mismatch.
func TestReplayFlagsPolicyMismatch(t *testing.T) {
	records, _ := liveRun(t, false)
	other := strings.Replace(replayPolicy, "count(0, 3, sigma[op=read])", "count(0, 2, sigma[op=read])", 1)
	res, err := Replay(other, records, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PolicyMismatch {
		t.Fatal("replay under a different policy not flagged as mismatch")
	}
}

func TestReplayRejectsBadRecordAndPolicy(t *testing.T) {
	if _, err := Replay("permission q read f @ * {\nmode sometimes\n}", nil, ReplayOptions{}); err == nil {
		t.Fatal("bad policy accepted")
	}
	bad := []record.Record{{Schema: record.SchemaVersion + 1, Kind: record.KindDecide}}
	if _, err := Replay(replayPolicy, bad, ReplayOptions{}); err == nil {
		t.Fatal("newer-schema record accepted")
	}
}

// Coverage accounting on the live engine: the ceiling clause must be
// decisive for the spatial denials, and an unexercised clause shows
// up with zero counts.
func TestCoverageMarksDecisiveAndDeadClauses(t *testing.T) {
	clk := temporal.NewSimClock(0)
	e := NewEngine(clk)
	e.SetObs(obs.NewRegistry())
	if err := LoadPolicyString(e, replayPolicy); err != nil {
		t.Fatal(err)
	}
	e.EnableCoverage()
	if !e.CoverageEnabled() {
		t.Fatal("coverage not enabled")
	}
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ActivateRole("surveyor"); err != nil {
		t.Fatal(err)
	}
	e.ObjectArrived("o1", "s1")
	e.ActivatePermissions(sess, "o1")
	var hist trace.Trace
	for i := 0; i < 5; i++ {
		a := model.NewAccess("o1", "read", "map", "s1")
		if d := e.Authorize(Request{Session: sess, Access: a, History: hist.Clone()}); d.Granted {
			hist = append(hist, a)
		}
	}
	cov := e.Coverage()
	var ceiling, ordered *ClauseCoverage
	for i := range cov {
		switch {
		case cov[i].Perm == "p-map" && cov[i].Path == "":
			ceiling = &cov[i]
		case cov[i].Perm == "p-log" && cov[i].Path == "":
			ordered = &cov[i]
		}
	}
	if ceiling == nil || ordered == nil {
		t.Fatalf("missing coverage rows: %+v", cov)
	}
	if ceiling.Evaluated != 5 || ceiling.Decisive != 5 {
		t.Fatalf("ceiling coverage = %+v, want 5 evaluations all decisive", *ceiling)
	}
	if ceiling.Violated == 0 || ceiling.Satisfied == 0 {
		t.Fatalf("ceiling outcomes = %+v, want both satisfied and violated evaluations", *ceiling)
	}
	if ceiling.Dead() {
		t.Fatal("decisive ceiling clause reported dead")
	}
	// p-log was never requested: its clause is pre-seeded and dead.
	if ordered.Evaluated != 0 || !ordered.Dead() {
		t.Fatalf("unexercised p-log clause = %+v, want zero evaluations (dead)", *ordered)
	}
	if ordered.Clause == "" {
		t.Fatal("pre-seeded clause text missing")
	}
}
