package core

// Per-clause evaluation-cost profiling: with cost profiling enabled,
// every spatial prefix evaluation also runs the srac cost walk — the
// same transcription of evalPrefix that coverage projects — and folds
// each clause's work (leaf evals, count-window merges, 1-in-64
// sampled wall time) into an obs/cost.Collector keyed by the same
// (perm, path) identity coverage uses. Static checks feed a
// per-(program digest, policy digest) cost table, and every grant
// bumps the re-walk amplification denominator. /debug/cost serves the
// report; the federate poller folds it across the coalition; `stacctl
// heat` ranks the result. This is the measured "before picture" for
// the SRAC compilation arc (ROADMAP item 2).

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"

	"stac/internal/model"
	"stac/internal/obs/cost"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/sral"
	"stac/internal/trace"
)

// EnableCostProfiling turns on per-clause evaluation-cost accounting,
// pre-seeding a cell for every clause of every registered permission
// (so never-evaluated clauses appear with zero cost) and caching the
// policy digest the static-check cost table is keyed under. The
// collector instruments its stripes into the engine's current
// registry; call after SetObs, before serving traffic.
func (e *Engine) EnableCostProfiling() {
	col := cost.New()
	col.Instrument(e.met.Load().reg)
	e.policyMu.RLock()
	specs := make([]PermSpec, 0, len(e.specs))
	for _, ps := range e.specs {
		specs = append(specs, ps)
	}
	e.policyMu.RUnlock()
	e.costC.Store(col)
	for _, ps := range specs {
		e.seedCost(ps)
	}
	e.refreshCostPolicyDigest()
	e.costEnabled.Store(true)
}

// CostEnabled reports whether evaluation-cost profiling is on.
func (e *Engine) CostEnabled() bool { return e.costEnabled.Load() }

// CostReport snapshots the per-clause cost profile, static-check cost
// table and re-walk amplification gauges (zero report when profiling
// is off).
func (e *Engine) CostReport() cost.Report {
	col := e.costC.Load()
	if col == nil {
		return cost.Report{}
	}
	return col.Report()
}

func (e *Engine) seedCost(ps PermSpec) {
	col := e.costC.Load()
	if col == nil || ps.Spatial == nil {
		return
	}
	srac.WalkPaths(ps.Spatial, func(path string, c srac.Constraint) {
		col.Seed(string(ps.Perm.ID), path, srac.String(c))
	})
}

// refreshCostPolicyDigest recomputes the cached policy digest after a
// policy mutation, so static-check rows always key against the digest
// of the policy they actually ran under.
func (e *Engine) refreshCostPolicyDigest() {
	d := PolicyDigest(e)
	e.costPolicy.Store(&d)
}

// costSamplePool recycles the per-decision sample buffers: the
// translation slice is alive only for the Record call, so pooling it
// keeps the profiled decision path free of a per-decision allocation.
var costSamplePool = sync.Pool{
	New: func() any {
		s := make([]cost.NodeSample, 0, 32)
		return &s
	},
}

// costSamples translates the srac cost walk's nodes into the
// collector's evaluator-agnostic sample type, into a pooled buffer.
// Callers must putCostSamples after Record returns (Record does not
// retain the slice).
func costSamples(nodes []srac.NodeCost) *[]cost.NodeSample {
	buf := costSamplePool.Get().(*[]cost.NodeSample)
	out := (*buf)[:0]
	for _, n := range nodes {
		out = append(out, cost.NodeSample{Path: n.Path, Decisive: n.Decisive, Atoms: n.Atoms, Merges: n.Merges, NS: n.NS})
	}
	*buf = out
	return buf
}

func putCostSamples(buf *[]cost.NodeSample) {
	costSamplePool.Put(buf)
}

// costClauseResolver names lazily created cells from the policy's
// unstamped constraint, so one row covers every requesting object —
// the same convention applyCoverage uses.
func costClauseResolver(unstamped srac.Constraint) func(string) string {
	return func(path string) string {
		if c, ok := srac.SubclauseAt(unstamped, path); ok {
			return srac.String(c)
		}
		return ""
	}
}

// costScan profiles a scan-path evaluation: the cost walk re-runs the
// stamped constraint over the hypothetical post-state history with
// detail-free leaves, so its sampled timings carry the firstMatch /
// countProven history scans and none of the explanation formatting.
func (e *Engine) costScan(perm rbac.PermID, unstamped, stamped srac.Constraint, hyp trace.Trace, oracle srac.ProofOracle) {
	col := e.costC.Load()
	if col == nil {
		return
	}
	col.NoteScan(len(hyp))
	sampled := col.SampleTick()
	nodes, _ := srac.CoverCost(stamped, srac.PlainTraceLeafEval(hyp, oracle), sampled)
	buf := costSamples(nodes)
	col.Record(string(perm), sampled, *buf, costClauseResolver(unstamped))
	putCostSamples(buf)
}

// costIncremental profiles a counter-path evaluation. Counter reads
// are snapshotted under the counter read-lock first (countSnapshot)
// and the cost walk runs lock-free over the snapshot, so e.cntMu and
// the collector stripes are never held together.
func (e *Engine) costIncremental(perm rbac.PermID, unstamped, stamped srac.Constraint, hyp model.Access) {
	col := e.costC.Load()
	if col == nil {
		return
	}
	col.NoteIncremental()
	counts := e.countSnapshot(stamped, hyp)
	sampled := col.SampleTick()
	nodes, _ := srac.CoverCost(stamped, srac.PlainCountLeafEval(func(x srac.Count) int {
		return counts[selKey(x.Sel)]
	}), sampled)
	buf := costSamples(nodes)
	col.Record(string(perm), sampled, *buf, costClauseResolver(unstamped))
	putCostSamples(buf)
}

// coverCostScan runs ONE cost walk for a scan-path evaluation and
// splits the result between the coverage and cost aggregations — the
// path taken when both are enabled (the production default), so the
// decision path never pays two AST walks.
func (e *Engine) coverCostScan(perm rbac.PermID, unstamped, stamped srac.Constraint, hyp trace.Trace, oracle srac.ProofOracle) {
	col := e.costC.Load()
	if col == nil {
		e.coverScan(perm, unstamped, stamped, hyp, oracle)
		return
	}
	col.NoteScan(len(hyp))
	sampled := col.SampleTick()
	nodes, _ := srac.CoverCost(stamped, srac.PlainTraceLeafEval(hyp, oracle), sampled)
	e.applyCoverage(perm, unstamped, srac.CoverageOf(nodes))
	buf := costSamples(nodes)
	col.Record(string(perm), sampled, *buf, costClauseResolver(unstamped))
	putCostSamples(buf)
}

// coverCostIncremental is coverCostScan's counter-path twin: one cost
// walk over the counter snapshot feeds both aggregations.
func (e *Engine) coverCostIncremental(perm rbac.PermID, unstamped, stamped srac.Constraint, hyp model.Access) {
	col := e.costC.Load()
	if col == nil {
		e.coverIncremental(perm, unstamped, stamped, hyp)
		return
	}
	col.NoteIncremental()
	counts := e.countSnapshot(stamped, hyp)
	sampled := col.SampleTick()
	nodes, _ := srac.CoverCost(stamped, srac.PlainCountLeafEval(func(x srac.Count) int {
		return counts[selKey(x.Sel)]
	}), sampled)
	e.applyCoverage(perm, unstamped, srac.CoverageOf(nodes))
	buf := costSamples(nodes)
	col.Record(string(perm), sampled, *buf, costClauseResolver(unstamped))
	putCostSamples(buf)
}

// costStatic folds one static-check run into the (program digest,
// policy digest) cost table — the measured baseline for the planned
// verdict cache keyed on exactly that pair.
func (e *Engine) costStatic(program sral.Node, verdict srac.Verdict, elapsed time.Duration) {
	col := e.costC.Load()
	if col == nil {
		return
	}
	policy := ""
	if p := e.costPolicy.Load(); p != nil {
		policy = *p
	}
	col.RecordStatic(ProgramDigest(program), policy, verdict.String(), program.Size(), elapsed.Nanoseconds())
}

// ProgramDigest is the canonical digest of a declared SRAL program:
// sha256 over its concrete syntax, the program-side twin of
// PolicyDigest and the other half of the static-check cache key.
func ProgramDigest(p sral.Node) string {
	sum := sha256.Sum256([]byte(sral.String(p)))
	return hex.EncodeToString(sum[:])
}
