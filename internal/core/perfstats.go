package core

import (
	"stac/internal/obs"
	"stac/internal/obs/perf"
)

// This file is the engine's side of the perf subsystem: it snapshots
// the instrumented lock stripes (policy, counters, and the 32 object
// shards) plus shard population, derives imbalance ratios, and
// publishes the derived gauges so a /metrics scrape carries them
// alongside the per-stripe wait/hold histograms the stripes feed
// directly.

// PerfStats is a point-in-time view of the engine's hot-path health.
type PerfStats struct {
	// Stripes holds one snapshot per instrumented lock stripe: policy,
	// counters, shard_00..shard_31, the coverage stripes, and (when
	// cost profiling is on) the cost-collector stripes.
	Stripes []perf.LockSnapshot `json:"stripes"`
	// ShardObjects is the object population per shard; ObjectImbalance
	// is max/mean over it (1.0 = perfectly even hash), and
	// AcquireImbalance the same ratio over shard-lock acquisitions.
	ShardObjects     []int64 `json:"shard_objects"`
	ObjectImbalance  float64 `json:"object_imbalance"`
	AcquireImbalance float64 `json:"acquire_imbalance"`
	// SLO is the attached latency objective's health; zero when no SLO
	// is set.
	SLO perf.SLOSnapshot `json:"slo"`
	// Exemplars are the retained decision-latency exemplars.
	Exemplars []obs.Exemplar `json:"exemplars,omitempty"`
}

// PerfStats snapshots the lock stripes, shard balance, SLO health and
// decision exemplars.
func (e *Engine) PerfStats() PerfStats {
	st := PerfStats{
		Stripes:      make([]perf.LockSnapshot, 0, numShards+covStripes+2),
		ShardObjects: make([]int64, numShards),
		SLO:          e.SLOSnapshot(),
		Exemplars:    e.DecisionExemplars(),
	}
	st.Stripes = append(st.Stripes, e.policyMu.Stats().Snapshot(), e.cntMu.Stats().Snapshot())
	acquires := make([]int64, 0, numShards)
	for i := range e.shards {
		sh := &e.shards[i]
		snap := sh.mu.Stats().Snapshot()
		st.Stripes = append(st.Stripes, snap)
		acquires = append(acquires, snap.Acquire+snap.RAcquire)
		sh.mu.RLock()
		st.ShardObjects[i] = int64(len(sh.objs))
		sh.mu.RUnlock()
	}
	for i := range e.cov {
		if s := e.cov[i].mu.Stats(); s != nil {
			st.Stripes = append(st.Stripes, s.Snapshot())
		}
	}
	if col := e.costC.Load(); col != nil {
		for _, s := range col.LockStats() {
			st.Stripes = append(st.Stripes, s.Snapshot())
		}
	}
	st.ObjectImbalance = perf.ImbalanceRatio(st.ShardObjects)
	st.AcquireImbalance = perf.ImbalanceRatio(acquires)
	return st
}

// PublishPerf refreshes the derived perf gauges in the engine's
// registry — callers (the daemon's /metrics handler) invoke it per
// scrape, mirroring obs.PublishRuntime.
func (e *Engine) PublishPerf() {
	st := e.PerfStats()
	r := e.met.Load().reg
	r.FloatGauge("stac_shard_object_imbalance_ratio", "",
		"Max/mean object population across engine shards (1 = even).").Set(st.ObjectImbalance)
	r.FloatGauge("stac_shard_acquire_imbalance_ratio", "",
		"Max/mean lock acquisitions across engine shards (1 = even).").Set(st.AcquireImbalance)
	if st.SLO.TargetMs > 0 {
		r.FloatGauge("stac_slo_burn_rate", "",
			"Latency SLO error-budget burn rate (1 = consuming exactly the budget).").Set(st.SLO.BurnRate)
		r.FloatGauge("stac_slo_over_fraction", "",
			"Fraction of decisions over the SLO latency target.").Set(st.SLO.OverFraction)
	}
}
