package core

import (
	"strings"
	"testing"

	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/temporal"
)

func TestDumpPolicyRoundTrip(t *testing.T) {
	e := NewEngine(temporal.NewSimClock(0))
	if err := LoadPolicyString(e, samplePolicy); err != nil {
		t.Fatal(err)
	}
	dumped := DumpPolicy(e)
	// The dump re-imports into an equivalent engine.
	e2 := NewEngine(temporal.NewSimClock(0))
	if err := LoadPolicyString(e2, dumped); err != nil {
		t.Fatalf("re-import failed: %v\n---\n%s", err, dumped)
	}
	u1, r1, p1, _ := e.RBAC.Stats()
	u2, r2, p2, _ := e2.RBAC.Stats()
	if u1 != u2 || r1 != r2 || p1 != p2 {
		t.Fatalf("stats diverged: %d/%d/%d vs %d/%d/%d", u1, r1, p1, u2, r2, p2)
	}
	// Specs survive the round trip.
	for _, id := range []string{"p-audit", "p-rsw", "p-plain"} {
		a, err := e.Spec(rbac.PermID(id))
		if err != nil {
			t.Fatal(err)
		}
		b, err := e2.Spec(rbac.PermID(id))
		if err != nil {
			t.Fatalf("spec %s lost: %v\n---\n%s", id, err, dumped)
		}
		if a.duration() != b.duration() || a.Scheme != b.Scheme || a.Mode != b.Mode {
			t.Fatalf("spec %s changed: %+v vs %+v", id, a, b)
		}
		sa, sb := "", ""
		if a.Spatial != nil {
			sa = srac.String(a.Spatial)
		}
		if b.Spatial != nil {
			sb = srac.String(b.Spatial)
		}
		if sa != sb {
			t.Fatalf("spatial %s changed: %q vs %q", id, sa, sb)
		}
	}
	// Structural directives appear in the text.
	for _, want := range []string{"inherit admin auditor", "ssd no-admin-reader 2", "dsd no-dual 2", "grant auditor p-audit"} {
		if !strings.Contains(dumped, want) {
			t.Fatalf("dump missing %q:\n%s", want, dumped)
		}
	}
	// A third generation dump is textually stable (fixed point).
	if d2 := DumpPolicy(e2); d2 != dumped {
		t.Fatalf("dump not stable:\n%s\n---\n%s", dumped, d2)
	}
}

func TestDumpPolicyWithClassesAndModes(t *testing.T) {
	e := NewEngine(nil)
	policy := `
role worker
permission p-a write a @ s1 {
    spatial [write a @ s1] >> [write b @ *]
    mode strict
    duration 90s
    scheme per-server
    describe two-phase write
}
permission p-b write b @ *
grant worker p-a
class pool-1 5m global p-a p-b
`
	if err := LoadPolicyString(e, policy); err != nil {
		t.Fatal(err)
	}
	dumped := DumpPolicy(e)
	for _, want := range []string{"mode     strict", "duration 90s", "scheme   per-server",
		"describe two-phase write", "class pool-1 5m global p-a p-b"} {
		if !strings.Contains(dumped, want) {
			t.Fatalf("dump missing %q:\n%s", want, dumped)
		}
	}
	e2 := NewEngine(nil)
	if err := LoadPolicyString(e2, dumped); err != nil {
		t.Fatalf("re-import: %v\n%s", err, dumped)
	}
	c, ok := e2.ClassOf("p-a")
	if !ok || c.Duration != 300 {
		t.Fatalf("class lost: %+v %v", c, ok)
	}
}
