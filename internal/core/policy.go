package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"stac/internal/model"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/temporal"
)

// LoadPolicy reads a coalition policy in the stacd text format and
// applies it to the engine — the stand-in for the Java policy files
// whose grant statements associate permissions to principals
// (Section 5.1). The format is line oriented; '#' starts a comment.
//
//	user <id>
//	role <id>
//	assign <user> <role>
//	inherit <senior> <junior>
//	ssd <name> <cardinality> <role> <role> [...]
//	dsd <name> <cardinality> <role> <role> [...]
//	permission <id> <op|*> <resource|*> @ <server|*> {
//	    spatial  <SRAC constraint>          # optional
//	    mode     <admissible | strict>      # optional (see SpatialMode)
//	    duration <seconds | 30s | 5m | 2h | inf>   # optional
//	    scheme   <global | per-server>      # optional
//	    describe <free text>                # optional
//	}
//	grant <role> <perm>
//	class <id> <duration> <scheme> <perm> [<perm>...]   # pooled validity
//
// Example:
//
//	role auditor
//	permission p-audit read module-a @ * {
//	    spatial  [read dep-1 @ *] >> [read module-a @ *]
//	    duration 10m
//	    scheme   global
//	}
//	grant auditor p-audit
func LoadPolicy(e *Engine, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := stripComment(sc.Text())
			if strings.TrimSpace(line) == "" {
				continue
			}
			return strings.TrimSpace(line), true
		}
		return "", false
	}
	for {
		line, ok := next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "user":
			if len(fields) != 2 {
				return policyErr(lineNo, "user takes one argument")
			}
			if err := e.RBAC.AddUser(rbac.UserID(fields[1])); err != nil {
				return policyErr(lineNo, "%v", err)
			}
		case "role":
			if len(fields) != 2 {
				return policyErr(lineNo, "role takes one argument")
			}
			if err := e.RBAC.AddRole(rbac.RoleID(fields[1])); err != nil {
				return policyErr(lineNo, "%v", err)
			}
		case "assign":
			if len(fields) != 3 {
				return policyErr(lineNo, "assign takes user and role")
			}
			if err := e.RBAC.AssignUserRole(rbac.UserID(fields[1]), rbac.RoleID(fields[2])); err != nil {
				return policyErr(lineNo, "%v", err)
			}
		case "inherit":
			if len(fields) != 3 {
				return policyErr(lineNo, "inherit takes senior and junior roles")
			}
			if err := e.RBAC.AddInheritance(rbac.RoleID(fields[1]), rbac.RoleID(fields[2])); err != nil {
				return policyErr(lineNo, "%v", err)
			}
		case "ssd", "dsd":
			if len(fields) < 5 {
				return policyErr(lineNo, "%s takes name, cardinality and at least two roles", fields[0])
			}
			card, err := strconv.Atoi(fields[2])
			if err != nil {
				return policyErr(lineNo, "bad cardinality %q", fields[2])
			}
			roles := make([]rbac.RoleID, 0, len(fields)-3)
			for _, f := range fields[3:] {
				roles = append(roles, rbac.RoleID(f))
			}
			c := rbac.SoD{Name: fields[1], Cardinality: card, Roles: roles}
			if fields[0] == "ssd" {
				err = e.RBAC.AddSSD(c)
			} else {
				err = e.RBAC.AddDSD(c)
			}
			if err != nil {
				return policyErr(lineNo, "%v", err)
			}
		case "class":
			// class <id> <duration> <scheme> <perm> [<perm>...]
			if len(fields) < 5 {
				return policyErr(lineNo, "class takes id, duration, scheme and at least one permission")
			}
			dur, err := ParseDuration(fields[2])
			if err != nil {
				return policyErr(lineNo, "%v", err)
			}
			var scheme temporal.Scheme
			switch fields[3] {
			case "global":
				scheme = temporal.GlobalBase
			case "per-server":
				scheme = temporal.PerServerBase
			default:
				return policyErr(lineNo, "unknown scheme %q (want global or per-server)", fields[3])
			}
			members := make([]rbac.PermID, 0, len(fields)-4)
			for _, f := range fields[4:] {
				members = append(members, rbac.PermID(f))
			}
			if err := e.DefineClass(Class{
				ID: ClassID(fields[1]), Duration: dur, Scheme: scheme, Members: members,
			}); err != nil {
				return policyErr(lineNo, "%v", err)
			}
		case "grant":
			if len(fields) != 3 {
				return policyErr(lineNo, "grant takes role and permission")
			}
			if err := e.RBAC.GrantPermission(rbac.RoleID(fields[1]), rbac.PermID(fields[2])); err != nil {
				return policyErr(lineNo, "%v", err)
			}
		case "permission":
			ps, consumed, err := parsePermission(line, next)
			if err != nil {
				return policyErr(lineNo, "%v", err)
			}
			lineNo += consumed
			if err := e.DefinePermission(ps); err != nil {
				return policyErr(lineNo, "%v", err)
			}
		default:
			return policyErr(lineNo, "unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("core: policy read: %w", err)
	}
	return nil
}

// LoadPolicyString is LoadPolicy over a string.
func LoadPolicyString(e *Engine, src string) error {
	return LoadPolicy(e, strings.NewReader(src))
}

func policyErr(line int, format string, args ...any) error {
	return fmt.Errorf("core: policy line %d: %s", line, fmt.Sprintf(format, args...))
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		return line[:i]
	}
	return line
}

// parsePermission parses the "permission ... { ... }" block. The
// header is "permission <id> <op> <resource> @ <server> {"; the body
// directives are spatial, duration, scheme, describe.
func parsePermission(header string, next func() (string, bool)) (PermSpec, int, error) {
	var ps PermSpec
	fields := strings.Fields(header)
	// permission id op resource @ server [ { ]
	if len(fields) < 6 {
		return ps, 0, fmt.Errorf("permission header needs: permission <id> <op> <resource> @ <server> {")
	}
	if fields[4] != "@" {
		return ps, 0, fmt.Errorf("permission header missing @ before server")
	}
	ps.Perm = rbac.Permission{
		ID:       rbac.PermID(fields[1]),
		Op:       model.Operation(star(fields[2])),
		Resource: model.ResourceID(star(fields[3])),
		Server:   model.ServerID(star(fields[5])),
	}
	hasBrace := len(fields) >= 7 && fields[6] == "{"
	if !hasBrace {
		// Bare permission without a constraint block.
		if len(fields) != 6 {
			return ps, 0, fmt.Errorf("unexpected tokens after permission header")
		}
		return ps, 0, nil
	}
	consumed := 0
	for {
		line, ok := next()
		if !ok {
			return ps, consumed, fmt.Errorf("unterminated permission block for %q", ps.Perm.ID)
		}
		consumed++
		if line == "}" {
			return ps, consumed, nil
		}
		key, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch key {
		case "spatial":
			c, err := srac.Parse(rest)
			if err != nil {
				return ps, consumed, fmt.Errorf("spatial constraint: %w", err)
			}
			ps.Spatial = c
		case "duration":
			d, err := ParseDuration(rest)
			if err != nil {
				return ps, consumed, err
			}
			ps.Duration = d
		case "scheme":
			switch rest {
			case "global":
				ps.Scheme = temporal.GlobalBase
			case "per-server":
				ps.Scheme = temporal.PerServerBase
			default:
				return ps, consumed, fmt.Errorf("unknown scheme %q (want global or per-server)", rest)
			}
		case "mode":
			switch rest {
			case "admissible":
				ps.Mode = Admissible
			case "strict":
				ps.Mode = Strict
			default:
				return ps, consumed, fmt.Errorf("unknown mode %q (want admissible or strict)", rest)
			}
		case "describe":
			ps.Perm.Description = rest
		default:
			return ps, consumed, fmt.Errorf("unknown permission directive %q", key)
		}
	}
}

func star(s string) string {
	if s == "*" {
		return ""
	}
	return s
}

// ParseDuration parses a validity duration: a plain number of seconds,
// a number with an s/m/h suffix, or "inf" for time-insensitive.
func ParseDuration(s string) (float64, error) {
	if s == "inf" {
		return temporal.Infinite, nil
	}
	mult := 1.0
	num := s
	switch {
	case strings.HasSuffix(s, "ms"):
		mult, num = 1e-3, strings.TrimSuffix(s, "ms")
	case strings.HasSuffix(s, "s"):
		num = strings.TrimSuffix(s, "s")
	case strings.HasSuffix(s, "m"):
		mult, num = 60, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "h"):
		mult, num = 3600, strings.TrimSuffix(s, "h")
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("core: bad duration %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("core: negative duration %q", s)
	}
	return v * mult, nil
}

// FormatDuration renders a duration in the policy format.
func FormatDuration(d float64) string {
	if d == temporal.Infinite {
		return "inf"
	}
	switch {
	case d >= 3600 && d == float64(int(d/3600))*3600:
		return fmt.Sprintf("%gh", d/3600)
	case d >= 60 && d == float64(int(d/60))*60:
		return fmt.Sprintf("%gm", d/60)
	default:
		return fmt.Sprintf("%gs", d)
	}
}
