package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"stac/internal/model"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/sral"
	"stac/internal/temporal"
	"stac/internal/trace"
)

// testEngine builds an engine with one mobile-object user holding the
// auditor role, one permission covering reads of f1 anywhere, guarded
// by the given spec fields.
func testEngine(t *testing.T, spatial srac.Constraint, dur float64, scheme temporal.Scheme) (*Engine, *rbac.Session, *temporal.SimClock) {
	t.Helper()
	clk := temporal.NewSimClock(0)
	e := NewEngine(clk)
	if err := e.RBAC.AddUser("o1"); err != nil {
		t.Fatal(err)
	}
	if err := e.RBAC.AddRole("auditor"); err != nil {
		t.Fatal(err)
	}
	if err := e.DefinePermission(PermSpec{
		Perm:     rbac.Permission{ID: "p-read-f1", Op: "read", Resource: "f1"},
		Spatial:  spatial,
		Duration: dur,
		Scheme:   scheme,
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.RBAC.GrantPermission("auditor", "p-read-f1"); err != nil {
		t.Fatal(err)
	}
	if err := e.RBAC.AssignUserRole("o1", "auditor"); err != nil {
		t.Fatal(err)
	}
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ActivateRole("auditor"); err != nil {
		t.Fatal(err)
	}
	return e, sess, clk
}

func req(sess *rbac.Session, a model.Access) Request {
	return Request{Session: sess, Access: a}
}

func TestAuthorizeBasicGrant(t *testing.T) {
	e, sess, _ := testEngine(t, nil, 0, temporal.GlobalBase)
	d := e.Authorize(req(sess, model.NewAccess("o1", "read", "f1", "s1")))
	if !d.Granted {
		t.Fatalf("denied: %s", d)
	}
	if d.Perm != "p-read-f1" || d.Temporal != temporal.Valid {
		t.Fatalf("decision = %+v", d)
	}
	if !strings.Contains(d.String(), "GRANT") {
		t.Fatalf("String = %q", d.String())
	}
}

func TestAuthorizeDeniesWithoutSessionOrPermission(t *testing.T) {
	e, sess, _ := testEngine(t, nil, 0, temporal.GlobalBase)
	d := e.Authorize(Request{Access: model.NewAccess("o1", "read", "f1", "s1")})
	if d.Granted || !strings.Contains(d.Reason, "session") {
		t.Fatalf("no-session decision = %+v", d)
	}
	d = e.Authorize(req(sess, model.NewAccess("o1", "write", "f1", "s1")))
	if d.Granted || !strings.Contains(d.Reason, "no active role") {
		t.Fatalf("uncovered access decision = %+v", d)
	}
	d = e.Authorize(req(sess, model.Access{Object: "o1"}))
	if d.Granted {
		t.Fatalf("malformed access granted: %+v", d)
	}
}

func TestAuthorizeDeniesInactiveRole(t *testing.T) {
	e, sess, _ := testEngine(t, nil, 0, temporal.GlobalBase)
	sess.DeactivateRole("auditor")
	d := e.Authorize(req(sess, model.NewAccess("o1", "read", "f1", "s1")))
	if d.Granted {
		t.Fatal("granted without active role")
	}
}

func TestAuthorizeSpatialCountCeiling(t *testing.T) {
	// The Example 3.5 rule: at most 5 accesses to f1 anywhere.
	spatial := srac.AtMost(5, model.Selector{Resources: []model.ResourceID{"f1"}})
	e, sess, _ := testEngine(t, spatial, 0, temporal.GlobalBase)
	var history trace.Trace
	a := model.NewAccess("o1", "read", "f1", "s1")
	for i := 0; i < 5; i++ {
		d := e.Authorize(Request{Session: sess, Access: a, History: history})
		if !d.Granted {
			t.Fatalf("access %d denied: %s", i+1, d)
		}
		history = history.Concat(trace.Trace{a})
	}
	d := e.Authorize(Request{Session: sess, Access: a, History: history})
	if d.Granted {
		t.Fatal("6th access granted despite count ceiling")
	}
	if d.Spatial != srac.Violated {
		t.Fatalf("spatial status = %v", d.Spatial)
	}
	if !strings.Contains(d.Reason, "spatial") {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestAuthorizeSpatialCountAcrossServers(t *testing.T) {
	// Coordination: accesses on s1 count against the limit enforced
	// when the object later requests at s2.
	spatial := srac.AtMost(2, model.Selector{Resources: []model.ResourceID{"f1"}})
	e, sess, _ := testEngine(t, spatial, 0, temporal.GlobalBase)
	history := trace.Trace{
		model.NewAccess("o1", "read", "f1", "s1"),
		model.NewAccess("o1", "read", "f1", "s1"),
	}
	d := e.Authorize(Request{Session: sess, Access: model.NewAccess("o1", "read", "f1", "s2"), History: history})
	if d.Granted {
		t.Fatal("cross-server ceiling not enforced")
	}
}

func TestAuthorizeSpatialOrdering(t *testing.T) {
	// f1 may be read only after dep was read (module dependency rule).
	dep := model.Access{Op: "read", Resource: "dep"}
	f1 := model.Access{Op: "read", Resource: "f1"}
	spatial := srac.Implies(srac.Require(f1), srac.Before(dep, f1))
	e, sess, _ := testEngine(t, spatial, 0, temporal.GlobalBase)

	// Without dep in history: [f1] is satisfied by the hypothetical
	// access, dep ⊗ f1 is pending → not violated → granted (the
	// ordering can still be witnessed later; the paper's check only
	// denies irreversible violations).
	d := e.Authorize(Request{Session: sess, Access: model.NewAccess("o1", "read", "f1", "s1")})
	if !d.Granted {
		t.Fatalf("pending ordering denied: %s", d)
	}
	// A program that never reads dep can never satisfy the ordering:
	// statically rejected.
	prog := sral.MustParse("read f1 @ s1")
	d = e.Authorize(Request{Session: sess, Access: model.NewAccess("o1", "read", "f1", "s1"), Program: prog})
	if d.Granted {
		t.Fatal("program that cannot satisfy constraint was granted")
	}
	if d.ProgramVerdict != srac.NoTrace {
		t.Fatalf("program verdict = %v", d.ProgramVerdict)
	}
	// A program that reads dep first is fine.
	good := sral.MustParse("read dep @ s1; read f1 @ s1")
	hist := trace.Trace{model.NewAccess("o1", "read", "dep", "s1")}
	d = e.Authorize(Request{Session: sess, Access: model.NewAccess("o1", "read", "f1", "s1"), Program: good, History: hist})
	if !d.Granted {
		t.Fatalf("valid ordered access denied: %s", d)
	}
}

func TestAuthorizeTemporalExpiry(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 10, temporal.GlobalBase)
	a := model.NewAccess("o1", "read", "f1", "s1")
	e.ObjectArrived("o1", "s1")
	e.ActivatePermissions(sess, "o1")
	if d := e.Authorize(req(sess, a)); !d.Granted {
		t.Fatalf("denied before expiry: %s", d)
	}
	clk.Advance(9)
	if d := e.Authorize(req(sess, a)); !d.Granted {
		t.Fatalf("denied at 9s of 10s budget: %s", d)
	}
	clk.Advance(2)
	d := e.Authorize(req(sess, a))
	if d.Granted {
		t.Fatal("granted after validity duration expired")
	}
	if d.Temporal != temporal.ActiveInvalid {
		t.Fatalf("temporal state = %v", d.Temporal)
	}
	if !strings.Contains(d.Reason, "active-but-invalid") {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestAuthorizePerServerSchemeResetsBudget(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 10, temporal.PerServerBase)
	a := model.NewAccess("o1", "read", "f1", "s1")
	e.ObjectArrived("o1", "s1")
	e.ActivatePermissions(sess, "o1")
	clk.Advance(11)
	if d := e.Authorize(req(sess, a)); d.Granted {
		t.Fatal("granted after per-server budget expired")
	}
	// Migrate: fresh budget on the new server.
	e.ObjectArrived("o1", "s2")
	e.ActivatePermissions(sess, "o1")
	a2 := model.NewAccess("o1", "read", "f1", "s2")
	if d := e.Authorize(req(sess, a2)); !d.Granted {
		t.Fatalf("denied after per-server reset: %s", d)
	}
}

func TestAuthorizeGlobalSchemeSpansServers(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 10, temporal.GlobalBase)
	e.ObjectArrived("o1", "s1")
	e.ActivatePermissions(sess, "o1")
	clk.Advance(8)
	e.ObjectArrived("o1", "s2") // must not reset
	clk.Advance(4)
	d := e.Authorize(req(sess, model.NewAccess("o1", "read", "f1", "s2")))
	if d.Granted {
		t.Fatal("global budget not enforced across servers")
	}
}

func TestDeactivatePausesTemporalAccumulation(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 10, temporal.GlobalBase)
	e.ActivatePermissions(sess, "o1")
	clk.Advance(5)
	e.DeactivatePermissions(sess, "o1")
	clk.Advance(100)
	e.ActivatePermissions(sess, "o1")
	d := e.Authorize(req(sess, model.NewAccess("o1", "read", "f1", "s1")))
	if !d.Granted {
		t.Fatalf("denied after pause despite remaining budget: %s", d)
	}
	if got := e.RemainingValidity("o1", "p-read-f1"); got > 5.01 || got < 4.9 {
		t.Fatalf("remaining = %v", got)
	}
}

func TestPermissionStateAndRemaining(t *testing.T) {
	e, sess, clk := testEngine(t, nil, 10, temporal.GlobalBase)
	if s := e.PermissionState("o1", "p-read-f1"); s != temporal.Inactive {
		t.Fatalf("initial state = %v", s)
	}
	if r := e.RemainingValidity("o1", "p-read-f1"); r != 10 {
		t.Fatalf("initial remaining = %v", r)
	}
	if r := e.RemainingValidity("o1", "unknown-perm"); r != 0 {
		t.Fatalf("unknown perm remaining = %v", r)
	}
	e.ActivatePermissions(sess, "o1")
	clk.Advance(3)
	if s := e.PermissionState("o1", "p-read-f1"); s != temporal.Valid {
		t.Fatalf("active state = %v", s)
	}
	if r := e.RemainingValidity("o1", "p-read-f1"); r != 7 {
		t.Fatalf("remaining = %v", r)
	}
}

func TestDefinePermissionValidation(t *testing.T) {
	e := NewEngine(nil)
	err := e.DefinePermission(PermSpec{
		Perm:    rbac.Permission{ID: "bad"},
		Spatial: srac.Count{Min: 5, Max: 1},
	})
	if err == nil {
		t.Fatal("invalid spatial constraint accepted")
	}
	if err := e.DefinePermission(PermSpec{Perm: rbac.Permission{ID: "ok"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.DefinePermission(PermSpec{Perm: rbac.Permission{ID: "ok"}}); !errors.Is(err, rbac.ErrExists) {
		t.Fatalf("duplicate spec: %v", err)
	}
	if _, err := e.Spec("ok"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Spec("missing"); !errors.Is(err, ErrNoSpec) {
		t.Fatalf("missing spec: %v", err)
	}
}

func TestAuthorizeWithoutSpecIsUnconstrained(t *testing.T) {
	clk := temporal.NewSimClock(0)
	e := NewEngine(clk)
	if err := e.RBAC.AddUser("o1"); err != nil {
		t.Fatal(err)
	}
	if err := e.RBAC.AddRole("r"); err != nil {
		t.Fatal(err)
	}
	// Registered directly on the RBAC layer, bypassing DefinePermission.
	if err := e.RBAC.AddPermission(rbac.Permission{ID: "raw", Op: "read", Resource: "f1"}); err != nil {
		t.Fatal(err)
	}
	if err := e.RBAC.GrantPermission("r", "raw"); err != nil {
		t.Fatal(err)
	}
	if err := e.RBAC.AssignUserRole("o1", "r"); err != nil {
		t.Fatal(err)
	}
	sess, _ := e.RBAC.CreateSession("o1")
	if err := sess.ActivateRole("r"); err != nil {
		t.Fatal(err)
	}
	d := e.Authorize(req(sess, model.NewAccess("o1", "read", "f1", "s1")))
	if !d.Granted {
		t.Fatalf("raw permission denied: %s", d)
	}
	clk.Advance(1e9)
	if d := e.Authorize(req(sess, model.NewAccess("o1", "read", "f1", "s1"))); !d.Granted {
		t.Fatal("time-insensitive raw permission expired")
	}
}

func TestSpatialModeString(t *testing.T) {
	if Admissible.String() != "admissible" || Strict.String() != "strict" {
		t.Fatal("mode strings")
	}
}

func TestAuthorizeStrictModeGatesOnPriorAccess(t *testing.T) {
	// o1 may read the plan only AFTER having read the briefing:
	// strict mode requires the post-state trace to satisfy the
	// ordering now, not eventually.
	briefing := model.Access{Op: "read", Resource: "briefing"}
	plan := model.Access{Op: "read", Resource: "plan"}
	spatial := srac.Before(briefing, plan)

	clk := temporal.NewSimClock(0)
	e := NewEngine(clk)
	for _, step := range []error{
		e.RBAC.AddUser("o1"),
		e.RBAC.AddRole("r"),
		e.DefinePermission(PermSpec{
			Perm:    rbac.Permission{ID: "p-plan", Op: "read", Resource: "plan"},
			Spatial: spatial,
			Mode:    Strict,
		}),
		e.DefinePermission(PermSpec{
			Perm: rbac.Permission{ID: "p-briefing", Op: "read", Resource: "briefing"},
		}),
		e.RBAC.GrantPermission("r", "p-plan"),
		e.RBAC.GrantPermission("r", "p-briefing"),
		e.RBAC.AssignUserRole("o1", "r"),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	sess, _ := e.RBAC.CreateSession("o1")
	if err := sess.ActivateRole("r"); err != nil {
		t.Fatal(err)
	}
	// Without the briefing in history: denied (pending, strict).
	d := e.Authorize(Request{Session: sess, Access: model.NewAccess("o1", "read", "plan", "s1")})
	if d.Granted {
		t.Fatal("strict mode granted an ungated access")
	}
	if !strings.Contains(d.Reason, "strict") {
		t.Fatalf("reason = %q", d.Reason)
	}
	// After the briefing: granted.
	hist := trace.Trace{model.NewAccess("o1", "read", "briefing", "s2")}
	d = e.Authorize(Request{Session: sess, Access: model.NewAccess("o1", "read", "plan", "s1"), History: hist})
	if !d.Granted {
		t.Fatalf("strict mode denied a gated access with satisfied guard: %s", d)
	}
}

func TestPolicyModeDirective(t *testing.T) {
	e := NewEngine(nil)
	policy := `
permission p read f @ * {
    spatial [read g @ *] >> [read f @ *]
    mode strict
}
`
	if err := LoadPolicyString(e, policy); err != nil {
		t.Fatal(err)
	}
	ps, err := e.Spec("p")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Mode != Strict {
		t.Fatalf("mode = %v", ps.Mode)
	}
	if err := LoadPolicyString(NewEngine(nil), "permission q read f @ * {\nmode sometimes\n}"); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func TestAuthorizeConcurrent(t *testing.T) {
	spatial := srac.AtMost(1000000, model.Selector{Ops: []model.Operation{"read"}})
	e, sess, _ := testEngine(t, spatial, 1e9, temporal.GlobalBase)
	e.EnableIncrementalCounting()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := model.NewAccess("o1", "read", "f1", "s1")
			for i := 0; i < 200; i++ {
				if d := e.Authorize(Request{Session: sess, Access: a}); !d.Granted {
					t.Errorf("concurrent authorize denied: %s", d)
					return
				}
				e.RecordGrant(a)
				e.PermissionState("o1", "p-read-f1")
				e.RemainingValidity("o1", "p-read-f1")
			}
		}()
	}
	wg.Wait()
	// All 1600 grants counted.
	total := 0
	for _, v := range e.Counters() {
		total += v
	}
	if total != 3200 { // global + stamped variant per grant
		t.Fatalf("counter total = %d", total)
	}
}
