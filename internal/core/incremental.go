package core

import (
	"stac/internal/model"
	"stac/internal/srac"
)

// E4 and E8 of EXPERIMENTS.md quantify the dominant enforcement cost
// of the paper's design: every decision re-scans the proof-backed
// history. For the most common constraint shape — boolean combinations
// of counting atoms #(m, n, σ), like the restricted-software ceiling —
// the scan is avoidable: the engine can maintain one counter per
// (object, selector) pair, updated as grants happen, and decide in
// O(|C|) regardless of history length.
//
// The optimisation is OPT-IN (EnableIncrementalCounting) because it
// shifts the source of truth: decisions then trust the engine's own
// grant record instead of the object's carried proofs. Inside one
// coalition engine the two coincide — every proof this coalition
// issued passed through Authorize — but callers that feed externally
// constructed histories must stay on the scan path. Constraints with
// atoms or orderings always use the scan path; only counting-only
// constraints take the fast path.

// countingOnly reports whether the constraint is built exclusively
// from T, F, counting atoms and boolean connectives.
func countingOnly(c srac.Constraint) bool {
	ok := true
	srac.Walk(c, func(x srac.Constraint) bool {
		switch x.(type) {
		case srac.Atom, srac.Ordered:
			ok = false
			return false
		}
		return true
	})
	return ok
}

// selKey canonicalises a selector for counter keying. Selector String
// is deterministic for the field sets the policy layer produces.
func selKey(sel model.Selector) string {
	// Name is a display label; exclude it from identity.
	sel.Name = ""
	return sel.String()
}

// EnableIncrementalCounting switches counting-only spatial constraints
// to engine-side counters. Call it before any accesses are granted —
// counters start at zero and only see grants made while enabled.
func (e *Engine) EnableIncrementalCounting() {
	e.policyMu.RLock()
	specs := make([]PermSpec, 0, len(e.specs))
	for _, ps := range e.specs {
		specs = append(specs, ps)
	}
	e.policyMu.RUnlock()
	e.cntMu.Lock()
	if e.counters == nil {
		e.counters = make(map[string]int)
	}
	// Register the selectors of already-defined counting-only specs.
	for _, ps := range specs {
		e.registerSelectorsLocked(ps)
	}
	e.cntMu.Unlock()
	// Flip the flag last, after the counter state exists: eligibility
	// checks read it without the lock.
	e.incremental.Store(true)
}

// registerSelectorsLocked indexes the counting selectors of a spec so
// RecordGrant knows which counters an access touches; e.cntMu must be
// held for writing.
func (e *Engine) registerSelectorsLocked(ps PermSpec) {
	if ps.Spatial == nil || !countingOnly(ps.Spatial) {
		return
	}
	srac.Walk(ps.Spatial, func(x srac.Constraint) bool {
		if cnt, ok := x.(srac.Count); ok {
			key := selKey(cnt.Sel)
			if _, seen := e.selectors[key]; !seen {
				if e.selectors == nil {
					e.selectors = make(map[string]model.Selector)
				}
				e.selectors[key] = cnt.Sel
			}
		}
		return true
	})
}

// RecordGrant tells the engine an access was actually performed (the
// proof was issued). Servers call it once per granted access; the
// counter update is a no-op unless incremental counting is enabled,
// but the flight recorder logs the grant in either mode — so a
// stream recorded by a scan-mode engine still carries the state
// signal a forced-incremental replay needs.
//
// Counters are keyed by the canonical selector string. For a policy
// selector without an object restriction, the per-requester variant
// (the shape StampObject produces at check time) is maintained
// alongside the global one; selectors that already restrict objects
// count all matching accesses, mirroring the ledger-backed scan path.
func (e *Engine) RecordGrant(a model.Access) {
	e.recordGrantEvent(a)
	if col := e.costC.Load(); col != nil {
		// One access joined some object's history: the denominator of
		// the re-walk amplification gauge.
		col.NoteAppend()
	}
	if !e.incremental.Load() {
		return
	}
	e.cntMu.Lock()
	defer e.cntMu.Unlock()
	for key, sel := range e.selectors {
		if sel.SelectAccess(a) {
			e.counters[key]++
		}
		if len(sel.Objects) == 0 {
			stamped := sel
			stamped.Objects = []model.ObjectID{a.Object}
			if stamped.SelectAccess(a) {
				e.counters[selKey(stamped)]++
			}
		}
	}
}

// countForLocked returns the recorded count for the (already stamped)
// selector; e.cntMu must be held (read or write).
func (e *Engine) countForLocked(sel model.Selector) int {
	return e.counters[selKey(sel)]
}

// evalIncremental decides a counting-only constraint against the
// engine counters plus the hypothetical requested access, mirroring
// srac.EvalPrefixStable's three-valued semantics (including the
// stability-aware negation). The read lock is held across the whole
// walk, so the decision sees an atomic counter snapshot relative to
// RecordGrant — but concurrent decisions share the lock and never
// serialize against each other.
func (e *Engine) evalIncremental(c srac.Constraint, hyp model.Access) srac.Status {
	e.cntMu.RLock()
	defer e.cntMu.RUnlock()
	s, _ := e.evalIncrementalLocked(c, hyp)
	return s
}

func (e *Engine) evalIncrementalLocked(c srac.Constraint, hyp model.Access) (srac.Status, bool) {
	switch x := c.(type) {
	case srac.TrueC:
		return srac.Satisfied, true
	case srac.FalseC:
		return srac.Violated, true
	case srac.Count:
		n := e.countForLocked(x.Sel)
		if x.Sel.SelectAccess(hyp) {
			n++
		}
		switch {
		case n > x.Max:
			return srac.Violated, true
		case n >= x.Min:
			// Mirrors srac.evalPrefix: future grants only grow the
			// count, so satisfaction is stable iff there is no ceiling.
			return srac.Satisfied, x.Max == srac.Unbounded
		default:
			return srac.Pending, false
		}
	case srac.And:
		l, lst := e.evalIncrementalLocked(x.Left, hyp)
		r, rst := e.evalIncrementalLocked(x.Right, hyp)
		switch {
		case l == srac.Violated || r == srac.Violated:
			return srac.Violated, true
		case l == srac.Satisfied && r == srac.Satisfied:
			return srac.Satisfied, lst && rst
		default:
			return srac.Pending, false
		}
	case srac.Or:
		l, lst := e.evalIncrementalLocked(x.Left, hyp)
		r, rst := e.evalIncrementalLocked(x.Right, hyp)
		switch {
		case l == srac.Satisfied || r == srac.Satisfied:
			return srac.Satisfied, (l == srac.Satisfied && lst) || (r == srac.Satisfied && rst)
		case l == srac.Violated && r == srac.Violated:
			return srac.Violated, true
		default:
			return srac.Pending, false
		}
	case srac.Not:
		return srac.NegateStable(e.evalIncrementalLocked(x.C, hyp))
	}
	return srac.Pending, false
}

// attributeIncremental explains a counting-only constraint's status
// from the engine counters plus the hypothetical requested access —
// the attribution counterpart of evalIncremental, sharing its leaf
// semantics through srac.CountLeafEval so the two verdicts agree.
func (e *Engine) attributeIncremental(c srac.Constraint, hyp model.Access) srac.Attribution {
	e.cntMu.RLock()
	defer e.cntMu.RUnlock()
	count := func(x srac.Count) int {
		n := e.countForLocked(x.Sel)
		if x.Sel.SelectAccess(hyp) {
			n++
		}
		return n
	}
	a := srac.AttributeWith(c, srac.CountLeafEval(count))
	if a.Clause != nil && len(a.Counts) > 0 {
		// Fill the observed counts of the attributed clause from the
		// same counter reads the verdict used.
		a.Counts = a.Counts[:0]
		srac.Walk(a.Clause, func(x srac.Constraint) bool {
			if cnt, ok := x.(srac.Count); ok {
				max := cnt.Max
				if max == srac.Unbounded {
					max = -1
				}
				a.Counts = append(a.Counts, srac.CountWindow{
					Selector: cnt.Sel.String(),
					Min:      cnt.Min,
					Max:      max,
					Observed: count(cnt),
				})
			}
			return true
		})
	}
	return a
}

// incrementalEligible reports whether the request can take the counter
// fast path.
func (e *Engine) incrementalEligible(ps PermSpec) bool {
	return e.incremental.Load() && ps.Spatial != nil && countingOnly(ps.Spatial)
}

// Counters returns a diagnostic snapshot of the engine's counters,
// keyed by canonical selector string.
func (e *Engine) Counters() map[string]int {
	e.cntMu.RLock()
	defer e.cntMu.RUnlock()
	out := make(map[string]int, len(e.counters))
	for k, v := range e.counters {
		out[k] = v
	}
	return out
}
