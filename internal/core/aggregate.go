package core

import (
	"fmt"
	"sort"

	"stac/internal/model"
	"stac/internal/rbac"
	"stac/internal/temporal"
)

// This file implements the extension the paper's conclusion names as
// future work: "how to classify the temporal permissions and
// aggregate their validity durations". A permission class groups
// permissions that draw on ONE shared validity pool: activating any
// member consumes the class budget, so a job function like "editing"
// can span several concrete permissions (write headline, write body,
// write captions) whose combined active time is bounded once, instead
// of per permission.

// ClassID names a permission class.
type ClassID string

// Class is a set of permissions sharing an aggregated validity pool.
type Class struct {
	ID      ClassID
	Members []rbac.PermID
	// Duration is the aggregated validity duration of the pool.
	Duration float64
	// Scheme selects the pool's base-time scheme.
	Scheme temporal.Scheme
}

func (c Class) duration() float64 {
	if c.Duration == 0 {
		return temporal.Infinite
	}
	return c.Duration
}

// DefineClass registers a permission class. Every member permission
// must already be defined, and a permission can belong to at most one
// class; once classed, the member's own Duration/Scheme are ignored in
// favour of the pool's.
func (e *Engine) DefineClass(c Class) error {
	if c.ID == "" {
		return fmt.Errorf("core: class needs an ID")
	}
	if len(c.Members) == 0 {
		return fmt.Errorf("core: class %q has no members", c.ID)
	}
	e.policyMu.Lock()
	defer e.policyMu.Unlock()
	if _, ok := e.classes[c.ID]; ok {
		return fmt.Errorf("core: class %q already defined", c.ID)
	}
	for _, m := range c.Members {
		if _, ok := e.specs[m]; !ok {
			return fmt.Errorf("core: class %q member %q: %w", c.ID, m, ErrNoSpec)
		}
		if prev, ok := e.classOf[m]; ok {
			return fmt.Errorf("core: permission %q already in class %q", m, prev)
		}
	}
	e.classes[c.ID] = c
	for _, m := range c.Members {
		e.classOf[m] = c.ID
	}
	return nil
}

// ClassOf returns the class a permission belongs to, if any.
func (e *Engine) ClassOf(id rbac.PermID) (Class, bool) {
	e.policyMu.RLock()
	defer e.policyMu.RUnlock()
	cid, ok := e.classOf[id]
	if !ok {
		return Class{}, false
	}
	return e.classes[cid], true
}

// Classes returns the defined classes sorted by ID.
func (e *Engine) Classes() []Class {
	e.policyMu.RLock()
	defer e.policyMu.RUnlock()
	out := make([]Class, 0, len(e.classes))
	for _, c := range e.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ClassRemaining returns the unused pooled validity of a class for an
// object.
func (e *Engine) ClassRemaining(obj model.ObjectID, id ClassID) float64 {
	e.policyMu.RLock()
	c, ok := e.classes[id]
	e.policyMu.RUnlock()
	if !ok {
		return 0
	}
	os, found := e.lookupObj(obj)
	if !found {
		return c.duration()
	}
	os.mu.Lock()
	tr, ok := os.trackers[classPermKey(id)]
	os.mu.Unlock()
	if !ok {
		return c.duration()
	}
	return tr.Remaining(e.clock.Now())
}

// classPermKey reserves a tracker-key namespace for class pools so a
// class id can never collide with a permission id.
func classPermKey(id ClassID) rbac.PermID {
	return rbac.PermID("class\x00" + string(id))
}

// resolveTemporal maps a permission to the tracker identity and
// temporal parameters that govern it: its class pool when classed,
// its own spec otherwise. Callers hold no engine lock.
func (e *Engine) resolveTemporal(ps PermSpec) (key rbac.PermID, dur float64, scheme temporal.Scheme) {
	e.policyMu.RLock()
	defer e.policyMu.RUnlock()
	return e.resolveTemporalLocked(ps)
}

// resolveTemporalLocked is resolveTemporal with e.policyMu already
// held (read suffices).
func (e *Engine) resolveTemporalLocked(ps PermSpec) (key rbac.PermID, dur float64, scheme temporal.Scheme) {
	if cid, classed := e.classOf[ps.Perm.ID]; classed {
		c := e.classes[cid]
		return classPermKey(cid), c.duration(), c.Scheme
	}
	return ps.Perm.ID, ps.duration(), ps.Scheme
}

// ClassifyByDuration computes the canonical classification of a
// permission set: permissions with identical (Duration, Scheme) are
// grouped into one class whose pool equals that duration. It is the
// automated form of the paper's "classify the temporal permissions";
// apply the result (or an edited version) with DefineClass.
func ClassifyByDuration(specs []PermSpec) []Class {
	type bucket struct {
		dur    float64
		scheme temporal.Scheme
	}
	groups := map[bucket][]rbac.PermID{}
	for _, ps := range specs {
		b := bucket{dur: ps.duration(), scheme: ps.Scheme}
		groups[b] = append(groups[b], ps.Perm.ID)
	}
	keys := make([]bucket, 0, len(groups))
	for b := range groups {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dur != keys[j].dur {
			return keys[i].dur < keys[j].dur
		}
		return keys[i].scheme < keys[j].scheme
	})
	var out []Class
	for i, b := range keys {
		members := groups[b]
		sort.Slice(members, func(x, y int) bool { return members[x] < members[y] })
		out = append(out, Class{
			ID:       ClassID(fmt.Sprintf("class-%d", i+1)),
			Members:  members,
			Duration: b.dur,
			Scheme:   b.scheme,
		})
	}
	return out
}
