package core

// Offline replay of a recorded decision stream: feed the flight
// recorder's records back through a FRESH engine under a simulated
// clock and either assert verdict-for-verdict equality with the live
// run (Replay — the determinism oracle) or re-decide every request
// under a CANDIDATE policy and report the verdict flips with the SRAC
// clause responsible (ShadowDiff — offline what-if analysis, the
// concrete counterpart of the symbolic reachability analyses in the
// related spatial/temporal verification work).

import (
	"encoding/json"
	"fmt"
	"strconv"

	"stac/internal/model"
	"stac/internal/obs/record"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/sral"
	"stac/internal/temporal"
	"stac/internal/trace"
)

// ReplayOptions tunes a replay run.
type ReplayOptions struct {
	// Incremental forces the replay engine into incremental counting
	// mode. When false, the mode is auto-detected from the stream's
	// decide records (they carry the live engine's mode flag).
	Incremental bool
	// Coverage enables clause-coverage accounting on the replay
	// engine, so an offline run can report which clauses of the
	// (candidate) policy were decisive over the recorded traffic.
	Coverage bool
}

// Divergence is one field of one replayed decision that differs from
// the recorded outcome.
type Divergence struct {
	Seq        uint64 `json:"seq"`
	DecisionID string `json:"decision_id,omitempty"`
	Access     string `json:"access"`
	Field      string `json:"field"`
	Recorded   string `json:"recorded"`
	Replayed   string `json:"replayed"`
}

// ReplayResult summarises a determinism replay.
type ReplayResult struct {
	// Decisions is the number of decide records replayed.
	Decisions int `json:"decisions"`
	// PolicyMismatch reports that the replay engine's policy digest
	// differs from the digest stamped on the records — divergences are
	// then expected, not a determinism failure.
	PolicyMismatch bool   `json:"policy_mismatch,omitempty"`
	RecordedDigest string `json:"recorded_digest,omitempty"`
	ReplayDigest   string `json:"replay_digest,omitempty"`
	// Divergences lists every field of every decision that failed to
	// reproduce; empty means the stream replayed bit-identically.
	Divergences []Divergence `json:"divergences,omitempty"`
	// Coverage is the replay engine's clause coverage (with
	// ReplayOptions.Coverage).
	Coverage []ClauseCoverage `json:"coverage,omitempty"`
}

// Deterministic reports whether every recorded verdict and
// explanation reproduced exactly.
func (r *ReplayResult) Deterministic() bool { return len(r.Divergences) == 0 }

// Replay feeds the recorded stream through a fresh engine running
// policySrc under a SimClock and compares every replayed decision —
// verdict, covering permission, deny reason, spatial/program/temporal
// statuses and the full explanation — against the recorded outcome.
// Decision IDs are excluded (they are minted randomly).
func Replay(policySrc string, records []record.Record, opts ReplayOptions) (*ReplayResult, error) {
	res := &ReplayResult{}
	eng, err := replayStream(policySrc, records, opts, func(rec record.Record, d Decision) {
		res.Decisions++
		acc := rec.Op + " " + rec.Resource + " @ " + rec.Server
		diff := func(field, recorded, replayed string) {
			if recorded != replayed {
				res.Divergences = append(res.Divergences, Divergence{
					Seq: rec.Seq, DecisionID: rec.DecisionID, Access: acc,
					Field: field, Recorded: recorded, Replayed: replayed,
				})
			}
		}
		diff("granted", strconv.FormatBool(rec.Granted), strconv.FormatBool(d.Granted))
		diff("perm", rec.Perm, string(d.Perm))
		diff("deny", rec.Deny, string(d.Deny))
		diff("reason", rec.Reason, d.Reason)
		diff("spatial", rec.Spatial, d.Spatial.String())
		diff("program_verdict", rec.ProgramVerdict, d.ProgramVerdict.String())
		diff("temporal", rec.Temporal, d.Temporal.String())
		diff("explanation", string(rec.Explanation), explanationJSON(d.Explanation))
	})
	if err != nil {
		return nil, err
	}
	if digest := recordedDigest(records); digest != "" {
		res.RecordedDigest = digest
		res.ReplayDigest = PolicyDigest(eng)
		res.PolicyMismatch = res.ReplayDigest != digest
	}
	if opts.Coverage {
		res.Coverage = eng.Coverage()
	}
	return res, nil
}

// Flip is one decision whose verdict changed under the candidate
// policy.
type Flip struct {
	Seq        uint64  `json:"seq"`
	DecisionID string  `json:"decision_id,omitempty"`
	Time       float64 `json:"time"`
	Object     string  `json:"object"`
	Access     string  `json:"access"`
	// RecordedGranted is the live verdict, CandidateGranted the
	// candidate policy's.
	RecordedGranted  bool `json:"recorded_granted"`
	CandidateGranted bool `json:"candidate_granted"`
	// Deny/Reason describe the denying side of the flip (the candidate
	// decision for grant→deny, the recorded one for deny→grant).
	Deny   string `json:"deny,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Clause is the SRAC subformula the denying side's verdict is
	// attributed to (empty for temporal or RBAC flips, where Detail
	// carries the budget or role arithmetic instead).
	Clause string `json:"clause,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// DiffReport summarises a shadow diff: the recorded stream re-decided
// under a candidate policy.
type DiffReport struct {
	Decisions       int    `json:"decisions"`
	RecordedDigest  string `json:"recorded_digest,omitempty"`
	CandidateDigest string `json:"candidate_digest"`
	// Flips lists every decision whose verdict changed, in stream
	// order.
	Flips []Flip `json:"flips,omitempty"`
	// Coverage is the candidate policy's clause coverage over the
	// recorded traffic (with ReplayOptions.Coverage).
	Coverage []ClauseCoverage `json:"coverage,omitempty"`
}

// ShadowDiff replays the recorded stream against candidateSrc and
// reports every verdict flip, attributing each to the SRAC clause
// (or temporal budget) responsible on the denying side.
func ShadowDiff(candidateSrc string, records []record.Record, opts ReplayOptions) (*DiffReport, error) {
	rep := &DiffReport{}
	eng, err := replayStream(candidateSrc, records, opts, func(rec record.Record, d Decision) {
		rep.Decisions++
		if d.Granted == rec.Granted {
			return
		}
		f := Flip{
			Seq: rec.Seq, DecisionID: rec.DecisionID, Time: rec.Time,
			Object:           rec.Object,
			Access:           rec.Op + " " + rec.Resource + " @ " + rec.Server,
			RecordedGranted:  rec.Granted,
			CandidateGranted: d.Granted,
		}
		if !d.Granted {
			// grant → deny: the candidate decision explains itself.
			f.Deny = string(d.Deny)
			f.Reason = d.Reason
			f.Clause, f.Detail = explainFlip(d.Explanation)
		} else {
			// deny → grant: the recorded explanation names what the
			// candidate policy relaxed.
			f.Deny = rec.Deny
			f.Reason = rec.Reason
			var ex Explanation
			if len(rec.Explanation) > 0 && json.Unmarshal(rec.Explanation, &ex) == nil {
				f.Clause, f.Detail = explainFlip(&ex)
			}
		}
		rep.Flips = append(rep.Flips, f)
	})
	if err != nil {
		return nil, err
	}
	rep.RecordedDigest = recordedDigest(records)
	rep.CandidateDigest = PolicyDigest(eng)
	if opts.Coverage {
		rep.Coverage = eng.Coverage()
	}
	return rep, nil
}

// explainFlip condenses an explanation into (clause, detail) for a
// flip row: spatial denials name the violated clause, temporal ones
// carry the budget arithmetic in the detail.
func explainFlip(ex *Explanation) (clause, detail string) {
	if ex == nil {
		return "", ""
	}
	if ex.Temporal != nil {
		budget := "inf"
		if ex.Temporal.Budget >= 0 {
			budget = fmt.Sprintf("%.6gs", ex.Temporal.Budget)
		}
		return "", fmt.Sprintf("temporal budget: consumed %.6gs of %s (%s scheme)",
			ex.Temporal.Consumed, budget, ex.Temporal.Scheme)
	}
	return ex.Clause, ex.Detail
}

// recordedDigest returns the policy digest stamped on the stream ("",
// when the stream is empty or unstamped).
func recordedDigest(records []record.Record) string {
	for _, rec := range records {
		if rec.Policy != "" {
			return rec.Policy
		}
	}
	return ""
}

// replayStream drives a fresh engine (policy policySrc, SimClock)
// through the recorded event stream in sequence order, calling visit
// for every decide record with the replayed decision. It returns the
// engine so callers can inspect digests, counters and coverage.
func replayStream(policySrc string, records []record.Record, opts ReplayOptions, visit func(record.Record, Decision)) (*Engine, error) {
	clk := temporal.NewSimClock(0)
	e := NewEngine(clk)
	if err := LoadPolicyString(e, policySrc); err != nil {
		return nil, fmt.Errorf("replay: load policy: %w", err)
	}
	incremental := opts.Incremental
	for _, rec := range records {
		if rec.Kind == record.KindDecide && rec.Incremental {
			incremental = true
			break
		}
	}
	if incremental {
		e.EnableIncrementalCounting()
	}
	if opts.Coverage {
		e.EnableCoverage()
	}

	sessions := make(map[string]*rbac.Session)
	// histories accumulates each object's reconstructed proof-backed
	// history: decide records delta-encode theirs against the previous
	// record's (schema 2), so the stream is unfolded as it is walked.
	histories := make(map[string][]record.HistoryEntry)
	// programs likewise resolves interned decide programs: a record
	// flagged ProgramCached reuses the object's previously declared
	// program.
	programs := make(map[string]sral.Node)
	for i, rec := range records {
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("replay: record %d: %w", i, err)
		}
		clk.Set(rec.Time)
		obj := model.ObjectID(rec.Object)
		switch rec.Kind {
		case record.KindArrive:
			e.ObjectArrived(obj, model.ServerID(rec.Server))
		case record.KindActivate:
			// Mirror server.Authenticate: a re-authentication replaces
			// the object's session.
			if old := sessions[rec.Object]; old != nil {
				old.Close()
			}
			sess := replaySession(e, rec.User, rec.Roles)
			sessions[rec.Object] = sess
			if sess != nil {
				e.ActivatePermissions(sess, obj)
			}
		case record.KindDeactivate:
			// Mirror server.Depart: deactivate but keep the session —
			// the live engine deactivates before closing, and a decide
			// record may still follow under another member's session.
			if sess := sessions[rec.Object]; sess != nil {
				e.DeactivatePermissions(sess, obj)
			}
		case record.KindGrant:
			e.RecordGrant(model.Access{
				Object:   obj,
				Op:       model.Operation(rec.Op),
				Resource: model.ResourceID(rec.Resource),
				Server:   model.ServerID(rec.Server),
			})
		case record.KindDecide:
			sess := sessions[rec.Object]
			if sess == nil && rec.User != "" {
				// Mid-flight recording: the activation predates the
				// stream. Best-effort recreate the subject; temporal
				// activation happens inside Authorize (idempotent).
				sess = replaySession(e, rec.User, rec.Roles)
				sessions[rec.Object] = sess
			}
			hist, err := reconstructHistory(histories[rec.Object], rec)
			if err != nil {
				return nil, fmt.Errorf("replay: record %d: %w", i, err)
			}
			histories[rec.Object] = hist
			// Mirror the live engine's interning: the cache advances
			// only on an inline program (a no-program decide leaves it
			// for later ProgramCached records). Best-effort, matching
			// schema 1: an unparseable program replays as no program.
			var prog sral.Node
			if rec.Program != "" {
				if n, err := sral.Parse(rec.Program); err == nil {
					prog = n
				}
				programs[rec.Object] = prog
			} else if rec.ProgramCached {
				prog = programs[rec.Object]
			}
			visit(rec, e.Authorize(replayRequest(sess, rec, hist, prog)))
		}
	}
	return e, nil
}

// reconstructHistory unfolds a decide record's delta-encoded history:
// the first HistoryBase entries of the object's previously
// reconstructed history followed by the record's own entries. Schema 1
// records always have HistoryBase 0, so reconstruction is the identity
// for them.
func reconstructHistory(prev []record.HistoryEntry, rec record.Record) ([]record.HistoryEntry, error) {
	if rec.HistoryBase > len(prev) {
		return nil, fmt.Errorf("history base %d exceeds the object's %d reconstructed entries (truncated stream?)",
			rec.HistoryBase, len(prev))
	}
	if rec.HistoryBase == 0 {
		return rec.History, nil
	}
	full := make([]record.HistoryEntry, 0, rec.HistoryBase+len(rec.History))
	full = append(full, prev[:rec.HistoryBase]...)
	full = append(full, rec.History...)
	return full, nil
}

// replaySession recreates a subject: a session for the user with the
// recorded roles activated. Roles the (candidate) policy no longer
// assigns are skipped — that is exactly the counterfactual a shadow
// diff must surface as RBAC denials. Returns nil when the user is
// unknown to the policy.
func replaySession(e *Engine, user string, roles []string) *rbac.Session {
	sess, err := e.RBAC.CreateSession(rbac.UserID(user))
	if err != nil {
		return nil
	}
	for _, r := range roles {
		_ = sess.ActivateRole(rbac.RoleID(r)) // best-effort by design
	}
	return sess
}

// replayRequest reconstructs the Authorize input from a decide
// record: the access, the reconstructed proof-backed history with the
// RECORDED oracle verdicts, and the (interning-resolved) declared
// program.
func replayRequest(sess *rbac.Session, rec record.Record, entries []record.HistoryEntry, prog sral.Node) Request {
	req := Request{
		Session: sess,
		Access: model.Access{
			Object:   model.ObjectID(rec.Object),
			Op:       model.Operation(rec.Op),
			Resource: model.ResourceID(rec.Resource),
			Server:   model.ServerID(rec.Server),
		},
	}
	if len(entries) > 0 {
		proven := make(map[model.Access]bool, len(entries))
		hist := make(trace.Trace, 0, len(entries))
		for _, h := range entries {
			a := model.Access{
				Object:   model.ObjectID(h.Object),
				Op:       model.Operation(h.Op),
				Resource: model.ResourceID(h.Resource),
				Server:   model.ServerID(h.Server),
			}
			hist = append(hist, a)
			proven[a] = h.Proven
		}
		req.History = hist
		req.Proofs = srac.OracleFunc(func(a model.Access) bool { return proven[a] })
	}
	req.Program = prog
	return req
}

// explanationJSON canonicalises an explanation for comparison — the
// same json.Marshal the recorder used, so equal explanations yield
// equal bytes.
func explanationJSON(ex *Explanation) string {
	if ex == nil {
		return ""
	}
	b, err := json.Marshal(ex)
	if err != nil {
		return ""
	}
	return string(b)
}
