package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"stac/internal/hlc"
	"stac/internal/model"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/sral"
	"stac/internal/temporal"
	"stac/internal/trace"
)

// costEngine builds an engine with one permission per constraint
// (p0 reads f0, p1 reads f1, ...), coverage and cost profiling on, and
// an authenticated session holding all of them.
func costEngine(t *testing.T, spatials []srac.Constraint) (*Engine, *rbac.Session) {
	t.Helper()
	e := NewEngine(temporal.NewSimClock(0))
	for _, step := range []error{
		e.RBAC.AddUser("o1"),
		e.RBAC.AddRole("r"),
		e.RBAC.AssignUserRole("o1", "r"),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	for i, sp := range spatials {
		id := rbac.PermID(fmt.Sprintf("p%d", i))
		if err := e.DefinePermission(PermSpec{
			Perm:    rbac.Permission{ID: id, Op: "read", Resource: model.ResourceID(fmt.Sprintf("f%d", i))},
			Spatial: sp,
		}); err != nil {
			t.Fatal(err)
		}
		if err := e.RBAC.GrantPermission("r", id); err != nil {
			t.Fatal(err)
		}
	}
	e.EnableCoverage()
	e.EnableCostProfiling()
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ActivateRole("r"); err != nil {
		t.Fatal(err)
	}
	return e, sess
}

// randomSpatial generates a constraint over the full grammar, the same
// shape space the srac coverage property tests explore.
func randomSpatial(r *rand.Rand, depth int) srac.Constraint {
	accs := []model.Access{
		{Op: "read", Resource: "f1", Server: "s1"},
		{Op: "write", Resource: "f2", Server: "s1"},
		{Op: "read", Resource: "f3", Server: "s2"},
	}
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return srac.Require(accs[r.Intn(len(accs))])
		case 1:
			lo := r.Intn(3)
			max := lo + r.Intn(4)
			if r.Intn(4) == 0 {
				max = srac.Unbounded
			}
			return srac.Count{Min: lo, Max: max, Sel: model.Selector{Ops: []model.Operation{"read"}}}
		case 2:
			return srac.Before(accs[r.Intn(len(accs))], accs[r.Intn(len(accs))])
		case 3:
			return srac.TrueC{}
		default:
			return srac.FalseC{}
		}
	}
	switch r.Intn(3) {
	case 0:
		return srac.And{Left: randomSpatial(r, depth-1), Right: randomSpatial(r, depth-1)}
	case 1:
		return srac.Or{Left: randomSpatial(r, depth-1), Right: randomSpatial(r, depth-1)}
	default:
		return srac.Not{C: randomSpatial(r, depth-1)}
	}
}

// randomCountingSpatial generates a counting-only constraint — the
// fragment the incremental counter path accepts.
func randomCountingSpatial(r *rand.Rand, depth int) srac.Constraint {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return srac.TrueC{}
		case 1:
			return srac.FalseC{}
		default:
			lo := r.Intn(2)
			max := lo + r.Intn(4)
			if r.Intn(4) == 0 {
				max = srac.Unbounded
			}
			sel := model.Selector{Ops: []model.Operation{"read"}}
			if r.Intn(2) == 0 {
				sel = model.Selector{Resources: []model.ResourceID{model.ResourceID(fmt.Sprintf("f%d", r.Intn(3)))}}
			}
			return srac.Count{Min: lo, Max: max, Sel: sel}
		}
	}
	switch r.Intn(3) {
	case 0:
		return srac.And{Left: randomCountingSpatial(r, depth-1), Right: randomCountingSpatial(r, depth-1)}
	case 1:
		return srac.Or{Left: randomCountingSpatial(r, depth-1), Right: randomCountingSpatial(r, depth-1)}
	default:
		return srac.Not{C: randomCountingSpatial(r, depth-1)}
	}
}

// reconcileCostWithCoverage asserts the central invariant of the cost
// layer: cost and coverage observe the SAME evaluations, keyed by the
// same (perm, path) identity — per clause, cost evals == coverage
// evaluated and cost decisive == coverage decisive, with identical
// clause text.
func reconcileCostWithCoverage(t *testing.T, e *Engine) {
	t.Helper()
	cover := e.Coverage()
	rep := e.CostReport()
	if len(cover) != len(rep.Clauses) {
		t.Fatalf("coverage has %d cells, cost %d", len(cover), len(rep.Clauses))
	}
	costBy := map[string]int{}
	for i, cc := range rep.Clauses {
		costBy[cc.Perm+"\x00"+cc.Path] = i
	}
	for _, cv := range cover {
		i, ok := costBy[cv.Perm+"\x00"+cv.Path]
		if !ok {
			t.Fatalf("coverage cell %s/%q missing from cost report", cv.Perm, cv.Path)
		}
		cc := rep.Clauses[i]
		if cc.Evals != cv.Evaluated {
			t.Fatalf("%s/%q: cost evals %d != coverage evaluated %d", cv.Perm, cv.Path, cc.Evals, cv.Evaluated)
		}
		if cc.Decisive != cv.Decisive {
			t.Fatalf("%s/%q: cost decisive %d != coverage decisive %d", cv.Perm, cv.Path, cc.Decisive, cv.Decisive)
		}
		if cc.Clause != cv.Clause {
			t.Fatalf("%s/%q: cost clause %q != coverage clause %q", cv.Perm, cv.Path, cc.Clause, cv.Clause)
		}
		if cc.SampledEvals > cc.Evals {
			t.Fatalf("%s/%q: sampled %d > evals %d", cv.Perm, cv.Path, cc.SampledEvals, cc.Evals)
		}
	}
}

// TestCostMatchesCoverageScan: over random full-grammar constraints and
// random histories, the scan path's cost cells reconcile exactly with
// the coverage cells.
func TestCostMatchesCoverageScan(t *testing.T) {
	r := rand.New(rand.NewSource(411))
	pool := []model.Access{
		model.NewAccess("o1", "read", "f1", "s1"),
		model.NewAccess("o1", "write", "f2", "s1"),
		model.NewAccess("o1", "read", "f3", "s2"),
	}
	spatials := make([]srac.Constraint, 12)
	for i := range spatials {
		spatials[i] = randomSpatial(r, 1+r.Intn(3))
	}
	e, sess := costEngine(t, spatials)
	decisions := 0
	for round := 0; round < 8; round++ {
		for i := range spatials {
			var hist trace.Trace
			for j := 0; j < r.Intn(5); j++ {
				hist = append(hist, pool[r.Intn(len(pool))])
			}
			a := model.NewAccess("o1", "read", model.ResourceID(fmt.Sprintf("f%d", i)), "s1")
			e.Authorize(Request{Session: sess, Access: a, History: hist})
			decisions++
		}
	}
	reconcileCostWithCoverage(t, e)
	rep := e.CostReport()
	amp := rep.Amplification
	if amp.PrefixEvals != int64(decisions) || amp.ScanEvals != int64(decisions) {
		t.Fatalf("amplification %+v, want %d scan evals", amp, decisions)
	}
	var sampled int64
	for _, cc := range rep.Clauses {
		sampled += cc.SampledEvals
	}
	if sampled == 0 {
		t.Fatal("no evaluation was sampled for timing (first tick must sample)")
	}
}

// TestCostMatchesCoverageIncremental: the counter fast path records
// the same reconciliation, and RecordGrant feeds the amplification
// denominator.
func TestCostMatchesCoverageIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(431))
	spatials := make([]srac.Constraint, 10)
	for i := range spatials {
		spatials[i] = randomCountingSpatial(r, 1+r.Intn(3))
	}
	e, sess := costEngine(t, spatials)
	e.EnableIncrementalCounting()
	grants := 0
	for round := 0; round < 6; round++ {
		for i := range spatials {
			a := model.NewAccess("o1", "read", model.ResourceID(fmt.Sprintf("f%d", i)), "s1")
			d := e.Authorize(Request{Session: sess, Access: a})
			if d.Granted {
				e.RecordGrant(a)
				grants++
			}
		}
	}
	reconcileCostWithCoverage(t, e)
	amp := e.CostReport().Amplification
	if amp.PrefixEvals != int64(6*len(spatials)) {
		t.Fatalf("prefix evals = %d, want %d", amp.PrefixEvals, 6*len(spatials))
	}
	if amp.ScanEvals != 0 {
		t.Fatalf("scan evals = %d on the pure counter path", amp.ScanEvals)
	}
	if amp.Appends != int64(grants) {
		t.Fatalf("appends = %d, want %d grants", amp.Appends, grants)
	}
	if grants > 0 && amp.EvalsPerAppend <= 0 {
		t.Fatalf("EvalsPerAppend = %v with %d grants", amp.EvalsPerAppend, grants)
	}
}

// TestCostProfilingDecisionsBitIdentical: the profiler must be a pure
// observer. Two engines fed the identical request sequence — one with
// cost profiling (and coverage) on, one fully detached — produce
// bit-identical decisions, explanations included.
func TestCostProfilingDecisionsBitIdentical(t *testing.T) {
	r1 := rand.New(rand.NewSource(443))
	r2 := rand.New(rand.NewSource(443))
	build := func(r *rand.Rand, profiled bool) (*Engine, *rbac.Session) {
		spatials := make([]srac.Constraint, 8)
		for i := range spatials {
			spatials[i] = randomSpatial(r, 1+r.Intn(3))
		}
		e := NewEngine(temporal.NewSimClock(0))
		for _, step := range []error{
			e.RBAC.AddUser("o1"),
			e.RBAC.AddRole("r"),
			e.RBAC.AssignUserRole("o1", "r"),
		} {
			if step != nil {
				t.Fatal(step)
			}
		}
		for i, sp := range spatials {
			id := rbac.PermID(fmt.Sprintf("p%d", i))
			if err := e.DefinePermission(PermSpec{
				Perm:    rbac.Permission{ID: id, Op: "read", Resource: model.ResourceID(fmt.Sprintf("f%d", i))},
				Spatial: sp,
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.RBAC.GrantPermission("r", id); err != nil {
				t.Fatal(err)
			}
		}
		if profiled {
			e.EnableCoverage()
			e.EnableCostProfiling()
		}
		sess, err := e.RBAC.CreateSession("o1")
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.ActivateRole("r"); err != nil {
			t.Fatal(err)
		}
		return e, sess
	}
	eA, sessA := build(r1, true)
	eB, sessB := build(r2, false)

	pool := []model.Access{
		model.NewAccess("o1", "read", "f1", "s1"),
		model.NewAccess("o1", "write", "f2", "s1"),
		model.NewAccess("o1", "read", "f3", "s2"),
	}
	prog := sral.MustParse("read f1 @ s1; read f3 @ s2")
	drive := rand.New(rand.NewSource(457))
	for step := 0; step < 200; step++ {
		var hist trace.Trace
		for j := 0; j < drive.Intn(5); j++ {
			hist = append(hist, pool[drive.Intn(len(pool))])
		}
		a := model.NewAccess("o1", "read", model.ResourceID(fmt.Sprintf("f%d", drive.Intn(8))), "s1")
		var p sral.Node
		if drive.Intn(3) == 0 {
			p = prog
		}
		dA := eA.Authorize(Request{Session: sessA, Access: a, History: hist, Program: p})
		dB := eB.Authorize(Request{Session: sessB, Access: a, History: hist, Program: p})
		// The HLC stamp carries physical time; everything the caller
		// acts on must match bit for bit.
		dA.HLC, dB.HLC = hlc.Timestamp{}, hlc.Timestamp{}
		dA.ID, dB.ID = "", ""
		if !reflect.DeepEqual(dA, dB) {
			t.Fatalf("step %d: profiled decision diverges:\n with: %+v\n sans: %+v", step, dA, dB)
		}
		if dA.Granted {
			eA.RecordGrant(a)
			eB.RecordGrant(a)
		}
	}
	if rep := eA.CostReport(); len(rep.Clauses) == 0 || rep.Amplification.PrefixEvals == 0 {
		t.Fatal("profiled engine collected nothing — A/B compared an idle profiler")
	}
}

// TestCostStaticTable: static checks land in the per-(program, policy)
// cost table keyed by content digests, aggregating repeat checks.
func TestCostStaticTable(t *testing.T) {
	dep := model.Access{Op: "read", Resource: "dep"}
	f0 := model.Access{Op: "read", Resource: "f0"}
	e, sess := costEngine(t, []srac.Constraint{
		srac.Implies(srac.Require(f0), srac.Before(dep, f0)),
	})
	good := sral.MustParse("read dep @ s1; read f0 @ s1")
	bad := sral.MustParse("read f0 @ s1")
	a := model.NewAccess("o1", "read", "f0", "s1")
	for i := 0; i < 3; i++ {
		e.Authorize(Request{Session: sess, Access: a, Program: good})
	}
	if d := e.Authorize(Request{Session: sess, Access: a, Program: bad}); d.Granted {
		t.Fatalf("statically impossible program granted: %s", d)
	}
	static := e.CostReport().Static
	if len(static) != 2 {
		t.Fatalf("static table = %+v, want 2 rows", static)
	}
	wantPolicy := PolicyDigest(e)
	byProg := map[string]int{}
	for i, s := range static {
		if s.PolicyDigest != wantPolicy {
			t.Fatalf("row %d policy digest %q != engine policy digest %q", i, s.PolicyDigest, wantPolicy)
		}
		if len(s.ProgramDigest) != 64 {
			t.Fatalf("row %d program digest %q not a sha256 hex", i, s.ProgramDigest)
		}
		byProg[s.ProgramDigest] = i
	}
	gi, ok := byProg[ProgramDigest(good)]
	if !ok {
		t.Fatalf("good program digest missing from %+v", static)
	}
	g := static[gi]
	if g.Checks != 3 || g.ProgramSize != good.Size() || g.TotalNS <= 0 || g.MeanNS <= 0 {
		t.Fatalf("good row = %+v", g)
	}
	b := static[byProg[ProgramDigest(bad)]]
	if b.Checks != 1 || b.Verdict != srac.NoTrace.String() {
		t.Fatalf("bad row = %+v", b)
	}
}
