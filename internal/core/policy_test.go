package core

import (
	"strings"
	"testing"

	"stac/internal/model"
	"stac/internal/srac"
	"stac/internal/temporal"
)

const samplePolicy = `
# Coalition audit policy.
user o1
user officer
role auditor
role admin
role reader
inherit admin auditor
assign o1 auditor
assign officer admin

permission p-audit read module-a @ * {
    spatial  [read dep-1 @ *] >> [read module-a @ *]
    duration 10m
    scheme   global
    describe audit module-a after its dependency
}
permission p-rsw execute rsw @ * {
    spatial  count(0, 5, sigma[r=rsw])
    duration inf
}
permission p-plain read notes @ s1
grant auditor p-audit
grant auditor p-rsw
grant reader p-plain

ssd no-admin-reader 2 admin reader
dsd no-dual 2 auditor reader
`

func TestLoadPolicy(t *testing.T) {
	e := NewEngine(temporal.NewSimClock(0))
	if err := LoadPolicyString(e, samplePolicy); err != nil {
		t.Fatal(err)
	}
	users, roles, perms, _ := e.RBAC.Stats()
	if users != 2 || roles != 3 || perms != 3 {
		t.Fatalf("stats = %d users %d roles %d perms", users, roles, perms)
	}
	ps, err := e.Spec("p-audit")
	if err != nil {
		t.Fatal(err)
	}
	if ps.Duration != 600 || ps.Scheme != temporal.GlobalBase {
		t.Fatalf("p-audit spec = %+v", ps)
	}
	if _, ok := ps.Spatial.(srac.Ordered); !ok {
		t.Fatalf("p-audit spatial = %T", ps.Spatial)
	}
	if ps.Perm.Server != "" || ps.Perm.Resource != "module-a" {
		t.Fatalf("p-audit perm = %+v", ps.Perm)
	}
	if ps.Perm.Description == "" {
		t.Fatal("describe not recorded")
	}
	rsw, err := e.Spec("p-rsw")
	if err != nil {
		t.Fatal(err)
	}
	if rsw.Duration != temporal.Infinite {
		t.Fatalf("p-rsw duration = %v", rsw.Duration)
	}
	plain, err := e.Spec("p-plain")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Spatial != nil || plain.Perm.Server != "s1" {
		t.Fatalf("p-plain spec = %+v", plain)
	}
	// The loaded policy is enforceable end to end.
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ActivateRole("auditor"); err != nil {
		t.Fatal(err)
	}
	d := e.Authorize(Request{Session: sess, Access: model.NewAccess("o1", "read", "module-a", "s2")})
	if !d.Granted {
		t.Fatalf("policy-driven grant failed: %s", d)
	}
}

func TestLoadPolicyErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown directive", "frobnicate x", "unknown directive"},
		{"user arity", "user", "one argument"},
		{"role arity", "role a b", "one argument"},
		{"assign arity", "assign alice", "user and role"},
		{"assign unknown", "assign alice r", "not found"},
		{"inherit arity", "inherit a", "senior and junior"},
		{"grant arity", "grant r", "role and permission"},
		{"ssd arity", "ssd x 2 a", "at least two roles"},
		{"ssd bad card", "role a\nrole b\nssd x two a b", "cardinality"},
		{"perm header", "permission p read", "header"},
		{"perm missing @", "permission p read f s1 {", "missing @"},
		{"perm trailing", "permission p read f @ s1 junk", "unexpected tokens"},
		{"perm unterminated", "permission p read f @ s1 {\nspatial T", "unterminated"},
		{"perm bad spatial", "permission p read f @ s1 {\nspatial [[\n}", "spatial"},
		{"perm bad duration", "permission p read f @ s1 {\nduration soon\n}", "duration"},
		{"perm bad scheme", "permission p read f @ s1 {\nscheme sometimes\n}", "scheme"},
		{"perm bad directive", "permission p read f @ s1 {\ncolour red\n}", "unknown permission directive"},
		{"dup user", "user a\nuser a", "exists"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(nil)
			err := LoadPolicyString(e, tc.src)
			if err == nil {
				t.Fatalf("policy accepted: %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseDuration(t *testing.T) {
	tests := []struct {
		in   string
		want float64
		err  bool
	}{
		{"30", 30, false},
		{"30s", 30, false},
		{"1.5s", 1.5, false},
		{"5m", 300, false},
		{"2h", 7200, false},
		{"250ms", 0.25, false},
		{"inf", temporal.Infinite, false},
		{"-3s", 0, true},
		{"abc", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseDuration(tt.in)
		if (err != nil) != tt.err {
			t.Errorf("ParseDuration(%q) error = %v", tt.in, err)
			continue
		}
		if !tt.err && got != tt.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{temporal.Infinite, "inf"},
		{7200, "2h"},
		{300, "5m"},
		{90, "90s"},
		{1.5, "1.5s"},
	}
	for _, tt := range tests {
		if got := FormatDuration(tt.in); got != tt.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestPolicyCommentsAndBlankLines(t *testing.T) {
	e := NewEngine(nil)
	src := "# full line comment\n\n   \nuser a # trailing comment\n"
	if err := LoadPolicyString(e, src); err != nil {
		t.Fatal(err)
	}
	if !e.RBAC.HasUser("a") {
		t.Fatal("user not added")
	}
}
