package core

import (
	"testing"

	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/temporal"
	"stac/internal/trace"
)

// detachLockStats strips the telemetry sinks off every lock stripe,
// reverting the engine to plain sync locking — the control arm of the
// E15 overhead measurement. Benchmark-only: production engines are
// always instrumented.
func detachLockStats(e *Engine) {
	e.policyMu.Instrument(nil)
	e.cntMu.Instrument(nil)
	for i := range e.shards {
		e.shards[i].mu.Instrument(nil)
	}
}

func benchEngine(b *testing.B) (*Engine, Request) {
	b.Helper()
	e := NewEngine(temporal.NewSimClock(0))
	e.SetObs(obs.NewRegistry())
	for _, step := range []error{
		e.RBAC.AddUser("o1"),
		e.RBAC.AddRole("r"),
		e.DefinePermission(PermSpec{Perm: rbac.Permission{ID: "p", Op: "read", Resource: "f"}}),
		e.RBAC.GrantPermission("r", "p"),
		e.RBAC.AssignUserRole("o1", "r"),
	} {
		if step != nil {
			b.Fatal(step)
		}
	}
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.ActivateRole("r"); err != nil {
		b.Fatal(err)
	}
	return e, Request{
		Session: sess,
		Access:  model.NewAccess("o1", "read", "f", "s1"),
		History: trace.Trace{},
	}
}

// benchSpatialEngine builds an engine whose permission carries a real
// spatial constraint, so the decision path pays a prefix evaluation —
// the work the cost profiler shadows.
func benchSpatialEngine(b *testing.B) (*Engine, Request) {
	b.Helper()
	e := NewEngine(temporal.NewSimClock(0))
	e.SetObs(obs.NewRegistry())
	dep := model.Access{Op: "read", Resource: "dep"}
	f := model.Access{Op: "read", Resource: "f"}
	spatial := srac.And{
		Left:  srac.Implies(srac.Require(f), srac.Before(dep, f)),
		Right: srac.Count{Min: 0, Max: 64, Sel: model.Selector{Ops: []model.Operation{"read"}}},
	}
	for _, step := range []error{
		e.RBAC.AddUser("o1"),
		e.RBAC.AddRole("r"),
		e.DefinePermission(PermSpec{
			Perm:    rbac.Permission{ID: "p", Op: "read", Resource: "f"},
			Spatial: spatial,
		}),
		e.RBAC.GrantPermission("r", "p"),
		e.RBAC.AssignUserRole("o1", "r"),
	} {
		if step != nil {
			b.Fatal(step)
		}
	}
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.ActivateRole("r"); err != nil {
		b.Fatal(err)
	}
	hist := trace.Trace{
		model.NewAccess("o1", "read", "dep", "s1"),
		model.NewAccess("o1", "read", "f", "s1"),
		model.NewAccess("o1", "read", "dep", "s1"),
		model.NewAccess("o1", "read", "f", "s1"),
	}
	return e, Request{
		Session: sess,
		Access:  model.NewAccess("o1", "read", "f", "s1"),
		History: hist,
	}
}

// BenchmarkE17_CostProfilingOverhead runs the same constrained
// Authorize tour with clause coverage on in both arms (the production
// default since the coverage PR) and cost profiling toggled. With both
// on, the engine runs ONE shared cost walk and splits it between the
// aggregations, so the profiled arm pays only the per-clause cell
// updates, the amplification counters and the 1-in-64 timing samples.
// The EXPERIMENTS E17 acceptance bar is <3% delta between the arms.
func BenchmarkE17_CostProfilingOverhead(b *testing.B) {
	for _, arm := range []string{"profiled", "detached"} {
		b.Run(arm, func(b *testing.B) {
			e, req := benchSpatialEngine(b)
			e.EnableCoverage()
			if arm == "profiled" {
				e.EnableCostProfiling()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := e.Authorize(req); !d.Granted {
					b.Fatal(d.Reason)
				}
			}
		})
	}
}

// BenchmarkE15_LockInstrumentationOverhead runs the same unrecorded
// Authorize tour with the lock stripes instrumented (production
// default: counter bumps on every acquisition, 1/64-sampled wait/hold
// timing) and detached (plain sync path behind one nil check). The
// EXPERIMENTS E15 acceptance bar is <3% delta between the two arms.
func BenchmarkE15_LockInstrumentationOverhead(b *testing.B) {
	for _, arm := range []string{"instrumented", "detached"} {
		b.Run(arm, func(b *testing.B) {
			e, req := benchEngine(b)
			if arm == "detached" {
				detachLockStats(e)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := e.Authorize(req); !d.Granted {
					b.Fatal(d.Reason)
				}
			}
		})
	}
}
