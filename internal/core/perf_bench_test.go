package core

import (
	"testing"

	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/rbac"
	"stac/internal/temporal"
	"stac/internal/trace"
)

// detachLockStats strips the telemetry sinks off every lock stripe,
// reverting the engine to plain sync locking — the control arm of the
// E15 overhead measurement. Benchmark-only: production engines are
// always instrumented.
func detachLockStats(e *Engine) {
	e.policyMu.Instrument(nil)
	e.cntMu.Instrument(nil)
	for i := range e.shards {
		e.shards[i].mu.Instrument(nil)
	}
}

func benchEngine(b *testing.B) (*Engine, Request) {
	b.Helper()
	e := NewEngine(temporal.NewSimClock(0))
	e.SetObs(obs.NewRegistry())
	for _, step := range []error{
		e.RBAC.AddUser("o1"),
		e.RBAC.AddRole("r"),
		e.DefinePermission(PermSpec{Perm: rbac.Permission{ID: "p", Op: "read", Resource: "f"}}),
		e.RBAC.GrantPermission("r", "p"),
		e.RBAC.AssignUserRole("o1", "r"),
	} {
		if step != nil {
			b.Fatal(step)
		}
	}
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		b.Fatal(err)
	}
	if err := sess.ActivateRole("r"); err != nil {
		b.Fatal(err)
	}
	return e, Request{
		Session: sess,
		Access:  model.NewAccess("o1", "read", "f", "s1"),
		History: trace.Trace{},
	}
}

// BenchmarkE15_LockInstrumentationOverhead runs the same unrecorded
// Authorize tour with the lock stripes instrumented (production
// default: counter bumps on every acquisition, 1/64-sampled wait/hold
// timing) and detached (plain sync path behind one nil check). The
// EXPERIMENTS E15 acceptance bar is <3% delta between the two arms.
func BenchmarkE15_LockInstrumentationOverhead(b *testing.B) {
	for _, arm := range []string{"instrumented", "detached"} {
		b.Run(arm, func(b *testing.B) {
			e, req := benchEngine(b)
			if arm == "detached" {
				detachLockStats(e)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := e.Authorize(req); !d.Granted {
					b.Fatal(d.Reason)
				}
			}
		})
	}
}
