package core

import (
	"sort"

	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/temporal"
)

// This file makes the paper's central runtime quantity — the
// accumulated valid time ∫ valid(perm,t) dt against dur(perm)
// (Expression 4.1) — first-class live telemetry. Each finite-budget
// (object, permission) tracker gets a ring-buffered time series of
// its consumption; sampling derives a burn rate (consumed seconds per
// clock second over the retained window) and an estimated
// time-to-exhaustion, and mirrors everything into float gauges so a
// /metrics scrape sees the budgets alongside the decision counters.

// BudgetStatus is one sampled temporal budget: the consumption of a
// permission's validity duration by one mobile object, with the
// derived burn trajectory.
type BudgetStatus struct {
	// Object and Perm identify the tracker.
	Object string `json:"object"`
	Perm   string `json:"perm"`
	// Scheme is the base-time scheme ("global" or "per-server").
	Scheme string `json:"scheme"`
	// State is the permission state at sampling time.
	State string `json:"state"`
	// Consumed is ∫ valid(perm,t) dt at sampling time, in seconds.
	Consumed float64 `json:"consumed_s"`
	// Budget is dur(perm) in seconds.
	Budget float64 `json:"budget_s"`
	// Remaining is the unused validity duration in seconds.
	Remaining float64 `json:"remaining_s"`
	// BurnRate is the consumption speed over the sampling window, in
	// consumed seconds per clock second: 1.0 while the permission is
	// continuously active, 0 while idle. Zero when the window is too
	// short to derive a rate.
	BurnRate float64 `json:"burn_rate"`
	// ETA estimates the clock seconds until exhaustion at the current
	// burn rate; -1 when no exhaustion is in sight (zero rate or no
	// window yet).
	ETA float64 `json:"eta_s"`
	// At is the engine clock reading of this sample.
	At float64 `json:"at"`
	// Series is the tail of the sampled consumption series (oldest
	// first); empty when the caller asked for no history.
	Series []obs.Sample `json:"series,omitempty"`
}

// Exhausting reports whether the budget will run out within the given
// horizon (clock seconds) at the current burn rate.
func (b BudgetStatus) Exhausting(horizon float64) bool {
	return b.ETA >= 0 && b.ETA <= horizon
}

// budgetSeriesCapacity is the retained sampling window per tracker.
const budgetSeriesCapacity = 128

// SampleBudgets takes one sample of every finite-budget tracker: it
// appends the current consumption to the tracker's time series,
// refreshes the budget gauges in the engine's registry, and returns
// the statuses sorted by (object, perm) with up to tail trailing
// samples each (tail 0 omits series, tail < 0 returns the full
// window). Time-insensitive permissions (dur = ∞) carry no budget and
// are skipped.
//
// Sampling is deliberately off the Authorize hot path: a daemon
// samples on a timer and on observability scrapes. The walk visits the
// object-state shards one at a time, so in-flight decisions on other
// shards proceed undisturbed.
func (e *Engine) SampleBudgets(tail int) []BudgetStatus {
	now := e.clock.Now()
	reg := e.met.Load().reg

	var out []BudgetStatus
	for i := range e.shards {
		sh := &e.shards[i]
		type entry struct {
			obj model.ObjectID
			st  *objectState
		}
		sh.mu.RLock()
		objs := make([]entry, 0, len(sh.objs))
		for obj, os := range sh.objs {
			objs = append(objs, entry{obj: obj, st: os})
		}
		sh.mu.RUnlock()
		for _, en := range objs {
			en.st.mu.Lock()
			for perm, tr := range en.st.trackers {
				if tr.Budget() == temporal.Infinite {
					continue
				}
				ts, ok := en.st.budgets[perm]
				if !ok {
					ts = obs.NewTimeSeries(budgetSeriesCapacity)
					en.st.budgets[perm] = ts
				}
				consumed := tr.Accumulated(now)
				ts.Append(now, consumed)
				window := ts.Samples()

				st := BudgetStatus{
					Object:    string(en.obj),
					Perm:      string(perm),
					Scheme:    tr.Scheme().String(),
					State:     tr.StateAt(now).String(),
					Consumed:  consumed,
					Budget:    tr.Budget(),
					Remaining: tr.Remaining(now),
					ETA:       -1,
					At:        now,
				}
				if rate, ok := obs.Rate(window); ok && rate > 0 {
					st.BurnRate = rate
					if st.Remaining > 0 {
						st.ETA = st.Remaining / rate
					} else {
						st.ETA = 0
					}
				} else if st.Remaining == 0 {
					st.ETA = 0
				}
				switch {
				case tail < 0:
					st.Series = window
				case tail > 0 && len(window) > tail:
					st.Series = window[len(window)-tail:]
				case tail > 0:
					st.Series = window
				}
				e.publishBudgetGauges(reg, st)
				out = append(out, st)
			}
			en.st.mu.Unlock()
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Perm < out[j].Perm
	})
	return out
}

// publishBudgetGauges mirrors one budget status into the registry.
// Handles are get-or-create, so repeated sampling reuses them; the
// cardinality is bounded by the live (object, perm) tracker set.
func (e *Engine) publishBudgetGauges(reg *obs.Registry, st BudgetStatus) {
	labels := obs.Labels(obs.Label("object", st.Object), obs.Label("perm", st.Perm))
	reg.FloatGauge("stac_budget_consumed_seconds", labels,
		"Accumulated valid time consumed against dur(perm), per (object, perm).").Set(st.Consumed)
	reg.FloatGauge("stac_budget_remaining_seconds", labels,
		"Unused validity duration, per (object, perm).").Set(st.Remaining)
	reg.FloatGauge("stac_budget_burn_rate", labels,
		"Budget consumption speed over the sampling window (consumed s per clock s).").Set(st.BurnRate)
	reg.FloatGauge("stac_budget_eta_seconds", labels,
		"Estimated clock seconds until budget exhaustion at the current burn rate (-1 = none in sight).").Set(st.ETA)
}
