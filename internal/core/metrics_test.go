package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/temporal"
	"stac/internal/trace"
)

// negEngine builds an engine whose single permission carries the
// negated ceiling ¬#(0, max, σ[rsw]) — the constraint shape the old
// negate handled unsoundly.
func negEngine(t *testing.T, max int, mode SpatialMode) (*Engine, *rbac.Session) {
	t.Helper()
	e := NewEngine(temporal.NewSimClock(0))
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	for _, step := range []error{
		e.RBAC.AddUser("o1"),
		e.RBAC.AddRole("r"),
		e.DefinePermission(PermSpec{
			Perm:    rbac.Permission{ID: "p-rsw", Op: "execute", Resource: "rsw"},
			Spatial: srac.Not{C: srac.Count{Min: 0, Max: max, Sel: sel}},
			Mode:    mode,
		}),
		e.RBAC.GrantPermission("r", "p-rsw"),
		e.RBAC.AssignUserRole("o1", "r"),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ActivateRole("r"); err != nil {
		t.Fatal(err)
	}
	return e, sess
}

func TestAuthorizeNegatedCountAdmissible(t *testing.T) {
	// ¬#(0, 2, σ) in Admissible mode: with the post-state count inside
	// [0, 2] the constraint is Pending (a later access can cross the
	// ceiling), so the request must be GRANTED. The old negate called
	// it Violated and denied.
	e, sess := negEngine(t, 2, Admissible)
	a := model.NewAccess("o1", "execute", "rsw", "s1")
	var hist trace.Trace
	for i := 0; i < 3; i++ {
		d := e.Authorize(Request{Session: sess, Access: a, History: hist})
		if !d.Granted {
			t.Fatalf("access %d denied under sound negation: %s", i+1, d)
		}
		hist = hist.Concat(trace.Trace{a})
	}
}

func TestAuthorizeNegatedCountStrict(t *testing.T) {
	// Strict mode gates on actual satisfaction: ¬#(0, 1, σ) holds only
	// once the count exceeds 1.
	e, sess := negEngine(t, 1, Strict)
	a := model.NewAccess("o1", "execute", "rsw", "s1")

	d := e.Authorize(Request{Session: sess, Access: a})
	if d.Granted {
		t.Fatalf("strict grant while negation unsatisfied: %s", d)
	}
	if d.Deny != DenySpatialStrict {
		t.Fatalf("deny reason = %q, want %q (not an irreversible violation)", d.Deny, DenySpatialStrict)
	}
	if d.Spatial == srac.Violated {
		t.Fatal("in-range negated count reported as violated")
	}

	// With two prior executions the post-state count is 3 > 1: the
	// negation is actually satisfied and strict mode grants.
	hist := trace.Trace{a, a}
	d = e.Authorize(Request{Session: sess, Access: a, History: hist})
	if !d.Granted {
		t.Fatalf("strict denial after ceiling crossed: %s", d)
	}
}

func TestAuthorizeNegatedCountIncremental(t *testing.T) {
	// The incremental (counter) path must mirror the scan path's sound
	// negation: ¬count with a finite ceiling is never Violated, so
	// Admissible mode keeps granting.
	e, sess := negEngine(t, 1, Admissible)
	e.EnableIncrementalCounting()
	a := model.NewAccess("o1", "execute", "rsw", "s1")
	for i := 0; i < 3; i++ {
		d := e.Authorize(Request{Session: sess, Access: a})
		if !d.Granted {
			t.Fatalf("incremental access %d denied under sound negation: %s", i+1, d)
		}
		e.RecordGrant(a)
	}

	// Strict-mode incremental: denied (pending) in range, granted once
	// the recorded count crosses the ceiling.
	e2, sess2 := negEngine(t, 1, Strict)
	e2.EnableIncrementalCounting()
	d := e2.Authorize(Request{Session: sess2, Access: a})
	if d.Granted || d.Deny != DenySpatialStrict {
		t.Fatalf("incremental strict in range: %s (deny=%q)", d, d.Deny)
	}
	e2.RecordGrant(a)
	e2.RecordGrant(a)
	d = e2.Authorize(Request{Session: sess2, Access: a})
	if !d.Granted {
		t.Fatalf("incremental strict after ceiling crossed: %s", d)
	}
}

func TestAuthorizeDenyReasons(t *testing.T) {
	e, sess := negEngine(t, 1, Strict)
	valid := model.NewAccess("o1", "execute", "rsw", "s1")

	tests := []struct {
		name string
		req  Request
		want DenyReason
	}{
		{"no session", Request{Access: valid}, DenyNoSession},
		{"invalid access", Request{Session: sess, Access: model.Access{}}, DenyInvalidAccess},
		{"rbac miss", Request{Session: sess, Access: model.NewAccess("o1", "read", "other", "s1")}, DenyRBAC},
		{"spatial strict", Request{Session: sess, Access: valid}, DenySpatialStrict},
	}
	for _, tt := range tests {
		d := e.Authorize(tt.req)
		if d.Granted {
			t.Fatalf("%s: granted", tt.name)
		}
		if d.Deny != tt.want {
			t.Errorf("%s: deny = %q, want %q", tt.name, d.Deny, tt.want)
		}
	}
	// A grant carries no deny reason.
	e2, sess2 := negEngine(t, 1, Admissible)
	if d := e2.Authorize(Request{Session: sess2, Access: valid}); !d.Granted || d.Deny != DenyNone {
		t.Fatalf("grant carries deny reason: %s (deny=%q)", d, d.Deny)
	}
}

// TestAuthorizeMetricsReconcile hammers one engine from many
// goroutines with a grant/deny mix and asserts the decision counters
// reconcile EXACTLY with the decisions returned — no drops, no double
// counts. Run under -race this also exercises the shrunken critical
// sections of ActivatePermissions and the lock-free metrics path.
func TestAuthorizeMetricsReconcile(t *testing.T) {
	e := NewEngine(temporal.NewSimClock(0))
	reg := obs.NewRegistry()
	e.SetObs(reg)
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	const workers = 8
	for _, step := range []error{
		e.RBAC.AddRole("r"),
		e.DefinePermission(PermSpec{
			Perm:    rbac.Permission{ID: "p-rsw", Op: "execute", Resource: "rsw"},
			Spatial: srac.AtMost(4, sel),
		}),
		e.RBAC.GrantPermission("r", "p-rsw"),
	} {
		if step != nil {
			t.Fatal(step)
		}
	}
	sessions := make([]*rbac.Session, workers)
	for i := range sessions {
		user := rbac.UserID(fmt.Sprintf("o%d", i))
		if err := e.RBAC.AddUser(user); err != nil {
			t.Fatal(err)
		}
		if err := e.RBAC.AssignUserRole(user, "r"); err != nil {
			t.Fatal(err)
		}
		sess, err := e.RBAC.CreateSession(user)
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.ActivateRole("r"); err != nil {
			t.Fatal(err)
		}
		sessions[i] = sess
	}

	const perWorker = 200
	var granted, denied atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := sessions[i]
			obj := model.ObjectID(fmt.Sprintf("o%d", i))
			var hist trace.Trace
			for j := 0; j < perWorker; j++ {
				e.ActivatePermissions(sess, obj)
				var req Request
				switch j % 4 {
				case 0: // within the ceiling early, over it later: both outcomes
					req = Request{Session: sess,
						Access: model.NewAccess(obj, "execute", "rsw", "s1"), History: hist}
				case 1: // RBAC miss
					req = Request{Session: sess,
						Access: model.NewAccess(obj, "read", "other", "s1")}
				case 2: // unauthenticated
					req = Request{Access: model.NewAccess(obj, "execute", "rsw", "s1")}
				default: // invalid access
					req = Request{Session: sess, Access: model.Access{}}
				}
				d := e.Authorize(req)
				if d.Granted {
					granted.Add(1)
					hist = hist.Concat(trace.Trace{req.Access})
				} else {
					denied.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()

	total := int64(workers * perWorker)
	if g := granted.Load() + denied.Load(); g != total {
		t.Fatalf("decisions observed = %d, want %d", g, total)
	}
	if got := reg.CounterValue("stac_authz_granted_total", ""); got != granted.Load() {
		t.Fatalf("granted counter = %d, decisions granted = %d", got, granted.Load())
	}
	if got := reg.SumCounters("stac_authz_denied_total"); got != denied.Load() {
		t.Fatalf("denied counters = %d, decisions denied = %d", got, denied.Load())
	}
	if got := reg.HistogramCount("stac_authz_seconds", ""); got != total {
		t.Fatalf("latency histogram count = %d, want %d", got, total)
	}
	// Every worker granted at least the first 5 rsw accesses (ceiling
	// 4 + the in-flight one) and was then cut off, so both outcome
	// classes are genuinely exercised.
	if granted.Load() == 0 || denied.Load() == 0 {
		t.Fatalf("degenerate mix: granted=%d denied=%d", granted.Load(), denied.Load())
	}
}
