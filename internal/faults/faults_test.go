package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
)

// schedule runs a fixed I/O script against a fresh injector and
// records the per-op outcomes.
func schedule(t *testing.T, seed int64) ([]bool, Stats) {
	t.Helper()
	in := New(Config{Seed: seed, WriteResetProb: 0.3, ChunkProb: 0.3, MaxFaults: 5})
	var outcomes []bool
	for conns := 0; conns < 4; conns++ {
		client, srv := net.Pipe()
		go func() { _, _ = io.Copy(io.Discard, srv) }()
		fc := in.Wrap(client)
		for op := 0; op < 8; op++ {
			_, err := fc.Write(make([]byte, 64))
			outcomes = append(outcomes, err == nil)
		}
		fc.Close()
		srv.Close()
	}
	return outcomes, in.Stats()
}

func TestDeterministicPerSeed(t *testing.T) {
	a, sa := schedule(t, 42)
	b, sb := schedule(t, 42)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: outcomes differ across identical seeds", i)
		}
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	c, _ := schedule(t, 43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules (suspicious)")
	}
}

func TestMaxFaultsBudget(t *testing.T) {
	in := New(Config{Seed: 7, WriteResetProb: 1, MaxFaults: 3})
	resets := 0
	for i := 0; i < 10; i++ {
		client, srv := net.Pipe()
		go func() { _, _ = io.Copy(io.Discard, srv) }()
		fc := in.Wrap(client)
		if _, err := fc.Write([]byte("hello world")); err != nil {
			if !errors.Is(err, ErrInjected) || !errors.Is(err, ErrReset) {
				t.Fatalf("reset error not marked injected: %v", err)
			}
			resets++
		}
		fc.Close()
		srv.Close()
	}
	if resets != 3 {
		t.Fatalf("resets = %d, want exactly the MaxFaults budget of 3", resets)
	}
	if got := in.Stats().Total(); got != 3 {
		t.Fatalf("stats total = %d", got)
	}
}

func TestChunkingPreservesBytes(t *testing.T) {
	in := New(Config{Seed: 11, ChunkProb: 1})
	client, srv := net.Pipe()
	var got bytes.Buffer
	done := make(chan struct{})
	go func() { defer close(done); _, _ = io.Copy(&got, srv) }()
	fc := in.Wrap(client)
	want := []byte("the quick brown fox jumps over the lazy dog")
	for i := 0; i < 5; i++ {
		if _, err := fc.Write(want); err != nil {
			t.Fatal(err)
		}
	}
	fc.Close()
	<-done
	if got.Len() != 5*len(want) {
		t.Fatalf("received %d bytes, want %d", got.Len(), 5*len(want))
	}
	if !bytes.Equal(got.Bytes()[:len(want)], want) {
		t.Fatal("chunked write corrupted bytes")
	}
	if in.Stats().Chunks == 0 {
		t.Fatal("no chunked writes recorded")
	}
}

func TestWriteResetDeliversStrictPrefix(t *testing.T) {
	in := New(Config{Seed: 3, WriteResetProb: 1, MaxFaults: 1})
	client, srv := net.Pipe()
	var got bytes.Buffer
	done := make(chan struct{})
	go func() { defer close(done); _, _ = io.Copy(&got, srv) }()
	fc := in.Wrap(client)
	want := []byte("0123456789abcdef")
	n, err := fc.Write(want)
	if err == nil {
		t.Fatal("write with WriteResetProb=1 succeeded")
	}
	<-done
	if n >= len(want) {
		t.Fatalf("reset delivered %d of %d bytes, want a strict prefix", n, len(want))
	}
	if !bytes.Equal(got.Bytes(), want[:got.Len()]) {
		t.Fatal("delivered bytes are not a prefix of the intended write")
	}
}

func TestDialerAndListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 5, DialFailProb: 1, MaxFaults: 1})
	fln := in.Listener(ln)
	defer fln.Close()
	go func() {
		for {
			c, err := fln.Accept()
			if err != nil {
				return
			}
			go func() { _, _ = io.Copy(c, c) }() // echo
		}
	}()

	dial := in.Dialer(nil)
	if _, err := dial(ln.Addr().String()); !errors.Is(err, ErrDialFailed) {
		t.Fatalf("first dial = %v, want injected failure", err)
	}
	// Budget spent: the retry must connect and echo.
	c, err := dial(ln.Addr().String())
	if err != nil {
		t.Fatalf("second dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo = %q", buf)
	}
	// One successful dial and one accept, both wrapped.
	if in.Stats().Conns != 2 {
		t.Fatalf("conns wrapped = %d, want 2", in.Stats().Conns)
	}
}
