// Package faults provides deterministic in-process fault injection
// for the coalition TCP transport. It wraps net.Conn, net.Listener and
// dial functions so that tests can subject the JSON-lines protocol to
// the failure modes of a real coalition network — injected latency,
// connection resets, partial writes and outright dial failures —
// without any wall-clock dependence in the *decisions*: every fault is
// drawn from a PRNG seeded from (Seed, connection index, I/O op
// index), so a given seed produces the same fault schedule on every
// run regardless of machine speed or goroutine scheduling within a
// connection. (Across connections, indices follow dial/accept order;
// a single sequential client is therefore fully deterministic.)
//
// The injector keeps the byte stream prefix-consistent: a faulted
// write delivers a prefix of the intended bytes and then resets, never
// corrupted or reordered bytes. A peer therefore observes either a
// complete JSON line, a truncated one followed by EOF/reset, or a
// reset between lines — exactly the failure surface a robust transport
// must survive.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the root cause of every failure the injector
// manufactures; errors.Is(err, ErrInjected) identifies them.
var ErrInjected = errors.New("faults: injected fault")

// ErrReset marks an injected connection reset.
var ErrReset = fmt.Errorf("%w: connection reset", ErrInjected)

// ErrDialFailed marks an injected dial failure.
var ErrDialFailed = fmt.Errorf("%w: dial failed", ErrInjected)

// Config selects the fault mix. All probabilities are per I/O
// operation in [0, 1]; zero disables the corresponding fault.
type Config struct {
	// Seed drives every fault decision. Two injectors with the same
	// Config produce identical fault schedules.
	Seed int64
	// DelayProb is the chance an I/O operation is delayed by a
	// uniform duration in (0, MaxDelay]. Delays exercise timeout
	// handling without affecting the fault schedule (decisions never
	// read the clock).
	DelayProb float64
	// MaxDelay bounds each injected delay. Zero disables delays.
	MaxDelay time.Duration
	// ChunkProb is the chance a write is split into several smaller
	// writes (partial writes at the transport level). Harmless to a
	// correct peer; fatal to one that assumes whole-message reads.
	ChunkProb float64
	// WriteResetProb is the chance a write delivers only a prefix of
	// its bytes and then resets the connection.
	WriteResetProb float64
	// ReadResetProb is the chance a read resets the connection
	// instead of delivering data.
	ReadResetProb float64
	// DialFailProb is the chance a dial attempt fails outright.
	DialFailProb float64
	// MaxFaults bounds the total number of resets plus dial failures
	// injected across the injector's lifetime, so that bounded retry
	// loops are guaranteed to converge. Zero means unlimited.
	MaxFaults int
}

// Stats counts the faults injected so far.
type Stats struct {
	Conns        int
	Delays       int
	Chunks       int
	WriteResets  int
	ReadResets   int
	DialFailures int
}

// Total returns the number of injected hard faults (resets and dial
// failures), the quantity bounded by Config.MaxFaults.
func (s Stats) Total() int { return s.WriteResets + s.ReadResets + s.DialFailures }

// Injector wraps connections, listeners and dialers with the
// configured fault mix. Safe for concurrent use.
type Injector struct {
	cfg Config

	mu      sync.Mutex
	conns   int64
	dialRNG *rand.Rand
	stats   Stats
}

// New creates an injector.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, dialRNG: rand.New(rand.NewSource(mix(cfg.Seed, -1)))}
}

// mix decorrelates per-connection PRNG streams (splitmix64 finalizer).
func mix(seed, idx int64) int64 {
	z := uint64(seed) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Stats returns a snapshot of the injected-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// spend consumes one unit of the hard-fault budget; it reports false
// when the budget is exhausted (the fault must then be suppressed).
func (in *Injector) spend(counter *int) bool {
	if in.cfg.MaxFaults > 0 && in.stats.Total() >= in.cfg.MaxFaults {
		return false
	}
	*counter++
	return true
}

// Wrap returns c with the injector's fault mix applied to its I/O.
func (in *Injector) Wrap(c net.Conn) net.Conn {
	in.mu.Lock()
	idx := in.conns
	in.conns++
	in.stats.Conns++
	in.mu.Unlock()
	return &conn{Conn: c, in: in, rng: rand.New(rand.NewSource(mix(in.cfg.Seed, idx)))}
}

// Listener wraps ln so every accepted connection is fault-injected.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

// Dialer wraps a dial function with injected dial failures and
// fault-injected connections. A nil dial uses net.Dial("tcp", addr).
func (in *Injector) Dialer(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return func(addr string) (net.Conn, error) {
		in.mu.Lock()
		fail := in.cfg.DialFailProb > 0 && in.dialRNG.Float64() < in.cfg.DialFailProb &&
			in.spend(&in.stats.DialFailures)
		in.mu.Unlock()
		if fail {
			return nil, fmt.Errorf("faults: dial %s: %w", addr, ErrDialFailed)
		}
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return in.Wrap(c), nil
	}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Wrap(c), nil
}

// conn applies the fault mix to one connection. Each conn owns a
// private PRNG, so its fault schedule depends only on its own I/O op
// sequence, never on other connections or the clock.
type conn struct {
	net.Conn
	in  *Injector
	mu  sync.Mutex
	rng *rand.Rand
}

// decide draws one fault decision; it must run under c.mu so the op
// index (the PRNG position) is well defined.
func (c *conn) decide(prob float64) bool {
	return prob > 0 && c.rng.Float64() < prob
}

// delay draws an injected delay (0 when none).
func (c *conn) delay() time.Duration {
	cfg := &c.in.cfg
	if cfg.MaxDelay <= 0 || !c.decide(cfg.DelayProb) {
		return 0
	}
	c.in.mu.Lock()
	c.in.stats.Delays++
	c.in.mu.Unlock()
	return time.Duration(1 + c.rng.Int63n(int64(cfg.MaxDelay)))
}

// reset tears the connection down, emulating a peer RST: subsequent
// I/O on either side fails.
func (c *conn) reset(op string) error {
	_ = c.Conn.Close()
	return &net.OpError{Op: op, Net: "tcp", Err: ErrReset}
}

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	d := c.delay()
	doReset := c.decide(c.in.cfg.ReadResetProb)
	if doReset {
		c.in.mu.Lock()
		doReset = c.in.spend(&c.in.stats.ReadResets)
		c.in.mu.Unlock()
	}
	c.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if doReset {
		return 0, c.reset("read")
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	d := c.delay()
	doReset := c.decide(c.in.cfg.WriteResetProb)
	var keep int
	if doReset {
		c.in.mu.Lock()
		doReset = c.in.spend(&c.in.stats.WriteResets)
		c.in.mu.Unlock()
		if doReset && len(p) > 0 {
			keep = c.rng.Intn(len(p)) // deliver a strict prefix
		}
	}
	doChunk := !doReset && len(p) > 1 && c.decide(c.in.cfg.ChunkProb)
	var cut int
	if doChunk {
		c.in.mu.Lock()
		c.in.stats.Chunks++
		c.in.mu.Unlock()
		cut = 1 + c.rng.Intn(len(p)-1)
	}
	c.mu.Unlock()

	if d > 0 {
		time.Sleep(d)
	}
	if doReset {
		n := 0
		if keep > 0 {
			n, _ = c.Conn.Write(p[:keep])
		}
		return n, c.reset("write")
	}
	if doChunk {
		n, err := c.Conn.Write(p[:cut])
		if err != nil {
			return n, err
		}
		m, err := c.Conn.Write(p[cut:])
		return n + m, err
	}
	return c.Conn.Write(p)
}
