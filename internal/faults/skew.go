package faults

import "time"

// WallSkew returns a wall-clock source (nanoseconds) offset from base
// by delta — clock-skew injection for the hybrid logical clock. A nil
// base reads the host wall clock, so
//
//	engine.SetHLCWall(faults.WallSkew(nil, -5*time.Second))
//
// models a coalition member whose clock runs five seconds behind the
// rest of the fleet.
func WallSkew(base func() int64, delta time.Duration) func() int64 {
	if base == nil {
		base = func() int64 { return time.Now().UnixNano() }
	}
	d := int64(delta)
	return func() int64 { return base() + d }
}
