package faults

import (
	"bytes"
	"errors"
	"testing"
)

func TestDiskFullWriterStickyBudget(t *testing.T) {
	var buf bytes.Buffer
	w := NewDiskFullWriter(&buf, 10)

	if n, err := w.Write([]byte("hello")); err != nil || n != 5 {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	// 5 bytes of budget left; an 8-byte write must fail whole, not
	// land a prefix.
	if _, err := w.Write([]byte("toolarge")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("over-budget write: %v", err)
	}
	if !errors.Is(ErrDiskFull, ErrInjected) {
		t.Fatal("ErrDiskFull should unwrap to ErrInjected")
	}
	if !w.Failed() {
		t.Fatal("writer should report failed")
	}
	// Sticky: even a write that would have fit now fails.
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("post-failure write: %v", err)
	}
	if got := buf.String(); got != "hello" {
		t.Fatalf("underlying writer saw %q, want only the pre-failure bytes", got)
	}
}
