package faults

import (
	"fmt"
	"io"
	"sync"
)

// ErrDiskFull marks an injected out-of-space write failure.
var ErrDiskFull = fmt.Errorf("%w: disk full", ErrInjected)

// DiskFullWriter wraps an io.Writer with a byte budget, modelling a
// log volume filling up. Writes pass through until one would exceed
// the budget; that write and every later one fail with ErrDiskFull —
// a full disk does not recover on its own, so the failure is sticky,
// matching the contract flight-recorder WAL consumers must degrade
// under. Writes never partially apply: a record either lands whole or
// not at all.
type DiskFullWriter struct {
	mu        sync.Mutex
	w         io.Writer
	remaining int
	failed    bool
}

// NewDiskFullWriter returns a writer that accepts at most capacity
// bytes before reporting ErrDiskFull forever after.
func NewDiskFullWriter(w io.Writer, capacity int) *DiskFullWriter {
	return &DiskFullWriter{w: w, remaining: capacity}
}

func (d *DiskFullWriter) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed || len(p) > d.remaining {
		d.failed = true
		return 0, ErrDiskFull
	}
	d.remaining -= len(p)
	return d.w.Write(p)
}

// Failed reports whether the budget has been exhausted.
func (d *DiskFullWriter) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}
