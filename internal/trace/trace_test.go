package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"stac/internal/model"
)

func acc(op, r, s string) model.Access {
	return model.Access{Op: model.Operation(op), Resource: model.ResourceID(r), Server: model.ServerID(s)}
}

var (
	a1 = acc("read", "f1", "s1")
	a2 = acc("write", "f2", "s1")
	a3 = acc("read", "f3", "s2")
	a4 = acc("execute", "f4", "s2")
)

func TestConcat(t *testing.T) {
	tr := Trace{a1}.Concat(Trace{a2, a3})
	want := Trace{a1, a2, a3}
	if !tr.Equal(want) {
		t.Fatalf("Concat = %v, want %v", tr, want)
	}
}

func TestConcatDoesNotAliasReceiver(t *testing.T) {
	base := make(Trace, 1, 4)
	base[0] = a1
	first := base.Concat(Trace{a2})
	second := base.Concat(Trace{a3})
	if !first.Equal(Trace{a1, a2}) {
		t.Fatalf("first concat corrupted: %v", first)
	}
	if !second.Equal(Trace{a1, a3}) {
		t.Fatalf("second concat corrupted: %v", second)
	}
}

func TestHeadTail(t *testing.T) {
	tr := Trace{a1, a2, a3}
	if tr.Head() != a1 {
		t.Fatalf("Head = %v", tr.Head())
	}
	if !tr.Tail().Equal(Trace{a2, a3}) {
		t.Fatalf("Tail = %v", tr.Tail())
	}
}

func TestContainsIndexCount(t *testing.T) {
	tr := Trace{a1, a2, a1, a3}
	if !tr.Contains(a1) || tr.Contains(a4) {
		t.Fatal("Contains wrong")
	}
	if tr.IndexOf(a2) != 1 || tr.IndexOf(a4) != -1 {
		t.Fatal("IndexOf wrong")
	}
	if n := tr.Count(model.Selector{Resources: []model.ResourceID{"f1"}}); n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
	if n := tr.Count(model.Selector{}); n != 4 {
		t.Fatalf("empty selector Count = %d, want 4", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := Trace{a1, a2}
	c := tr.Clone()
	c[0] = a3
	if tr[0] != a1 {
		t.Fatal("Clone shares backing array")
	}
}

func TestKeyDistinguishesTraces(t *testing.T) {
	if (Trace{a1, a2}).Key() == (Trace{a2, a1}).Key() {
		t.Fatal("Key collision for different orders")
	}
	if (Trace{a1}).Key() == (Trace{a1, a1}).Key() {
		t.Fatal("Key collision for different lengths")
	}
	if Empty.Key() != "" {
		t.Fatalf("empty trace key = %q", Empty.Key())
	}
}

func TestKeyComponentBoundaries(t *testing.T) {
	// "ab"+"c" vs "a"+"bc" in adjacent components must not collide.
	x := Trace{{Object: "ab", Op: "c", Resource: "r", Server: "s"}}
	y := Trace{{Object: "a", Op: "bc", Resource: "r", Server: "s"}}
	if x.Key() == y.Key() {
		t.Fatal("Key collision across component boundaries")
	}
}

func TestInterleaveBaseCases(t *testing.T) {
	got := Interleave(Empty, Trace{a1, a2})
	if len(got) != 1 || !got[0].Equal(Trace{a1, a2}) {
		t.Fatalf("ε # v = %v", got)
	}
	got = Interleave(Trace{a1}, Empty)
	if len(got) != 1 || !got[0].Equal(Trace{a1}) {
		t.Fatalf("t # ε = %v", got)
	}
}

func TestInterleaveTwoSingletons(t *testing.T) {
	got := Interleave(Trace{a1}, Trace{a2})
	if len(got) != 2 {
		t.Fatalf("|a1 # a2| = %d, want 2", len(got))
	}
	set := NewSet(got...)
	if !set.Contains(Trace{a1, a2}) || !set.Contains(Trace{a2, a1}) {
		t.Fatalf("a1 # a2 = %v", got)
	}
}

// binomial computes C(n, k).
func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}

func TestInterleaveCardinality(t *testing.T) {
	// With all-distinct accesses, |t#v| = C(len(t)+len(v), len(t)).
	t1 := Trace{a1, a2}
	t2 := Trace{a3, a4}
	got := Interleave(t1, t2)
	if want := binomial(4, 2); len(got) != want {
		t.Fatalf("|t#v| = %d, want %d", len(got), want)
	}
	// Every interleaving preserves the relative order of each operand.
	for _, tr := range got {
		if tr.IndexOf(a1) > tr.IndexOf(a2) {
			t.Fatalf("interleaving broke order of t1: %v", tr)
		}
		if tr.IndexOf(a3) > tr.IndexOf(a4) {
			t.Fatalf("interleaving broke order of t2: %v", tr)
		}
		if len(tr) != 4 {
			t.Fatalf("interleaving has wrong length: %v", tr)
		}
	}
}

func TestInterleaveBudget(t *testing.T) {
	t1 := Trace{a1, a2, a3}
	t2 := Trace{a4, a4, a4}
	got, complete := InterleaveBudget(t1, t2, 3)
	if complete {
		t.Fatal("budgeted interleave reported complete")
	}
	if len(got) != 3 {
		t.Fatalf("budget not respected: %d traces", len(got))
	}
	all, complete := InterleaveBudget(t1, t2, -1)
	if !complete {
		t.Fatal("unlimited interleave reported incomplete")
	}
	if len(all) != binomial(6, 3) {
		t.Fatalf("|t#v| = %d, want %d", len(all), binomial(6, 3))
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(Trace{a1}, Trace{a1}, Trace{a2})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup)", s.Len())
	}
	if !s.Contains(Trace{a1}) || s.Contains(Trace{a3}) {
		t.Fatal("Contains wrong")
	}
	var nilSet *Set
	if nilSet.Contains(Trace{a1}) || nilSet.Len() != 0 || nilSet.Traces() != nil {
		t.Fatal("nil set should behave as empty")
	}
}

func TestSetAddOnZeroValue(t *testing.T) {
	var s Set
	s.Add(Trace{a1})
	if !s.Contains(Trace{a1}) {
		t.Fatal("Add on zero-value Set failed")
	}
}

func TestSetTracesDeterministic(t *testing.T) {
	s := NewSet(Trace{a2}, Trace{a1}, Trace{a3})
	first := s.Traces()
	for i := 0; i < 5; i++ {
		again := s.Traces()
		if len(again) != len(first) {
			t.Fatal("Traces length changed")
		}
		for j := range again {
			if !again[j].Equal(first[j]) {
				t.Fatal("Traces order not deterministic")
			}
		}
	}
}

func TestSetEqualAndUnion(t *testing.T) {
	s1 := NewSet(Trace{a1}, Trace{a2})
	s2 := NewSet(Trace{a2}, Trace{a1})
	if !s1.Equal(s2) {
		t.Fatal("order-insensitive equality failed")
	}
	s3 := NewSet(Trace{a3})
	u := s1.Union(s3)
	if u.Len() != 3 || !u.Contains(Trace{a3}) || !u.Contains(Trace{a1}) {
		t.Fatalf("Union wrong: %v", u.Traces())
	}
	// Union must not mutate operands.
	if s1.Len() != 2 || s3.Len() != 1 {
		t.Fatal("Union mutated operand")
	}
}

func TestConcatSets(t *testing.T) {
	a := NewSet(Trace{a1}, Trace{a2})
	b := NewSet(Trace{a3}, Trace{a4})
	got := ConcatSets(a, b)
	if got.Len() != 4 {
		t.Fatalf("|A·B| = %d, want 4", got.Len())
	}
	if !got.Contains(Trace{a1, a3}) || !got.Contains(Trace{a2, a4}) {
		t.Fatalf("A·B missing elements: %v", got.Traces())
	}
}

func TestConcatSetsWithEpsilon(t *testing.T) {
	a := NewSet(Trace{a1})
	eps := NewSet(Empty)
	if got := ConcatSets(a, eps); !got.Equal(a) {
		t.Fatalf("A·{ε} = %v, want A", got.Traces())
	}
	if got := ConcatSets(eps, a); !got.Equal(a) {
		t.Fatalf("{ε}·A = %v, want A", got.Traces())
	}
}

func TestInterleaveSets(t *testing.T) {
	a := NewSet(Trace{a1})
	b := NewSet(Trace{a2})
	got, complete := InterleaveSets(a, b, -1)
	if !complete || got.Len() != 2 {
		t.Fatalf("A#B = %v complete=%v", got.Traces(), complete)
	}
	capped, complete := InterleaveSets(NewSet(Trace{a1, a2}), NewSet(Trace{a3, a4}), 2)
	if complete || capped.Len() > 2 {
		t.Fatalf("budgeted InterleaveSets: len=%d complete=%v", capped.Len(), complete)
	}
}

func TestKleeneBounded(t *testing.T) {
	a := NewSet(Trace{a1})
	got, exact := KleeneBounded(a, 3, -1)
	// {ε, a1, a1a1, a1a1a1}
	if got.Len() != 4 {
		t.Fatalf("|A*≤3| = %d, want 4", got.Len())
	}
	if exact {
		t.Fatal("bounded closure of non-empty trace reported exact")
	}
	if !got.Contains(Empty) || !got.Contains(Trace{a1, a1, a1}) {
		t.Fatalf("A* missing members: %v", got.Traces())
	}
}

func TestKleeneBoundedFixedPoint(t *testing.T) {
	// {ε}* = {ε}: fixed point reached, so the closure is exact.
	got, exact := KleeneBounded(NewSet(Empty), 10, -1)
	if !exact || got.Len() != 1 || !got.Contains(Empty) {
		t.Fatalf("{ε}* = %v exact=%v", got.Traces(), exact)
	}
}

func TestKleeneBoundedBudget(t *testing.T) {
	a := NewSet(Trace{a1}, Trace{a2})
	got, exact := KleeneBounded(a, 10, 5)
	if exact {
		t.Fatal("budgeted closure reported exact")
	}
	if got.Len() > 5 {
		t.Fatalf("budget exceeded: %d", got.Len())
	}
}

// --- Properties -----------------------------------------------------

func randomTrace(r *rand.Rand, maxLen int) Trace {
	pool := []model.Access{a1, a2, a3, a4}
	n := r.Intn(maxLen + 1)
	tr := make(Trace, n)
	for i := range tr {
		tr[i] = pool[r.Intn(len(pool))]
	}
	return tr
}

// Property: concatenation is associative.
func TestConcatAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		x, y, z := randomTrace(r, 5), randomTrace(r, 5), randomTrace(r, 5)
		if !x.Concat(y).Concat(z).Equal(x.Concat(y.Concat(z))) {
			t.Fatalf("(x·y)·z != x·(y·z) for %v %v %v", x, y, z)
		}
	}
}

// Property: interleaving is commutative as a set and preserves length.
func TestInterleaveCommutativeAsSet(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 50; i++ {
		x, y := randomTrace(r, 4), randomTrace(r, 4)
		xy := NewSet(Interleave(x, y)...)
		yx := NewSet(Interleave(y, x)...)
		if !xy.Equal(yx) {
			t.Fatalf("x#y != y#x for %v %v", x, y)
		}
		for _, tr := range xy.Traces() {
			if len(tr) != len(x)+len(y) {
				t.Fatalf("interleaving changed length: %v", tr)
			}
		}
	}
}

// Property: every member of a bounded Kleene closure splits into
// members of the base set; verified by counting selected accesses.
func TestKleeneMembersComposeFromBase(t *testing.T) {
	base := NewSet(Trace{a1, a2})
	closed, _ := KleeneBounded(base, 4, -1)
	selA1 := model.Selector{Resources: []model.ResourceID{"f1"}}
	selA2 := model.Selector{Resources: []model.ResourceID{"f2"}}
	for _, tr := range closed.Traces() {
		if tr.Count(selA1) != tr.Count(selA2) {
			t.Fatalf("closure member not a repetition of base: %v", tr)
		}
		if len(tr)%2 != 0 {
			t.Fatalf("closure member has odd length: %v", tr)
		}
	}
}

// Property via testing/quick: trace set membership is stable under
// Clone.
func TestSetContainsClone(t *testing.T) {
	f := func(ops []uint8) bool {
		pool := []model.Access{a1, a2, a3, a4}
		tr := make(Trace, 0, len(ops))
		for _, o := range ops {
			tr = append(tr, pool[int(o)%len(pool)])
		}
		s := NewSet(tr)
		return s.Contains(tr.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
