// Package trace implements the trace model of SRAL programs
// (Section 3.2 of the paper).
//
// A trace is the sequence of shared-resource accesses observed while a
// mobile object executes its program; traces(P) — the set of all traces
// a program P can perform — is P's trace model. The package provides
// the three trace operators of the paper (concatenation, interleaving
// and Kleene closure), trace models as explicit finite sets, and a
// budgeted enumerator used by the baseline checker and by the
// regular-completeness property tests.
//
// Trace models of programs with loops are infinite; Model represents
// them with an explicit Kleene structure so that bounded enumeration
// and membership queries remain possible.
package trace

import (
	"sort"
	"strings"

	"stac/internal/model"
)

// Trace is a finite sequence of shared-resource accesses, in the order
// they are (or would be) performed.
type Trace []model.Access

// Empty is the empty trace ε.
var Empty = Trace{}

// Concat returns the concatenation t·v: t followed by v. The receiver
// is not modified.
func (t Trace) Concat(v Trace) Trace {
	out := make(Trace, 0, len(t)+len(v))
	out = append(out, t...)
	out = append(out, v...)
	return out
}

// Head returns the first access of the trace. It panics on an empty
// trace; callers guard with len(t) > 0, mirroring the paper's
// definition which only applies head to non-empty traces.
func (t Trace) Head() model.Access { return t[0] }

// Tail returns the trace consisting of the rest of the accesses.
func (t Trace) Tail() Trace { return t[1:] }

// Contains reports whether access a occurs anywhere in the trace.
func (t Trace) Contains(a model.Access) bool {
	for _, x := range t {
		if x == a {
			return true
		}
	}
	return false
}

// IndexOf returns the position of the first occurrence of a, or -1.
func (t Trace) IndexOf(a model.Access) int {
	for i, x := range t {
		if x == a {
			return i
		}
	}
	return -1
}

// Count returns the number of accesses in the trace selected by sel.
func (t Trace) Count(sel model.Selector) int {
	n := 0
	for _, x := range t {
		if sel.SelectAccess(x) {
			n++
		}
	}
	return n
}

// Equal reports element-wise equality of two traces.
func (t Trace) Equal(v Trace) bool {
	if len(t) != len(v) {
		return false
	}
	for i := range t {
		if t[i] != v[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the trace with its own backing array.
func (t Trace) Clone() Trace {
	out := make(Trace, len(t))
	copy(out, t)
	return out
}

// Key returns a canonical string form of the trace, usable as a map
// key for set semantics.
func (t Trace) Key() string {
	var b strings.Builder
	for i, a := range t {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(string(a.Object))
		b.WriteByte('\x1e')
		b.WriteString(string(a.Op))
		b.WriteByte('\x1e')
		b.WriteString(string(a.Resource))
		b.WriteByte('\x1e')
		b.WriteString(string(a.Server))
	}
	return b.String()
}

// String renders the trace as "<a1, a2, ...>" in the paper's angle
// bracket notation.
func (t Trace) String() string {
	parts := make([]string, len(t))
	for i, a := range t {
		parts[i] = a.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Interleave returns all interleavings of t and v (the t#v operator of
// Definition 3.2), defined recursively:
//
//	ε # v = {v}
//	t # ε = {t}
//	t # v = { head(t)·x | x ∈ tail(t)#v } ∪ { head(v)·x | x ∈ t#tail(v) }
//
// The result has C(len(t)+len(v), len(t)) elements when all accesses
// are distinct; callers that interleave long traces should use
// InterleaveBudget.
func Interleave(t, v Trace) []Trace {
	out, _ := InterleaveBudget(t, v, -1)
	return out
}

// InterleaveBudget is Interleave with a cap on the number of produced
// traces. A negative budget means unlimited. The boolean result is
// false when the budget was exhausted before all interleavings were
// produced.
func InterleaveBudget(t, v Trace, budget int) ([]Trace, bool) {
	var out []Trace
	complete := true
	var rec func(prefix Trace, t, v Trace) bool
	rec = func(prefix Trace, t, v Trace) bool {
		if budget >= 0 && len(out) >= budget {
			complete = false
			return false
		}
		if len(t) == 0 {
			out = append(out, prefix.Concat(v))
			return true
		}
		if len(v) == 0 {
			out = append(out, prefix.Concat(t))
			return true
		}
		if !rec(prefix.Concat(Trace{t.Head()}), t.Tail(), v) {
			return false
		}
		return rec(prefix.Concat(Trace{v.Head()}), t, v.Tail())
	}
	rec(Empty, t, v)
	return out, complete
}

// Set is a finite set of traces with set (deduplicated) semantics.
type Set struct {
	byKey map[string]Trace
}

// NewSet builds a trace set from the given traces, removing duplicates.
func NewSet(traces ...Trace) *Set {
	s := &Set{byKey: make(map[string]Trace, len(traces))}
	for _, t := range traces {
		s.Add(t)
	}
	return s
}

// Add inserts a trace into the set.
func (s *Set) Add(t Trace) {
	if s.byKey == nil {
		s.byKey = make(map[string]Trace)
	}
	s.byKey[t.Key()] = t
}

// Contains reports membership of t in the set.
func (s *Set) Contains(t Trace) bool {
	if s == nil || s.byKey == nil {
		return false
	}
	_, ok := s.byKey[t.Key()]
	return ok
}

// Len returns the number of distinct traces in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.byKey)
}

// Traces returns the traces in a deterministic (sorted-by-key) order.
func (s *Set) Traces() []Trace {
	if s == nil {
		return nil
	}
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Trace, len(keys))
	for i, k := range keys {
		out[i] = s.byKey[k]
	}
	return out
}

// Equal reports whether two sets contain exactly the same traces.
func (s *Set) Equal(o *Set) bool {
	if s.Len() != o.Len() {
		return false
	}
	for k := range s.byKey {
		if _, ok := o.byKey[k]; !ok {
			return false
		}
	}
	return true
}

// Union returns s ∪ o as a new set.
func (s *Set) Union(o *Set) *Set {
	out := NewSet()
	for _, t := range s.Traces() {
		out.Add(t)
	}
	for _, t := range o.Traces() {
		out.Add(t)
	}
	return out
}

// ConcatSets lifts concatenation to trace sets:
// A·B = { t·v | t ∈ A, v ∈ B }.
func ConcatSets(a, b *Set) *Set {
	out := NewSet()
	for _, t := range a.Traces() {
		for _, v := range b.Traces() {
			out.Add(t.Concat(v))
		}
	}
	return out
}

// InterleaveSets lifts interleaving to trace sets:
// A#B = ∪ { t#v | t ∈ A, v ∈ B }. Budget caps the total number of
// produced traces (negative = unlimited); the boolean result reports
// completeness.
func InterleaveSets(a, b *Set, budget int) (*Set, bool) {
	out := NewSet()
	complete := true
	for _, t := range a.Traces() {
		for _, v := range b.Traces() {
			remaining := -1
			if budget >= 0 {
				remaining = budget - out.Len()
				if remaining <= 0 {
					return out, false
				}
			}
			traces, ok := InterleaveBudget(t, v, remaining)
			if !ok {
				complete = false
			}
			for _, x := range traces {
				out.Add(x)
			}
		}
	}
	return out, complete
}

// KleeneBounded returns the set of concatenations of at most maxReps
// traces drawn from a (with repetition): ∪_{i=0..maxReps} A^i, capped
// at budget traces (negative = unlimited). It is the bounded
// approximation of the Kleene closure A* used by the enumeration
// baseline. The boolean result reports whether the bound and budget
// were not hit (i.e. the result is exactly A* — true only when A ⊆ {ε}).
func KleeneBounded(a *Set, maxReps, budget int) (*Set, bool) {
	out := NewSet(Empty)
	frontier := NewSet(Empty)
	complete := onlyEmpty(a)
	for i := 0; i < maxReps; i++ {
		next := ConcatSets(frontier, a)
		grew := false
		for _, t := range next.Traces() {
			if !out.Contains(t) {
				if budget >= 0 && out.Len() >= budget {
					return out, false
				}
				out.Add(t)
				grew = true
			}
		}
		if !grew {
			// Fixed point: A* fully enumerated.
			return out, true
		}
		frontier = next
	}
	return out, complete
}

func onlyEmpty(a *Set) bool {
	for _, t := range a.Traces() {
		if len(t) > 0 {
			return false
		}
	}
	return true
}
