package trace

import (
	"sync"

	"stac/internal/model"
)

// Log is an append-only access log with zero-copy read views — the
// shared history structure the proof store (and anything else that
// accumulates a mobile object's executed trace) hands to the SRAC
// evaluators, the flight recorder and replay without cloning.
//
// The immutability contract: entries below a view's length are never
// rewritten. Appends either fill spare capacity beyond every existing
// view's length or reallocate the backing array; in both cases views
// taken earlier keep reading exactly the accesses they saw at capture
// time. View therefore returns a capacity-clamped slice — callers can
// hold it across later appends, range it, even append to it (Go then
// copies, because len == cap) — but must not write its elements.
type Log struct {
	mu  sync.RWMutex
	buf Trace
}

// NewLog creates a log, pre-sizing the backing array for capacity
// accesses (<= 0 starts empty).
func NewLog(capacity int) *Log {
	l := &Log{}
	if capacity > 0 {
		l.buf = make(Trace, 0, capacity)
	}
	return l
}

// Append adds accesses to the end of the log.
func (l *Log) Append(accs ...model.Access) {
	l.mu.Lock()
	l.buf = append(l.buf, accs...)
	l.mu.Unlock()
}

// View returns a zero-copy snapshot of the log: a capacity-clamped
// slice over the backing array covering every access appended so far.
// The snapshot never observes later appends.
func (l *Log) View() Trace {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.buf[:len(l.buf):len(l.buf)]
}

// Len returns the number of accesses appended so far.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.buf)
}
