package baseline

// A minimal TCP front for an Authorizer, speaking the same JSON-lines
// discipline as the coalition daemon (one request object per line, one
// response object per line). The load harness serves every baseline
// behind this shim so that RBAC/TRBAC/GTRBAC numbers include the same
// network, framing and JSON costs the coordinated engine pays —
// comparing an in-process map lookup against a TCP round trip would
// flatter the baselines for free.
//
// Like the coalition daemon, malformed and oversized lines get a
// structured error response before the connection closes; the shim
// assumes a hostile network and bounds every read.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// HarnessMaxLineBytes caps one request or response line on the
// baseline shim (identical to the cap stacload configures on the
// coalition daemons so hostile oversize frames cost both sides alike).
const HarnessMaxLineBytes = 64 << 10

// harnessResponse is the wire reply: the decision plus a transport
// error slot for malformed input.
type harnessResponse struct {
	Decision
	Error string `json:"error,omitempty"`
}

// HarnessDaemon serves one Authorizer over TCP.
type HarnessDaemon struct {
	auth Authorizer
	ln   net.Listener

	readTimeout time.Duration
	mu          sync.Mutex
	conns       map[net.Conn]struct{}
	closed      bool
	wg          sync.WaitGroup
}

// ServeAuthorizer binds addr (e.g. "127.0.0.1:0") and serves a until
// Close. It returns the daemon and the bound address.
func ServeAuthorizer(a Authorizer, addr string) (*HarnessDaemon, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("baseline: listen: %w", err)
	}
	d := &HarnessDaemon{
		auth:        a,
		ln:          ln,
		readTimeout: 2 * time.Minute,
		conns:       make(map[net.Conn]struct{}),
	}
	d.wg.Add(1)
	go d.acceptLoop()
	return d, ln.Addr().String(), nil
}

func (d *HarnessDaemon) acceptLoop() {
	defer d.wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			conn.Close()
			return
		}
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serveConn(conn)
		}()
	}
}

func (d *HarnessDaemon) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		if d.readTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(d.readTimeout))
		}
		line, err := readHarnessLine(br, HarnessMaxLineBytes)
		if err != nil {
			if errors.Is(err, errHarnessLineTooLong) {
				d.reply(conn, harnessResponse{Error: fmt.Sprintf(
					"request exceeds %d-byte limit", HarnessMaxLineBytes)})
			}
			return
		}
		var req AccessRequest
		if err := json.Unmarshal(line, &req); err != nil {
			d.reply(conn, harnessResponse{Error: "malformed request: " + err.Error()})
			return
		}
		if !d.reply(conn, harnessResponse{Decision: d.auth.Authorize(req)}) {
			return
		}
	}
}

func (d *HarnessDaemon) reply(conn net.Conn, resp harnessResponse) bool {
	b, err := json.Marshal(resp)
	if err != nil {
		return false
	}
	b = append(b, '\n')
	_ = conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
	_, err = conn.Write(b)
	return err == nil
}

// Close stops accepting, wakes idle readers and waits for every
// connection handler to drain.
func (d *HarnessDaemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	for conn := range d.conns {
		_ = conn.SetReadDeadline(time.Now())
	}
	d.mu.Unlock()
	err := d.ln.Close()
	d.wg.Wait()
	return err
}

var errHarnessLineTooLong = errors.New("baseline: request line exceeds limit")

// readHarnessLine mirrors the coalition daemon's bounded line reader:
// it distinguishes an oversized line from a transport error so the
// shim can answer with a structured reject.
func readHarnessLine(r *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		chunk, err := r.ReadSlice('\n')
		line = append(line, chunk...)
		if len(line) > max {
			return line, errHarnessLineTooLong
		}
		switch err {
		case nil:
			return line, nil
		case bufio.ErrBufferFull:
			continue
		default:
			return line, err
		}
	}
}

// HarnessServerError is a structured reject the harness daemon
// answered with (malformed or oversized input) — the shim's
// counterpart of the coalition transport's ServerError, distinct from
// a transport failure.
type HarnessServerError struct {
	Msg string
}

// Error implements error.
func (e *HarnessServerError) Error() string { return "baseline: server: " + e.Msg }

// HarnessClient is the worker side of the shim: one connection, one
// in-flight request at a time.
type HarnessClient struct {
	conn net.Conn
	br   *bufio.Reader
	mu   sync.Mutex
}

// DialHarness connects to a harness daemon. A nil dial uses
// net.Dial("tcp", addr) — the load harness passes a fault-injected
// dialer here to subject baselines to the same network faults.
func DialHarness(addr string, dial func(addr string) (net.Conn, error)) (*HarnessClient, error) {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dial(addr)
	if err != nil {
		return nil, fmt.Errorf("baseline: dial %s: %w", addr, err)
	}
	return &HarnessClient{conn: conn, br: bufio.NewReader(conn)}, nil
}

// Authorize performs one request/response round trip. A Decision with
// Granted=false and a nil error is a deny the system actually decided;
// a non-nil error is a transport or protocol failure.
func (c *HarnessClient) Authorize(req AccessRequest) (Decision, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, err := json.Marshal(req)
	if err != nil {
		return Decision{}, fmt.Errorf("baseline: encode: %w", err)
	}
	b = append(b, '\n')
	_ = c.conn.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := c.conn.Write(b); err != nil {
		return Decision{}, fmt.Errorf("baseline: send: %w", err)
	}
	line, err := readHarnessLine(c.br, HarnessMaxLineBytes)
	if err != nil {
		return Decision{}, fmt.Errorf("baseline: recv: %w", err)
	}
	var resp harnessResponse
	if err := json.Unmarshal(line, &resp); err != nil {
		return Decision{}, fmt.Errorf("baseline: decode: %w", err)
	}
	if resp.Error != "" {
		return Decision{}, &HarnessServerError{Msg: resp.Error}
	}
	return resp.Decision, nil
}

// Close closes the connection.
func (c *HarnessClient) Close() error { return c.conn.Close() }
