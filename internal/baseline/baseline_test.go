package baseline

import (
	"math/rand"
	"testing"

	"stac/internal/model"
	"stac/internal/srac"
	"stac/internal/sral"
	"stac/internal/workload"
)

func TestEnumCheckSimple(t *testing.T) {
	p := sral.MustParse("read f1 @ s1; write f2 @ s1")
	c := srac.MustParse("[read f1 @ s1]")
	res := EnumCheck(p, c, "o1", sral.TraceOptions{MaxTraces: -1})
	if res.Verdict != srac.AllTraces || !res.Exact || res.Traces != 1 {
		t.Fatalf("EnumCheck = %+v", res)
	}
}

func TestEnumCheckMixedAndNone(t *testing.T) {
	p := sral.MustParse("if x > 0 then { read f1 @ s1 } else { skip }")
	c := srac.MustParse("[read f1 @ s1]")
	res := EnumCheck(p, c, "o1", sral.TraceOptions{MaxTraces: -1})
	if res.Verdict != srac.Mixed || res.Traces != 2 {
		t.Fatalf("mixed = %+v", res)
	}
	res = EnumCheck(p, srac.MustParse("[read f9 @ s9]"), "o1", sral.TraceOptions{MaxTraces: -1})
	if res.Verdict != srac.NoTrace {
		t.Fatalf("none = %+v", res)
	}
}

func TestEnumCheckObjectStamping(t *testing.T) {
	p := sral.MustParse("read f1 @ s1")
	c := srac.MustParse("[o1: read f1 @ s1]")
	if res := EnumCheck(p, c, "o1", sral.TraceOptions{MaxTraces: -1}); res.Verdict != srac.AllTraces {
		t.Fatalf("own object = %+v", res)
	}
	if res := EnumCheck(p, c, "o2", sral.TraceOptions{MaxTraces: -1}); res.Verdict != srac.NoTrace {
		t.Fatalf("foreign object = %+v", res)
	}
}

func TestEnumCheckInexactOnLoops(t *testing.T) {
	p := sral.MustParse("while x > 0 do { read f1 @ s1 }")
	c := srac.MustParse("count(0, inf, sigma[*])")
	res := EnumCheck(p, c, "o1", sral.TraceOptions{MaxLoopReps: 3})
	if res.Exact {
		t.Fatal("loop enumeration claimed exact")
	}
}

// Cross-validation: on random loop-free programs the enumeration
// checker and the polynomial static checker must agree whenever the
// static checker commits to a definite verdict (soundness of
// Theorem 3.2's algorithm against ground truth).
func TestEnumAgreesWithStaticChecker(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	v := workload.DefaultVocabulary(3, 4)
	for i := 0; i < 200; i++ {
		p := workload.Program(r, v, workload.ProgramOptions{Size: 8, ParFraction: 0.2, LoopFree: true})
		c := workload.Constraint(r, v, workload.ConstraintOptions{Size: 4})
		enum := EnumCheck(p, c, "o1", sral.TraceOptions{MaxTraces: -1})
		if !enum.Exact {
			continue
		}
		static := srac.CheckProgram(p, srac.StampObject(c, "o1"), "o1")
		switch static {
		case srac.AllTraces:
			if enum.Verdict != srac.AllTraces {
				t.Fatalf("iteration %d: static all-traces but enumeration %v\nP=%s\nC=%s",
					i, enum.Verdict, sral.String(p), srac.String(c))
			}
		case srac.NoTrace:
			if enum.Verdict != srac.NoTrace {
				t.Fatalf("iteration %d: static no-trace but enumeration %v\nP=%s\nC=%s",
					i, enum.Verdict, sral.String(p), srac.String(c))
			}
		}
	}
}

func TestPlanTRBACGroupsByDuration(t *testing.T) {
	perms := []TRBACPermission{
		{ID: "p1", Duration: 10},
		{ID: "p2", Duration: 20},
		{ID: "p3", Duration: 10},
		{ID: "p4", Duration: 30},
		{ID: "p5", Duration: 20},
	}
	plan := PlanTRBAC(perms)
	if plan.RoleCount() != 3 {
		t.Fatalf("roles = %d", plan.RoleCount())
	}
	// Sorted by duration: 10 → {p1,p3}, 20 → {p2,p5}, 30 → {p4}.
	if plan.Roles[0].Duration != 10 || len(plan.Roles[0].Permissions) != 2 {
		t.Fatalf("role 0 = %+v", plan.Roles[0])
	}
	if plan.Roles[2].Duration != 30 || plan.Roles[2].Permissions[0] != "p4" {
		t.Fatalf("role 2 = %+v", plan.Roles[2])
	}
}

func TestPlanTRBACUniformDurations(t *testing.T) {
	perms := []TRBACPermission{{ID: "a", Duration: 5}, {ID: "b", Duration: 5}}
	if got := PlanTRBAC(perms).RoleCount(); got != 1 {
		t.Fatalf("uniform durations need %d roles", got)
	}
	if got := PlanTRBAC(nil).RoleCount(); got != 0 {
		t.Fatalf("empty plan = %d roles", got)
	}
}

func TestRevocationChurn(t *testing.T) {
	plan := PlanTRBAC([]TRBACPermission{
		{ID: "p1", Duration: 10},
		{ID: "p2", Duration: 10},
		{ID: "p3", Duration: 10},
		{ID: "p4", Duration: 20},
	})
	if got := RevocationChurn(plan, "p1"); got != 2 {
		t.Fatalf("churn(p1) = %d", got)
	}
	if got := RevocationChurn(plan, "p4"); got != 0 {
		t.Fatalf("churn(p4) = %d", got)
	}
	if got := RevocationChurn(plan, "ghost"); got != 0 {
		t.Fatalf("churn(ghost) = %d", got)
	}
	// Total: role of 3 contributes 3*2=6, singleton contributes 0.
	if got := TotalChurn(plan); got != 6 {
		t.Fatalf("total churn = %d", got)
	}
}

func TestChurnScalesWithSharing(t *testing.T) {
	// p permissions, all same duration: one role, churn p(p-1).
	var perms []TRBACPermission
	for i := 0; i < 10; i++ {
		perms = append(perms, TRBACPermission{ID: model.ResourceID(rune('a' + i)), Duration: 7})
	}
	plan := PlanTRBAC(perms)
	if got := TotalChurn(plan); got != 90 {
		t.Fatalf("churn = %d", got)
	}
	// Distinct durations: p roles, churn 0 — but at the cost of role
	// explosion, which is the paper's point.
	for i := range perms {
		perms[i].Duration = float64(i)
	}
	plan = PlanTRBAC(perms)
	if plan.RoleCount() != 10 || TotalChurn(plan) != 0 {
		t.Fatalf("distinct plan = %d roles, churn %d", plan.RoleCount(), TotalChurn(plan))
	}
}
