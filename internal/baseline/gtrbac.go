package baseline

import (
	"fmt"

	"stac/internal/temporal"
)

// This file extends the TRBAC comparator to GTRBAC (Joshi et al.,
// the paper's [12]): besides periodic role enabling, GTRBAC admits
// periodic constraints on user-role assignments and role-permission
// assignments. The simulator answers point-in-time authorisation
// queries and materialises per-(user, permission) availability state
// functions, which the E5-style analyses compare against the
// coordinated model's per-permission durations.
//
// The structural limitation the paper leans on remains visible here:
// every temporal restriction is an *absolute periodic calendar*
// (enabled 9–17 daily), not an accumulated duration relative to a
// mobile object's arrival — so without a global clock the calendars of
// different servers disagree, and per-object budgets ("at most 3 hours
// of editing") are inexpressible without one role per (user, budget)
// pair and external re-enabling machinery.

// Always is the periodic expression that is permanently active.
var Always = Periodic{Start: 0, Duration: 1, Period: 1}

// GTRBACAssignment couples a relation member with its periodic
// activity window.
type GTRBACAssignment struct {
	// Window bounds when the assignment is in force; use Always for an
	// unconstrained assignment.
	Window Periodic
}

// GTRBACSim is a GTRBAC-style model: periodic role enabling plus
// periodic user-role and role-permission assignments.
type GTRBACSim struct {
	roles map[string]Periodic
	// ua[user][role] and pa[role][perm] carry the assignment windows.
	ua map[string]map[string]GTRBACAssignment
	pa map[string]map[string]GTRBACAssignment
}

// NewGTRBACSim creates an empty simulator.
func NewGTRBACSim() *GTRBACSim {
	return &GTRBACSim{
		roles: make(map[string]Periodic),
		ua:    make(map[string]map[string]GTRBACAssignment),
		pa:    make(map[string]map[string]GTRBACAssignment),
	}
}

// AddRole registers a role with its periodic enabling expression.
func (g *GTRBACSim) AddRole(name string, enable Periodic) error {
	if name == "" {
		return fmt.Errorf("baseline: role without name")
	}
	if err := enable.Validate(); err != nil {
		return fmt.Errorf("baseline: role %q: %w", name, err)
	}
	if _, ok := g.roles[name]; ok {
		return fmt.Errorf("baseline: role %q already defined", name)
	}
	g.roles[name] = enable
	return nil
}

// AssignUser adds a periodic user-role assignment.
func (g *GTRBACSim) AssignUser(user, role string, window Periodic) error {
	if _, ok := g.roles[role]; !ok {
		return fmt.Errorf("baseline: unknown role %q", role)
	}
	if err := window.Validate(); err != nil {
		return fmt.Errorf("baseline: assignment (%s, %s): %w", user, role, err)
	}
	if g.ua[user] == nil {
		g.ua[user] = make(map[string]GTRBACAssignment)
	}
	g.ua[user][role] = GTRBACAssignment{Window: window}
	return nil
}

// GrantPermission adds a periodic role-permission assignment.
func (g *GTRBACSim) GrantPermission(role, perm string, window Periodic) error {
	if _, ok := g.roles[role]; !ok {
		return fmt.Errorf("baseline: unknown role %q", role)
	}
	if err := window.Validate(); err != nil {
		return fmt.Errorf("baseline: grant (%s, %s): %w", role, perm, err)
	}
	if g.pa[role] == nil {
		g.pa[role] = make(map[string]GTRBACAssignment)
	}
	g.pa[role][perm] = GTRBACAssignment{Window: window}
	return nil
}

// HoldsAt reports whether the user holds the permission at time t:
// some role is enabled at t whose user assignment and permission grant
// windows are both active at t.
func (g *GTRBACSim) HoldsAt(user, perm string, t float64) bool {
	for role, ua := range g.ua[user] {
		if !g.roles[role].Active(t) || !ua.Window.Active(t) {
			continue
		}
		if pa, ok := g.pa[role][perm]; ok && pa.Window.Active(t) {
			return true
		}
	}
	return false
}

// AvailabilityState materialises, over [begin, end), the state
// function "user holds perm" — the GTRBAC counterpart of the
// coordinated model's valid(perm, t).
func (g *GTRBACSim) AvailabilityState(user, perm string, begin, end float64) *temporal.State {
	acc := temporal.NewIntervalSet()
	for role, ua := range g.ua[user] {
		pa, ok := g.pa[role][perm]
		if !ok {
			continue
		}
		windows := g.roles[role].WindowsWithin(begin, end).
			Intersect(ua.Window.WindowsWithin(begin, end)).
			Intersect(pa.Window.WindowsWithin(begin, end))
		acc = acc.Union(windows)
	}
	st := temporal.NewState()
	for _, iv := range acc.Intervals() {
		st.SetOn(iv.Begin, iv.End)
	}
	return st
}

// BudgetExpressible reports whether the model can express "user may
// hold perm for at most dur accumulated seconds starting from an
// arbitrary arrival time": it cannot — availability is a fixed
// calendar independent of consumption — unless the budget happens to
// coincide with a periodic window measured from an agreed global
// epoch. The method quantifies the mismatch: it returns the worst-case
// over-grant (accumulated availability beyond dur) across arrival
// times sampled at window boundaries within the horizon.
func (g *GTRBACSim) BudgetExpressible(user, perm string, dur float64, horizon float64) (worstOverGrant float64) {
	st := g.AvailabilityState(user, perm, 0, horizon)
	segs := st.SegmentsWithin(temporal.Interval{Begin: 0, End: horizon})
	for _, seg := range segs {
		if !seg.Value {
			continue
		}
		arrival := seg.Interval.Begin
		granted := st.Integral(arrival, horizon)
		if over := granted - dur; over > worstOverGrant {
			worstOverGrant = over
		}
	}
	return worstOverGrant
}
