package baseline

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"stac/internal/model"
	"stac/internal/rbac"
)

// grantAll is a trivial authorizer for shim-level tests.
type grantAll struct{}

func (grantAll) Name() string                     { return "grant-all" }
func (grantAll) Authorize(AccessRequest) Decision { return Decision{Granted: true} }

func serveGrantAll(t *testing.T) string {
	t.Helper()
	d, addr, err := ServeAuthorizer(grantAll{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return addr
}

func TestHarnessRoundTrip(t *testing.T) {
	sys := rbac.NewSystem()
	if err := sys.AddUser("u"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddRole("r"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AssignUserRole("u", "r"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddPermission(rbac.Permission{ID: "p", Resource: "f1"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.GrantPermission("r", "p"); err != nil {
		t.Fatal(err)
	}
	d, addr, err := ServeAuthorizer(RBACAuthorizer{Sys: sys}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cl, err := DialHarness(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	dec, err := cl.Authorize(req("u", "f1", 0))
	if err != nil || !dec.Granted {
		t.Fatalf("grant round trip: %+v %v", dec, err)
	}
	// A deny is a decision, not an error.
	dec, err = cl.Authorize(req("u", "f2", 0))
	if err != nil || dec.Granted {
		t.Fatalf("deny round trip: %+v %v", dec, err)
	}
	if dec.Reason == "" {
		t.Fatal("deny without a reason")
	}
	// Many requests on one connection.
	for i := 0; i < 50; i++ {
		if _, err := cl.Authorize(req("u", "f1", float64(i))); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestHarnessRejectsMalformed(t *testing.T) {
	addr := serveGrantAll(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte("{broken\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("no structured reject: %v", err)
	}
	if !strings.Contains(line, "malformed") {
		t.Fatalf("reject = %q", line)
	}
}

func TestHarnessRejectsOversize(t *testing.T) {
	addr := serveGrantAll(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	big := append(bytes.Repeat([]byte("x"), HarnessMaxLineBytes+100), '\n')
	if _, err := conn.Write(big); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("no structured reject: %v", err)
	}
	if !strings.Contains(line, "exceeds") {
		t.Fatalf("reject = %q", line)
	}
}

// TestHarnessClientSurfacesServerError makes sure the typed reject is
// distinguishable from a transport failure on the client side.
func TestHarnessClientSurfacesServerError(t *testing.T) {
	addr := serveGrantAll(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cl := &HarnessClient{conn: conn, br: bufio.NewReader(conn)}
	defer cl.Close()
	if _, err := conn.Write([]byte("junk\n")); err != nil {
		t.Fatal(err)
	}
	// Read the reject through the client path by issuing a request that
	// will consume the pending reject line.
	_, err = cl.Authorize(req("u", "f1", 0))
	var se *HarnessServerError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *HarnessServerError", err)
	}
	if !strings.Contains(se.Error(), "malformed") {
		t.Fatalf("server error = %q", se.Error())
	}
}

func TestHarnessConcurrentClients(t *testing.T) {
	addr := serveGrantAll(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := DialHarness(addr, nil)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 25; i++ {
				if _, err := cl.Authorize(req("u", model.ResourceID("f1"), float64(i))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestHarnessCloseDrains requires Close to unwind every handler — the
// load harness tears systems down between matrix cells and must not
// accumulate goroutines across a long matrix.
func TestHarnessCloseDrains(t *testing.T) {
	baseline := runtime.NumGoroutine()
	d, addr, err := ServeAuthorizer(grantAll{}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var clients []*HarnessClient
	for i := 0; i < 10; i++ {
		cl, err := DialHarness(addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, cl)
		if _, err := cl.Authorize(req("u", "f1", 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, cl := range clients {
		cl.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines = %d, baseline %d: harness daemon did not drain",
		runtime.NumGoroutine(), baseline)
}
