// Package baseline implements the comparison systems of the
// experiment harness:
//
//  1. an enumeration-based constraint checker that decides P ⊨ C by
//     materialising traces(P) — exact on loop-free programs but
//     exponential in branching (and undefined on loops, which it can
//     only bound-unroll), against which the paper's polynomial
//     checker (Theorem 3.2) is compared; and
//  2. a TRBAC-style temporal model in which enabling periods attach
//     to *roles* rather than permissions, reproducing the paper's
//     Section 4 motivation: permissions with distinct temporal
//     requirements force distinct roles, and disabling a role revokes
//     all its granted privileges at once.
package baseline

import (
	"sort"

	"stac/internal/model"
	"stac/internal/srac"
	"stac/internal/sral"
	"stac/internal/trace"
)

// EnumResult is the outcome of an enumeration-based check.
type EnumResult struct {
	// Verdict mirrors the static checker's three-valued answer.
	Verdict srac.Verdict
	// Traces is the number of traces materialised.
	Traces int
	// Exact reports whether enumeration covered the whole trace model
	// (false when a loop bound or trace budget was hit, making the
	// verdict unsound in general).
	Exact bool
}

// EnumCheck decides P ⊨ C by enumerating the trace model with the
// given bounds and evaluating the constraint on every trace. Program
// accesses are attributed to obj first, mirroring the polynomial
// checker.
func EnumCheck(p sral.Node, c srac.Constraint, obj model.ObjectID, opts sral.TraceOptions) EnumResult {
	set, exact := sral.Traces(p, opts)
	stamped := srac.StampObject(c, obj)
	all, any := true, false
	for _, t := range set.Traces() {
		st := stampTrace(t, obj)
		if srac.SatisfiesTrace(st, stamped, nil) {
			any = true
		} else {
			all = false
		}
	}
	v := srac.Mixed
	switch {
	case set.Len() == 0 || all:
		v = srac.AllTraces
	case !any:
		v = srac.NoTrace
	}
	return EnumResult{Verdict: v, Traces: set.Len(), Exact: exact}
}

func stampTrace(t trace.Trace, obj model.ObjectID) trace.Trace {
	out := make(trace.Trace, len(t))
	for i, a := range t {
		out[i] = a.WithObject(obj)
	}
	return out
}

// --- TRBAC-style role-period model -----------------------------------

// TRBACPermission is a permission with the temporal requirement the
// deployment needs: an enabling duration (seconds per activation).
type TRBACPermission struct {
	ID model.ResourceID
	// Duration is the required validity duration.
	Duration float64
}

// TRBACPlan is the role structure a TRBAC-style model needs to realise
// a set of per-permission durations. Because enabling periods attach
// to roles, permissions can share a role only if they share a
// duration; the plan groups permissions by duration.
type TRBACPlan struct {
	// Roles lists one role per distinct duration, with the
	// permissions it carries.
	Roles []TRBACRole
}

// TRBACRole is one role of the plan.
type TRBACRole struct {
	Duration    float64
	Permissions []model.ResourceID
}

// RoleCount returns the number of roles the plan needs.
func (p TRBACPlan) RoleCount() int { return len(p.Roles) }

// PlanTRBAC computes the role structure a TRBAC-style model requires
// for the permission set: one role per distinct duration. The
// coordinated model of the paper always needs exactly one role for the
// same job function, because durations attach to permissions.
func PlanTRBAC(perms []TRBACPermission) TRBACPlan {
	byDur := map[float64][]model.ResourceID{}
	for _, p := range perms {
		byDur[p.Duration] = append(byDur[p.Duration], p.ID)
	}
	durs := make([]float64, 0, len(byDur))
	for d := range byDur {
		durs = append(durs, d)
	}
	sort.Float64s(durs)
	plan := TRBACPlan{}
	for _, d := range durs {
		ids := byDur[d]
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		plan.Roles = append(plan.Roles, TRBACRole{Duration: d, Permissions: ids})
	}
	return plan
}

// RevocationChurn simulates the cost of a role-disabling event: in
// TRBAC, disabling a role revokes every permission it grants, so a
// subject that only needed one permission to expire loses the others
// too. It returns, for a plan and the index of the expiring
// permission, the number of permissions revoked alongside it
// (collateral revocations). The paper's model revokes exactly the
// expired permission, i.e. churn 0.
func RevocationChurn(plan TRBACPlan, expired model.ResourceID) int {
	for _, role := range plan.Roles {
		for _, p := range role.Permissions {
			if p == expired {
				return len(role.Permissions) - 1
			}
		}
	}
	return 0
}

// TotalChurn sums the collateral revocations over every permission
// expiring once — the aggregate over-revocation a TRBAC-style
// deployment incurs for the permission set.
func TotalChurn(plan TRBACPlan) int {
	total := 0
	for _, role := range plan.Roles {
		// Each expiry in a role of size k revokes k-1 others.
		total += len(role.Permissions) * (len(role.Permissions) - 1)
	}
	return total
}
