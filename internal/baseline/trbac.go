package baseline

import (
	"fmt"
	"math"
	"sort"

	"stac/internal/temporal"
)

// This file implements a working TRBAC-style comparator (Bertino et
// al., cited as [2]/[3] by the paper): roles are enabled by PERIODIC
// interval expressions on a discrete-epoch calendar, and a disabling
// event revokes every permission the role grants at once. It is the
// executable counterpart of the paper's Section 4 critique — the
// PlanTRBAC role-counting analysis in baseline.go gives the static
// view; this simulator gives the dynamic one (who holds which
// permission when, and how much collateral revocation role-level
// disabling causes).

// Periodic is a periodic interval expression: windows of length
// Duration starting at Start and recurring every Period (all in
// seconds). It is the discrete-calendar periodic expression of TRBAC
// ("every day from 9 to 17" ≈ Start 9h, Duration 8h, Period 24h).
type Periodic struct {
	Start    float64
	Duration float64
	Period   float64
}

// Validate reports structural problems.
func (p Periodic) Validate() error {
	if p.Duration <= 0 {
		return fmt.Errorf("baseline: periodic duration must be positive")
	}
	if p.Period <= 0 {
		return fmt.Errorf("baseline: periodic period must be positive")
	}
	if p.Duration > p.Period {
		return fmt.Errorf("baseline: periodic duration exceeds period")
	}
	return nil
}

// Active reports whether time t falls inside one of the expression's
// windows.
func (p Periodic) Active(t float64) bool {
	if t < p.Start {
		return false
	}
	offset := math.Mod(t-p.Start, p.Period)
	return offset < p.Duration
}

// WindowsWithin materialises the enabling windows intersecting
// [begin, end) as an interval set.
func (p Periodic) WindowsWithin(begin, end float64) *temporal.IntervalSet {
	out := temporal.NewIntervalSet()
	if end <= begin {
		return out
	}
	// First window that can intersect the range.
	k := math.Floor((begin - p.Start) / p.Period)
	if k < 0 {
		k = 0
	}
	for start := p.Start + k*p.Period; start < end; start += p.Period {
		out.Add(temporal.Interval{Begin: start, End: start + p.Duration})
	}
	return out.Intersect(temporal.NewIntervalSet(temporal.Interval{Begin: begin, End: end}))
}

// TRBACRoleSpec couples a role with its periodic enabling expression
// and granted permissions.
type TRBACRoleSpec struct {
	Name    string
	Enable  Periodic
	Granted []string
}

// TRBACSim simulates role-period enabling over a horizon.
type TRBACSim struct {
	roles []TRBACRoleSpec
}

// NewTRBACSim builds a simulator after validating every periodic
// expression.
func NewTRBACSim(roles []TRBACRoleSpec) (*TRBACSim, error) {
	for _, r := range roles {
		if r.Name == "" {
			return nil, fmt.Errorf("baseline: role without name")
		}
		if err := r.Enable.Validate(); err != nil {
			return nil, fmt.Errorf("baseline: role %q: %w", r.Name, err)
		}
	}
	return &TRBACSim{roles: append([]TRBACRoleSpec(nil), roles...)}, nil
}

// HoldsAt reports whether the permission is granted at time t — i.e.
// some enabled role grants it.
func (s *TRBACSim) HoldsAt(perm string, t float64) bool {
	for _, r := range s.roles {
		if !r.Enable.Active(t) {
			continue
		}
		for _, g := range r.Granted {
			if g == perm {
				return true
			}
		}
	}
	return false
}

// PermissionState returns the state function of a permission over
// [begin, end): 1 whenever some enabled role grants it.
func (s *TRBACSim) PermissionState(perm string, begin, end float64) *temporal.State {
	acc := temporal.NewIntervalSet()
	for _, r := range s.roles {
		granted := false
		for _, g := range r.Granted {
			if g == perm {
				granted = true
				break
			}
		}
		if !granted {
			continue
		}
		acc = acc.Union(r.Enable.WindowsWithin(begin, end))
	}
	st := temporal.NewState()
	for _, iv := range acc.Intervals() {
		st.SetOn(iv.Begin, iv.End)
	}
	return st
}

// RevocationEvent is one role-disabling instant and the permissions it
// revokes together.
type RevocationEvent struct {
	Time    float64
	Role    string
	Revoked []string
}

// RevocationEvents lists every role-disabling event in [begin, end)
// in time order. Each event revokes ALL of the role's permissions at
// once — the coarseness the paper's per-permission validity avoids.
func (s *TRBACSim) RevocationEvents(begin, end float64) []RevocationEvent {
	var out []RevocationEvent
	for _, r := range s.roles {
		p := r.Enable
		k := math.Floor((begin - p.Start) / p.Period)
		if k < 0 {
			k = 0
		}
		for start := p.Start + k*p.Period; start < end; start += p.Period {
			// The disabling instant is the window's natural end; only
			// instants strictly inside the horizon count.
			wEnd := start + p.Duration
			if wEnd <= begin || wEnd >= end {
				continue
			}
			revoked := append([]string(nil), r.Granted...)
			sort.Strings(revoked)
			out = append(out, RevocationEvent{Time: wEnd, Role: r.Name, Revoked: revoked})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Role < out[j].Role
	})
	return out
}

// CollateralOver sums, over every revocation event in the horizon, the
// permissions revoked beyond the first — the aggregate over-revocation
// of role-level disabling.
func (s *TRBACSim) CollateralOver(begin, end float64) int {
	total := 0
	for _, ev := range s.RevocationEvents(begin, end) {
		if n := len(ev.Revoked); n > 1 {
			total += n - 1
		}
	}
	return total
}
