package baseline

// The common harness interface of the load generator (cmd/stacload):
// every comparison system — plain RBAC, the TRBAC and GTRBAC
// simulators, and the coordinated engine itself on the stacload side —
// answers the same point-in-time authorisation question, so one worker
// loop can drive them all under identical traffic and the resulting
// throughput/latency tables compare like with like.

import (
	"fmt"

	"stac/internal/model"
	"stac/internal/rbac"
)

// AccessRequest is one authorisation question posed to a comparison
// system: may User perform Op on Resource at Server, T seconds after
// the scenario epoch?
type AccessRequest struct {
	User     string           `json:"user"`
	Op       model.Operation  `json:"op"`
	Resource model.ResourceID `json:"resource"`
	Server   model.ServerID   `json:"server"`
	T        float64          `json:"t"`
}

// Access renders the request as the model's access tuple.
func (r AccessRequest) Access() model.Access {
	return model.Access{
		Object:   model.ObjectID(r.User),
		Op:       r.Op,
		Resource: r.Resource,
		Server:   r.Server,
	}
}

// Decision is a comparison system's answer.
type Decision struct {
	Granted bool   `json:"granted"`
	Reason  string `json:"reason,omitempty"`
}

// Authorizer is the harness interface: a named system answering access
// requests. Implementations must be safe for concurrent use — the
// load harness calls Authorize from many worker connections at once.
type Authorizer interface {
	Name() string
	Authorize(AccessRequest) Decision
}

// --- plain RBAC ------------------------------------------------------

// RBACAuthorizer answers from a plain RBAC system: granted iff some
// authorized role of the user carries a covering permission. It has no
// temporal or spatio-temporal dimension at all — the floor of the
// comparison.
type RBACAuthorizer struct {
	Sys *rbac.System
}

// Name implements Authorizer.
func (a RBACAuthorizer) Name() string { return "rbac" }

// Authorize implements Authorizer.
func (a RBACAuthorizer) Authorize(req AccessRequest) Decision {
	acc := req.Access()
	for _, role := range a.Sys.AuthorizedRoles(rbac.UserID(req.User)) {
		for _, p := range a.Sys.RolePermissions(role) {
			if p.Covers(acc) {
				return Decision{Granted: true}
			}
		}
	}
	return Decision{Reason: "rbac: no authorized role carries a covering permission"}
}

// --- TRBAC / GTRBAC ---------------------------------------------------

// PermNamer maps an access request to the permission identifier the
// role structure grants; nil defaults to the resource name.
type PermNamer func(AccessRequest) string

func permName(f PermNamer, req AccessRequest) string {
	if f != nil {
		return f(req)
	}
	return string(req.Resource)
}

// TRBACAuthorizer answers from the TRBAC simulator: granted iff some
// role enabled at T grants the permission. Role enabling is an
// absolute periodic calendar — accumulated per-object budgets and
// counting ceilings are inexpressible, which is exactly the gap the
// scenario matrix measures.
type TRBACAuthorizer struct {
	Sim     *TRBACSim
	PermFor PermNamer
}

// Name implements Authorizer.
func (a TRBACAuthorizer) Name() string { return "trbac" }

// Authorize implements Authorizer.
func (a TRBACAuthorizer) Authorize(req AccessRequest) Decision {
	perm := permName(a.PermFor, req)
	if a.Sim.HoldsAt(perm, req.T) {
		return Decision{Granted: true}
	}
	return Decision{Reason: fmt.Sprintf("trbac: no enabled role grants %q at t=%g", perm, req.T)}
}

// GTRBACAuthorizer answers from the GTRBAC simulator: granted iff some
// role enabled at T is assigned to the user and grants the permission,
// with both assignment windows active.
type GTRBACAuthorizer struct {
	Sim     *GTRBACSim
	PermFor PermNamer
}

// Name implements Authorizer.
func (a GTRBACAuthorizer) Name() string { return "gtrbac" }

// Authorize implements Authorizer.
func (a GTRBACAuthorizer) Authorize(req AccessRequest) Decision {
	perm := permName(a.PermFor, req)
	if a.Sim.HoldsAt(req.User, perm, req.T) {
		return Decision{Granted: true}
	}
	return Decision{Reason: fmt.Sprintf("gtrbac: %s does not hold %q at t=%g", req.User, perm, req.T)}
}
