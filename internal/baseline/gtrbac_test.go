package baseline

import (
	"math"
	"testing"
)

func newGTRBAC(t *testing.T) *GTRBACSim {
	t.Helper()
	g := NewGTRBACSim()
	// Role enabled 9–17 daily; alice assigned only on the first "week"
	// half of each 48-unit cycle; the edit grant active all day.
	if err := g.AddRole("editor", Periodic{Start: 9, Duration: 8, Period: 24}); err != nil {
		t.Fatal(err)
	}
	if err := g.AssignUser("alice", "editor", Periodic{Start: 0, Duration: 24, Period: 48}); err != nil {
		t.Fatal(err)
	}
	if err := g.GrantPermission("editor", "p-edit", Always); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGTRBACValidation(t *testing.T) {
	g := NewGTRBACSim()
	if err := g.AddRole("", Always); err == nil {
		t.Fatal("unnamed role accepted")
	}
	if err := g.AddRole("r", Periodic{}); err == nil {
		t.Fatal("invalid periodic accepted")
	}
	if err := g.AddRole("r", Always); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRole("r", Always); err == nil {
		t.Fatal("duplicate role accepted")
	}
	if err := g.AssignUser("u", "ghost", Always); err == nil {
		t.Fatal("assignment to unknown role accepted")
	}
	if err := g.AssignUser("u", "r", Periodic{}); err == nil {
		t.Fatal("invalid assignment window accepted")
	}
	if err := g.GrantPermission("ghost", "p", Always); err == nil {
		t.Fatal("grant to unknown role accepted")
	}
	if err := g.GrantPermission("r", "p", Periodic{}); err == nil {
		t.Fatal("invalid grant window accepted")
	}
}

func TestGTRBACHoldsAtIntersectsAllWindows(t *testing.T) {
	g := newGTRBAC(t)
	tests := []struct {
		t    float64
		want bool
	}{
		{10, true},  // day 1, business hours, assignment active
		{5, false},  // role disabled
		{20, false}, // role disabled (evening)
		{34, false}, // day 2 business hours (t=24+10) — assignment window inactive
		{58, true},  // day 3 (t=48+10): assignment active again
	}
	for _, tt := range tests {
		if got := g.HoldsAt("alice", "p-edit", tt.t); got != tt.want {
			t.Errorf("HoldsAt(%v) = %v", tt.t, got)
		}
	}
	if g.HoldsAt("bob", "p-edit", 10) {
		t.Fatal("unassigned user holds permission")
	}
	if g.HoldsAt("alice", "ghost", 10) {
		t.Fatal("ungranted permission held")
	}
}

func TestGTRBACAvailabilityState(t *testing.T) {
	g := newGTRBAC(t)
	st := g.AvailabilityState("alice", "p-edit", 0, 96)
	// Active 9–17 on days 1 and 3 only: 16 units over 96.
	if got := st.Integral(0, 96); math.Abs(got-16) > 1e-9 {
		t.Fatalf("availability integral = %v", got)
	}
	// Point queries agree with HoldsAt.
	for _, probe := range []float64{10, 34, 58, 80} {
		if st.At(probe) != g.HoldsAt("alice", "p-edit", probe) {
			t.Fatalf("state/HoldsAt disagree at %v", probe)
		}
	}
	// Unknown pair: empty state.
	if got := g.AvailabilityState("bob", "p-edit", 0, 96).Integral(0, 96); got != 0 {
		t.Fatalf("bob availability = %v", got)
	}
}

// The structural claim behind Section 4's critique: a per-object
// accumulated budget ("at most 3 units of editing after arrival") is
// not expressible as a fixed calendar — an agent arriving at a window
// start can consume far more than the budget.
func TestGTRBACBudgetInexpressible(t *testing.T) {
	g := newGTRBAC(t)
	over := g.BudgetExpressible("alice", "p-edit", 3, 96)
	// Arriving at t=9 the calendar grants 16 units against a 3-unit
	// budget: 13 units of over-grant.
	if math.Abs(over-13) > 1e-9 {
		t.Fatalf("worst over-grant = %v", over)
	}
	// The coordinated model's tracker grants exactly the budget —
	// compare: a 3-unit duration tracker over the same horizon.
	// (Asserted throughout internal/temporal; here we just check the
	// GTRBAC side is the one that over-grants.)
	if over <= 0 {
		t.Fatal("expected a positive over-grant")
	}
}
