package baseline

import (
	"strings"
	"testing"

	"stac/internal/model"
	"stac/internal/rbac"
)

func req(user string, res model.ResourceID, t float64) AccessRequest {
	return AccessRequest{User: user, Op: model.OpRead, Resource: res, Server: "s1", T: t}
}

func TestRBACAuthorizer(t *testing.T) {
	sys := rbac.NewSystem()
	if err := sys.AddUser("alice"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddRole("reader"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AssignUserRole("alice", "reader"); err != nil {
		t.Fatal(err)
	}
	p := rbac.Permission{ID: "p-f1", Resource: "f1"}
	if err := sys.AddPermission(p); err != nil {
		t.Fatal(err)
	}
	if err := sys.GrantPermission("reader", p.ID); err != nil {
		t.Fatal(err)
	}
	a := RBACAuthorizer{Sys: sys}
	if a.Name() != "rbac" {
		t.Fatalf("name = %q", a.Name())
	}
	if d := a.Authorize(req("alice", "f1", 0)); !d.Granted {
		t.Fatalf("covered access denied: %+v", d)
	}
	// Time is invisible to plain RBAC: same answer much later.
	if d := a.Authorize(req("alice", "f1", 1e6)); !d.Granted {
		t.Fatalf("rbac became time-sensitive: %+v", d)
	}
	if d := a.Authorize(req("alice", "f2", 0)); d.Granted || d.Reason == "" {
		t.Fatalf("uncovered access granted: %+v", d)
	}
	if d := a.Authorize(req("mallory", "f1", 0)); d.Granted {
		t.Fatalf("unknown user granted: %+v", d)
	}
}

func TestTRBACAuthorizerWindows(t *testing.T) {
	sim, err := NewTRBACSim([]TRBACRoleSpec{
		// Open the first half of every 10-second cycle.
		{Name: "shift", Enable: Periodic{Start: 0, Duration: 5, Period: 10}, Granted: []string{"p-f1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := TRBACAuthorizer{Sim: sim, PermFor: func(r AccessRequest) string {
		return "p-" + string(r.Resource)
	}}
	if a.Name() != "trbac" {
		t.Fatalf("name = %q", a.Name())
	}
	if d := a.Authorize(req("anyone", "f1", 2)); !d.Granted {
		t.Fatalf("in-window access denied: %+v", d)
	}
	if d := a.Authorize(req("anyone", "f1", 7)); d.Granted {
		t.Fatalf("out-of-window access granted: %+v", d)
	}
	// Next cycle re-opens.
	if d := a.Authorize(req("anyone", "f1", 12)); !d.Granted {
		t.Fatalf("next-cycle access denied: %+v", d)
	}
	if d := a.Authorize(req("anyone", "f9", 2)); d.Granted {
		t.Fatalf("ungranted permission allowed: %+v", d)
	}
}

func TestTRBACAuthorizerDefaultPermNamer(t *testing.T) {
	sim, err := NewTRBACSim([]TRBACRoleSpec{
		{Name: "r", Enable: Always, Granted: []string{"f1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := TRBACAuthorizer{Sim: sim} // nil PermFor: resource name is the permission
	if d := a.Authorize(req("anyone", "f1", 0)); !d.Granted {
		t.Fatalf("default perm namer: %+v", d)
	}
}

func TestGTRBACAuthorizerUserSensitive(t *testing.T) {
	sim := NewGTRBACSim()
	if err := sim.AddRole("shift", Periodic{Start: 0, Duration: 5, Period: 10}); err != nil {
		t.Fatal(err)
	}
	if err := sim.AssignUser("alice", "shift", Always); err != nil {
		t.Fatal(err)
	}
	if err := sim.GrantPermission("shift", "p-f1", Always); err != nil {
		t.Fatal(err)
	}
	a := GTRBACAuthorizer{Sim: sim, PermFor: func(r AccessRequest) string {
		return "p-" + string(r.Resource)
	}}
	if a.Name() != "gtrbac" {
		t.Fatalf("name = %q", a.Name())
	}
	if d := a.Authorize(req("alice", "f1", 2)); !d.Granted {
		t.Fatalf("in-window assigned access denied: %+v", d)
	}
	if d := a.Authorize(req("alice", "f1", 7)); d.Granted {
		t.Fatalf("out-of-window access granted: %+v", d)
	}
	// Unlike TRBAC, GTRBAC knows who is asking.
	if d := a.Authorize(req("mallory", "f1", 2)); d.Granted {
		t.Fatalf("unassigned user granted: %+v", d)
	}
	if d := a.Authorize(req("mallory", "f1", 2)); !strings.Contains(d.Reason, "mallory") {
		t.Fatalf("deny reason does not name the user: %+v", d)
	}
}
