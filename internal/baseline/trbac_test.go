package baseline

import (
	"math"
	"testing"
)

func TestPeriodicValidate(t *testing.T) {
	if err := (Periodic{Start: 0, Duration: 8, Period: 24}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Periodic{
		{Duration: 0, Period: 24},
		{Duration: 8, Period: 0},
		{Duration: 25, Period: 24},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad periodic %d accepted", i)
		}
	}
}

func TestPeriodicActive(t *testing.T) {
	// Business hours: daily from t=9h for 8h (seconds scaled to units).
	p := Periodic{Start: 9, Duration: 8, Period: 24}
	tests := []struct {
		t    float64
		want bool
	}{
		{0, false}, {8.9, false}, {9, true}, {12, true}, {16.9, true},
		{17, false}, {23, false},
		{33, true},  // next day 9am
		{41, false}, // next day 5pm
		{5, false},  // before first window
	}
	for _, tt := range tests {
		if got := p.Active(tt.t); got != tt.want {
			t.Errorf("Active(%v) = %v", tt.t, got)
		}
	}
}

func TestPeriodicWindowsWithin(t *testing.T) {
	p := Periodic{Start: 9, Duration: 8, Period: 24}
	ws := p.WindowsWithin(0, 48)
	if ws.Len() != 2 {
		t.Fatalf("windows = %v", ws)
	}
	if got := ws.Duration(); got != 16 {
		t.Fatalf("window duration = %v", got)
	}
	// Clipped at range edges.
	ws = p.WindowsWithin(10, 12)
	if ws.Duration() != 2 {
		t.Fatalf("clipped duration = %v", ws.Duration())
	}
	if ws := p.WindowsWithin(5, 5); !ws.IsEmpty() {
		t.Fatal("empty range has windows")
	}
	// Range starting far after Start still finds windows.
	ws = p.WindowsWithin(240, 264)
	if ws.Len() != 1 || math.Abs(ws.Duration()-8) > 1e-9 {
		t.Fatalf("late windows = %v (dur %v)", ws, ws.Duration())
	}
}

func newSim(t *testing.T) *TRBACSim {
	t.Helper()
	sim, err := NewTRBACSim([]TRBACRoleSpec{
		{Name: "day-shift", Enable: Periodic{Start: 9, Duration: 8, Period: 24},
			Granted: []string{"p-edit", "p-publish", "p-read"}},
		{Name: "night-audit", Enable: Periodic{Start: 0, Duration: 6, Period: 24},
			Granted: []string{"p-read"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestNewTRBACSimValidation(t *testing.T) {
	if _, err := NewTRBACSim([]TRBACRoleSpec{{Name: "", Enable: Periodic{Duration: 1, Period: 2}}}); err == nil {
		t.Fatal("unnamed role accepted")
	}
	if _, err := NewTRBACSim([]TRBACRoleSpec{{Name: "r", Enable: Periodic{}}}); err == nil {
		t.Fatal("invalid periodic accepted")
	}
}

func TestHoldsAt(t *testing.T) {
	sim := newSim(t)
	if !sim.HoldsAt("p-edit", 10) {
		t.Fatal("p-edit not held during day shift")
	}
	if sim.HoldsAt("p-edit", 3) {
		t.Fatal("p-edit held at night")
	}
	// p-read is granted by both roles: held during either window.
	if !sim.HoldsAt("p-read", 3) || !sim.HoldsAt("p-read", 10) {
		t.Fatal("p-read coverage wrong")
	}
	if sim.HoldsAt("p-read", 7) { // 6..9 is a gap
		t.Fatal("p-read held in the gap")
	}
	if sim.HoldsAt("ghost", 10) {
		t.Fatal("unknown permission held")
	}
}

func TestPermissionState(t *testing.T) {
	sim := newSim(t)
	st := sim.PermissionState("p-read", 0, 24)
	// Night 0..6 plus day 9..17 = 14 units.
	if got := st.Integral(0, 24); math.Abs(got-14) > 1e-9 {
		t.Fatalf("p-read integral = %v", got)
	}
	st = sim.PermissionState("p-edit", 0, 24)
	if got := st.Integral(0, 24); math.Abs(got-8) > 1e-9 {
		t.Fatalf("p-edit integral = %v", got)
	}
	if got := sim.PermissionState("ghost", 0, 24).Integral(0, 24); got != 0 {
		t.Fatalf("ghost integral = %v", got)
	}
}

func TestRevocationEvents(t *testing.T) {
	sim := newSim(t)
	events := sim.RevocationEvents(0, 48)
	// Each role disables once per day inside the horizon: night-audit
	// at 6 and 30, day-shift at 17 and 41.
	if len(events) != 4 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Time != 6 || events[0].Role != "night-audit" {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[1].Time != 17 || len(events[1].Revoked) != 3 {
		t.Fatalf("day-shift disable = %+v", events[1])
	}
	// Windows ending exactly at the horizon are not counted as
	// disabling events inside it.
	short := sim.RevocationEvents(0, 6)
	if len(short) != 0 {
		t.Fatalf("horizon-edge events = %+v", short)
	}
}

func TestCollateralOver(t *testing.T) {
	sim := newSim(t)
	// Per day: day-shift disable revokes 3 permissions (2 collateral),
	// night-audit revokes 1 (0 collateral). Two days → 4.
	if got := sim.CollateralOver(0, 48); got != 4 {
		t.Fatalf("collateral = %d", got)
	}
}

// The dynamic simulator agrees with the static plan analysis: giving
// every permission its own duration-matched role removes collateral
// revocations entirely, at the cost of one role per permission.
func TestSimulatorAgreesWithPlanAnalysis(t *testing.T) {
	perRole := []TRBACRoleSpec{
		{Name: "r-edit", Enable: Periodic{Start: 9, Duration: 8, Period: 24}, Granted: []string{"p-edit"}},
		{Name: "r-publish", Enable: Periodic{Start: 9, Duration: 8, Period: 24}, Granted: []string{"p-publish"}},
		{Name: "r-read", Enable: Periodic{Start: 9, Duration: 8, Period: 24}, Granted: []string{"p-read"}},
	}
	sim, err := NewTRBACSim(perRole)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.CollateralOver(0, 240); got != 0 {
		t.Fatalf("per-permission roles still cause collateral: %d", got)
	}
	if len(perRole) != 3 {
		t.Fatal("three roles needed for three permissions — the explosion")
	}
}
