package baseline

import (
	"testing"

	"stac/internal/testutil"
)

// TestMain fails the suite when the RBAC-floor daemons or their client
// connections leak goroutines or file descriptors past the run.
func TestMain(m *testing.M) {
	testutil.Main(m)
}
