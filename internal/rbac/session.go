package rbac

import (
	"fmt"
	"sort"

	"stac/internal/model"
)

// Session is the subject a user establishes after authentication: it
// relates the user to the roles activated within it. In the coalition
// emulation each mobile object authenticated at a server obtains a
// session; role activation follows (the NapletPrincipal flow of
// Section 5.1).
//
// Sessions share the System's lock: all methods are safe for
// concurrent use.
type Session struct {
	sys    *System
	id     int
	user   UserID
	active map[RoleID]bool
	closed bool
}

// CreateSession establishes a subject for an authenticated user.
func (s *System) CreateSession(u UserID) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.users[u] {
		return nil, fmt.Errorf("%w: user %q", ErrNotFound, u)
	}
	s.nextSession++
	sess := &Session{sys: s, id: s.nextSession, user: u, active: make(map[RoleID]bool)}
	s.sessions[sess.id] = sess
	return sess, nil
}

// User returns the session's user.
func (sess *Session) User() UserID { return sess.user }

// ID returns the session identifier.
func (sess *Session) ID() int { return sess.id }

// ActivateRole activates a role in the session. The user must be
// assigned the role (a role becomes active only if the user requesting
// its activation is entitled to it), and dynamic separation-of-duty
// constraints must hold.
func (sess *Session) ActivateRole(r RoleID) error {
	s := sess.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess.closed {
		return fmt.Errorf("rbac: session %d closed", sess.id)
	}
	if !s.ua[sess.user][r] {
		return fmt.Errorf("%w: %q for user %q", ErrNotAuthorized, r, sess.user)
	}
	if sess.active[r] {
		return nil // idempotent
	}
	held := func(x RoleID) bool { return sess.active[x] }
	for _, c := range s.dsd {
		if c.violated(held, r) {
			return fmt.Errorf("%w: %s forbids activating %q", ErrDSD, c.Name, r)
		}
	}
	sess.active[r] = true
	return nil
}

// DeactivateRole deactivates a role in the session (a no-op if it was
// not active).
func (sess *Session) DeactivateRole(r RoleID) {
	s := sess.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	sess.deactivateLocked(r)
}

func (sess *Session) deactivateLocked(r RoleID) {
	delete(sess.active, r)
}

// ActiveRoles returns the roles active in the session, sorted — the
// AR(·) function of Expression 3.1.
func (sess *Session) ActiveRoles() []RoleID {
	s := sess.sys
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RoleID, 0, len(sess.active))
	for r := range sess.active {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Permissions returns the permissions conferred by the session's
// active roles, with hierarchy inheritance, deduplicated and sorted.
func (sess *Session) Permissions() []Permission {
	s := sess.sys
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[PermID]bool{}
	var out []Permission
	for r := range sess.active {
		for role := range s.expandLocked(r) {
			for pid := range s.pa[role] {
				if !seen[pid] {
					seen[pid] = true
					out = append(out, s.perms[pid])
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PermissionFor returns a permission held by the session that covers
// the access, if any. When several cover it, the one with the
// lexicographically smallest ID is returned, making authorisation
// decisions deterministic.
func (sess *Session) PermissionFor(a model.Access) (Permission, bool) {
	for _, p := range sess.Permissions() {
		if p.Covers(a) {
			return p, true
		}
	}
	return Permission{}, false
}

// CheckAccess reports whether some active role confers a permission
// covering the access — basic RBAC authorisation, before the
// spatio-temporal extension is applied.
func (sess *Session) CheckAccess(a model.Access) bool {
	_, ok := sess.PermissionFor(a)
	return ok
}

// Close ends the session, deactivating all roles.
func (sess *Session) Close() {
	s := sess.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	sess.closed = true
	sess.active = make(map[RoleID]bool)
	delete(s.sessions, sess.id)
}
