// Package rbac implements the role-based access control substrate the
// paper extends (Section 3.4).
//
// The model has the four basic RBAC components: a set of users (human
// beings or mobile objects), a set of roles (collections of
// permissions needed for a job function), a set of permissions (access
// operations exercisable on objects), and subjects that relate a user
// to possibly many roles. A user who logs in (is authenticated)
// establishes a subject — here called a Session — through which roles
// are activated; an active role confers its permissions, including
// those inherited from junior roles in the role hierarchy, subject to
// separation-of-duty constraints.
//
// The spatio-temporal extension (permission activation gated on SRAC
// spatial constraints and duration-calculus validity, Expressions 3.1
// and 4.1) lives in the core package on top of this substrate.
package rbac

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"stac/internal/model"
)

// UserID names a user: a human being (e.g. the security officer) or a
// mobile object.
type UserID string

// RoleID names a role.
type RoleID string

// PermID names a permission.
type PermID string

// Permission is an access operation that can be exercised on objects
// in the system. Empty components are wildcards, so one permission can
// cover an operation across all coalition servers.
type Permission struct {
	ID       PermID
	Op       model.Operation
	Resource model.ResourceID
	Server   model.ServerID
	// Description documents the permission in policy listings.
	Description string
}

// Covers reports whether the permission authorises the given access.
func (p Permission) Covers(a model.Access) bool {
	pattern := model.Access{Op: p.Op, Resource: p.Resource, Server: p.Server}
	return pattern.Matches(a)
}

// Errors returned by the RBAC system.
var (
	ErrExists        = errors.New("rbac: already exists")
	ErrNotFound      = errors.New("rbac: not found")
	ErrCycle         = errors.New("rbac: role hierarchy cycle")
	ErrNotAuthorized = errors.New("rbac: user not authorized for role")
	ErrSSD           = errors.New("rbac: static separation-of-duty violation")
	ErrDSD           = errors.New("rbac: dynamic separation-of-duty violation")
)

// SoD is a separation-of-duty constraint over a role set: no user (for
// static SoD) or session (for dynamic SoD) may hold Cardinality or
// more of the roles in Roles at once.
type SoD struct {
	Name        string
	Roles       []RoleID
	Cardinality int
}

func (c SoD) violated(held func(RoleID) bool, extra RoleID) bool {
	n := 0
	for _, r := range c.Roles {
		if r == extra || held(r) {
			n++
		}
	}
	return n >= c.Cardinality
}

// System is an RBAC policy store: users, roles, permissions, the
// user-role and role-permission assignment relations, the role
// hierarchy, and separation-of-duty constraints. It is safe for
// concurrent use.
type System struct {
	mu    sync.RWMutex
	users map[UserID]bool
	roles map[RoleID]bool
	perms map[PermID]Permission

	// ua is the user-role assignment relation.
	ua map[UserID]map[RoleID]bool
	// pa is the role-permission assignment relation.
	pa map[RoleID]map[PermID]bool
	// juniors maps a senior role to the junior roles it inherits
	// permissions from.
	juniors map[RoleID]map[RoleID]bool

	ssd []SoD
	dsd []SoD

	nextSession int
	sessions    map[int]*Session
}

// NewSystem creates an empty RBAC system.
func NewSystem() *System {
	return &System{
		users:    make(map[UserID]bool),
		roles:    make(map[RoleID]bool),
		perms:    make(map[PermID]Permission),
		ua:       make(map[UserID]map[RoleID]bool),
		pa:       make(map[RoleID]map[PermID]bool),
		juniors:  make(map[RoleID]map[RoleID]bool),
		sessions: make(map[int]*Session),
	}
}

// AddUser registers a user.
func (s *System) AddUser(u UserID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.users[u] {
		return fmt.Errorf("%w: user %q", ErrExists, u)
	}
	s.users[u] = true
	return nil
}

// AddRole registers a role.
func (s *System) AddRole(r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.roles[r] {
		return fmt.Errorf("%w: role %q", ErrExists, r)
	}
	s.roles[r] = true
	return nil
}

// AddPermission registers a permission.
func (s *System) AddPermission(p Permission) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p.ID == "" {
		return fmt.Errorf("rbac: permission needs an ID")
	}
	if _, ok := s.perms[p.ID]; ok {
		return fmt.Errorf("%w: permission %q", ErrExists, p.ID)
	}
	s.perms[p.ID] = p
	return nil
}

// Permission returns a registered permission.
func (s *System) Permission(id PermID) (Permission, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.perms[id]
	if !ok {
		return Permission{}, fmt.Errorf("%w: permission %q", ErrNotFound, id)
	}
	return p, nil
}

// AssignUserRole adds (u, r) to the user-role assignment relation,
// enforcing static separation of duty.
func (s *System) AssignUserRole(u UserID, r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.users[u] {
		return fmt.Errorf("%w: user %q", ErrNotFound, u)
	}
	if !s.roles[r] {
		return fmt.Errorf("%w: role %q", ErrNotFound, r)
	}
	if s.ua[u][r] {
		return nil // idempotent
	}
	held := func(x RoleID) bool { return s.ua[u][x] }
	for _, c := range s.ssd {
		if c.violated(held, r) {
			return fmt.Errorf("%w: %s forbids assigning %q to %q", ErrSSD, c.Name, r, u)
		}
	}
	if s.ua[u] == nil {
		s.ua[u] = make(map[RoleID]bool)
	}
	s.ua[u][r] = true
	return nil
}

// DeassignUserRole removes (u, r) from the assignment relation and
// deactivates the role in every session of the user.
func (s *System) DeassignUserRole(u UserID, r RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ua[u][r] {
		return fmt.Errorf("%w: assignment (%q, %q)", ErrNotFound, u, r)
	}
	delete(s.ua[u], r)
	for _, sess := range s.sessions {
		if sess.user == u {
			sess.deactivateLocked(r)
		}
	}
	return nil
}

// GrantPermission adds (r, p) to the role-permission assignment.
func (s *System) GrantPermission(r RoleID, p PermID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.roles[r] {
		return fmt.Errorf("%w: role %q", ErrNotFound, r)
	}
	if _, ok := s.perms[p]; !ok {
		return fmt.Errorf("%w: permission %q", ErrNotFound, p)
	}
	if s.pa[r] == nil {
		s.pa[r] = make(map[PermID]bool)
	}
	s.pa[r][p] = true
	return nil
}

// RevokePermission removes (r, p) from the role-permission assignment.
func (s *System) RevokePermission(r RoleID, p PermID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.pa[r][p] {
		return fmt.Errorf("%w: grant (%q, %q)", ErrNotFound, r, p)
	}
	delete(s.pa[r], p)
	return nil
}

// AddInheritance makes senior inherit the permissions of junior
// (senior ≥ junior in the role hierarchy). Cycles are rejected.
func (s *System) AddInheritance(senior, junior RoleID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.roles[senior] {
		return fmt.Errorf("%w: role %q", ErrNotFound, senior)
	}
	if !s.roles[junior] {
		return fmt.Errorf("%w: role %q", ErrNotFound, junior)
	}
	if senior == junior || s.inheritsLocked(junior, senior) {
		return fmt.Errorf("%w: %q -> %q", ErrCycle, senior, junior)
	}
	if s.juniors[senior] == nil {
		s.juniors[senior] = make(map[RoleID]bool)
	}
	s.juniors[senior][junior] = true
	return nil
}

// inheritsLocked reports whether from reaches to in the hierarchy.
func (s *System) inheritsLocked(from, to RoleID) bool {
	if from == to {
		return true
	}
	for j := range s.juniors[from] {
		if s.inheritsLocked(j, to) {
			return true
		}
	}
	return false
}

// expandLocked returns r and every role it transitively inherits.
func (s *System) expandLocked(r RoleID) map[RoleID]bool {
	out := map[RoleID]bool{}
	var rec func(RoleID)
	rec = func(x RoleID) {
		if out[x] {
			return
		}
		out[x] = true
		for j := range s.juniors[x] {
			rec(j)
		}
	}
	rec(r)
	return out
}

// AddSSD registers a static separation-of-duty constraint and verifies
// that no existing assignment already violates it.
func (s *System) AddSSD(c SoD) error {
	if err := validSoD(c); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for u, rs := range s.ua {
		n := 0
		for _, r := range c.Roles {
			if rs[r] {
				n++
			}
		}
		if n >= c.Cardinality {
			return fmt.Errorf("%w: existing assignments of %q violate %s", ErrSSD, u, c.Name)
		}
	}
	s.ssd = append(s.ssd, c)
	return nil
}

// AddDSD registers a dynamic separation-of-duty constraint (checked at
// role activation time).
func (s *System) AddDSD(c SoD) error {
	if err := validSoD(c); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dsd = append(s.dsd, c)
	return nil
}

func validSoD(c SoD) error {
	if c.Cardinality < 2 {
		return fmt.Errorf("rbac: separation-of-duty cardinality must be ≥ 2")
	}
	if len(c.Roles) < c.Cardinality {
		return fmt.Errorf("rbac: separation-of-duty over %d roles with cardinality %d is vacuous",
			len(c.Roles), c.Cardinality)
	}
	return nil
}

// AuthorizedRoles returns the roles directly assigned to the user, in
// sorted order.
func (s *System) AuthorizedRoles(u UserID) []RoleID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RoleID, 0, len(s.ua[u]))
	for r := range s.ua[u] {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RolePermissions returns the permissions of the role, including those
// inherited from junior roles — the RP(·) function of Expression 3.1.
func (s *System) RolePermissions(r RoleID) []Permission {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[PermID]bool{}
	var out []Permission
	for role := range s.expandLocked(r) {
		for pid := range s.pa[role] {
			if !seen[pid] {
				seen[pid] = true
				out = append(out, s.perms[pid])
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HasUser reports whether the user is registered.
func (s *System) HasUser(u UserID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.users[u]
}

// HasRole reports whether the role is registered.
func (s *System) HasRole(r RoleID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.roles[r]
}

// Users returns all registered users, sorted.
func (s *System) Users() []UserID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]UserID, 0, len(s.users))
	for u := range s.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Roles returns all registered roles, sorted.
func (s *System) Roles() []RoleID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RoleID, 0, len(s.roles))
	for r := range s.roles {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InheritanceEdges returns the direct (senior, junior) pairs of the
// role hierarchy, sorted.
func (s *System) InheritanceEdges() [][2]RoleID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out [][2]RoleID
	for senior, js := range s.juniors {
		for junior := range js {
			out = append(out, [2]RoleID{senior, junior})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// DirectGrants returns the permissions granted directly to the role
// (without hierarchy inheritance), sorted.
func (s *System) DirectGrants(r RoleID) []PermID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]PermID, 0, len(s.pa[r]))
	for p := range s.pa[r] {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SSDConstraints returns the registered static separation-of-duty
// constraints.
func (s *System) SSDConstraints() []SoD {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SoD(nil), s.ssd...)
}

// DSDConstraints returns the registered dynamic separation-of-duty
// constraints.
func (s *System) DSDConstraints() []SoD {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SoD(nil), s.dsd...)
}

// Stats summarises the policy store for diagnostics.
func (s *System) Stats() (users, roles, perms, sessions int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.users), len(s.roles), len(s.perms), len(s.sessions)
}
