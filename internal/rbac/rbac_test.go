package rbac

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"stac/internal/model"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s := NewSystem()
	for _, u := range []UserID{"alice", "bob"} {
		if err := s.AddUser(u); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range []RoleID{"auditor", "editor", "admin", "reader"} {
		if err := s.AddRole(r); err != nil {
			t.Fatal(err)
		}
	}
	perms := []Permission{
		{ID: "p-read", Op: "read", Resource: "f1", Server: "s1"},
		{ID: "p-write", Op: "write", Resource: "f1", Server: "s1"},
		{ID: "p-any-server", Op: "read", Resource: "f2"},
		{ID: "p-wild", Op: "execute"},
	}
	for _, p := range perms {
		if err := s.AddPermission(p); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAddDuplicates(t *testing.T) {
	s := newSys(t)
	if err := s.AddUser("alice"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate user: %v", err)
	}
	if err := s.AddRole("auditor"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate role: %v", err)
	}
	if err := s.AddPermission(Permission{ID: "p-read"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate permission: %v", err)
	}
	if err := s.AddPermission(Permission{}); err == nil {
		t.Fatal("permission without ID accepted")
	}
}

func TestPermissionCovers(t *testing.T) {
	p := Permission{ID: "p", Op: "read", Resource: "f1", Server: "s1"}
	if !p.Covers(model.NewAccess("o1", "read", "f1", "s1")) {
		t.Fatal("exact access not covered")
	}
	if p.Covers(model.NewAccess("o1", "write", "f1", "s1")) {
		t.Fatal("wrong op covered")
	}
	wild := Permission{ID: "p2", Op: "read", Resource: "f2"}
	if !wild.Covers(model.NewAccess("o1", "read", "f2", "anywhere")) {
		t.Fatal("wildcard server not covered")
	}
}

func TestAssignmentAndLookup(t *testing.T) {
	s := newSys(t)
	if err := s.AssignUserRole("alice", "auditor"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignUserRole("alice", "auditor"); err != nil {
		t.Fatal("re-assignment should be idempotent")
	}
	if err := s.AssignUserRole("ghost", "auditor"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown user: %v", err)
	}
	if err := s.AssignUserRole("alice", "ghost-role"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown role: %v", err)
	}
	roles := s.AuthorizedRoles("alice")
	if len(roles) != 1 || roles[0] != "auditor" {
		t.Fatalf("AuthorizedRoles = %v", roles)
	}
	if err := s.DeassignUserRole("alice", "auditor"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeassignUserRole("alice", "auditor"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double deassign: %v", err)
	}
}

func TestGrantRevoke(t *testing.T) {
	s := newSys(t)
	if err := s.GrantPermission("auditor", "p-read"); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantPermission("ghost", "p-read"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("grant to unknown role: %v", err)
	}
	if err := s.GrantPermission("auditor", "ghost-perm"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("grant unknown perm: %v", err)
	}
	ps := s.RolePermissions("auditor")
	if len(ps) != 1 || ps[0].ID != "p-read" {
		t.Fatalf("RolePermissions = %v", ps)
	}
	if err := s.RevokePermission("auditor", "p-read"); err != nil {
		t.Fatal(err)
	}
	if err := s.RevokePermission("auditor", "p-read"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double revoke: %v", err)
	}
}

func TestHierarchyInheritance(t *testing.T) {
	s := newSys(t)
	// admin ≥ editor ≥ reader.
	if err := s.AddInheritance("editor", "reader"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInheritance("admin", "editor"); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantPermission("reader", "p-read"); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantPermission("editor", "p-write"); err != nil {
		t.Fatal(err)
	}
	ps := s.RolePermissions("admin")
	if len(ps) != 2 {
		t.Fatalf("admin should inherit two permissions, got %v", ps)
	}
	ps = s.RolePermissions("reader")
	if len(ps) != 1 {
		t.Fatalf("reader should have one permission, got %v", ps)
	}
}

func TestHierarchyCycleRejected(t *testing.T) {
	s := newSys(t)
	if err := s.AddInheritance("admin", "editor"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInheritance("editor", "reader"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddInheritance("reader", "admin"); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle accepted: %v", err)
	}
	if err := s.AddInheritance("admin", "admin"); !errors.Is(err, ErrCycle) {
		t.Fatalf("self-inheritance accepted: %v", err)
	}
	if err := s.AddInheritance("ghost", "reader"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown senior: %v", err)
	}
	if err := s.AddInheritance("admin", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown junior: %v", err)
	}
}

func TestStaticSoD(t *testing.T) {
	s := newSys(t)
	if err := s.AddSSD(SoD{Name: "no-auditor-editor", Roles: []RoleID{"auditor", "editor"}, Cardinality: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignUserRole("alice", "auditor"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignUserRole("alice", "editor"); !errors.Is(err, ErrSSD) {
		t.Fatalf("SSD not enforced: %v", err)
	}
	// Bob can still hold either one.
	if err := s.AssignUserRole("bob", "editor"); err != nil {
		t.Fatal(err)
	}
}

func TestAddSSDRejectsExistingViolation(t *testing.T) {
	s := newSys(t)
	if err := s.AssignUserRole("alice", "auditor"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignUserRole("alice", "editor"); err != nil {
		t.Fatal(err)
	}
	err := s.AddSSD(SoD{Name: "late", Roles: []RoleID{"auditor", "editor"}, Cardinality: 2})
	if !errors.Is(err, ErrSSD) {
		t.Fatalf("retroactive SSD accepted: %v", err)
	}
}

func TestSoDValidation(t *testing.T) {
	s := newSys(t)
	if err := s.AddSSD(SoD{Name: "bad", Roles: []RoleID{"a", "b"}, Cardinality: 1}); err == nil {
		t.Fatal("cardinality 1 accepted")
	}
	if err := s.AddDSD(SoD{Name: "vacuous", Roles: []RoleID{"a"}, Cardinality: 2}); err == nil {
		t.Fatal("vacuous constraint accepted")
	}
}

func TestSessionLifecycle(t *testing.T) {
	s := newSys(t)
	if err := s.AssignUserRole("alice", "auditor"); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantPermission("auditor", "p-read"); err != nil {
		t.Fatal(err)
	}
	sess, err := s.CreateSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	if sess.User() != "alice" || sess.ID() == 0 {
		t.Fatalf("session identity wrong: %v %v", sess.User(), sess.ID())
	}
	if _, err := s.CreateSession("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("session for unknown user: %v", err)
	}
	// No roles active yet: no permissions.
	if sess.CheckAccess(model.NewAccess("o", "read", "f1", "s1")) {
		t.Fatal("access granted without active role")
	}
	if err := sess.ActivateRole("auditor"); err != nil {
		t.Fatal(err)
	}
	if err := sess.ActivateRole("auditor"); err != nil {
		t.Fatal("re-activation should be idempotent")
	}
	if err := sess.ActivateRole("editor"); !errors.Is(err, ErrNotAuthorized) {
		t.Fatalf("unassigned role activated: %v", err)
	}
	if !sess.CheckAccess(model.NewAccess("o", "read", "f1", "s1")) {
		t.Fatal("covered access denied")
	}
	if sess.CheckAccess(model.NewAccess("o", "write", "f1", "s1")) {
		t.Fatal("uncovered access granted")
	}
	p, ok := sess.PermissionFor(model.NewAccess("o", "read", "f1", "s1"))
	if !ok || p.ID != "p-read" {
		t.Fatalf("PermissionFor = %v %v", p, ok)
	}
	sess.DeactivateRole("auditor")
	if sess.CheckAccess(model.NewAccess("o", "read", "f1", "s1")) {
		t.Fatal("access granted after deactivation")
	}
}

func TestSessionPermissionsWithHierarchy(t *testing.T) {
	s := newSys(t)
	if err := s.AddInheritance("admin", "reader"); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantPermission("reader", "p-read"); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantPermission("admin", "p-write"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignUserRole("alice", "admin"); err != nil {
		t.Fatal(err)
	}
	sess, _ := s.CreateSession("alice")
	if err := sess.ActivateRole("admin"); err != nil {
		t.Fatal(err)
	}
	if got := sess.Permissions(); len(got) != 2 {
		t.Fatalf("session permissions = %v", got)
	}
	roles := sess.ActiveRoles()
	if len(roles) != 1 || roles[0] != "admin" {
		t.Fatalf("ActiveRoles = %v", roles)
	}
}

func TestDynamicSoD(t *testing.T) {
	s := newSys(t)
	if err := s.AddDSD(SoD{Name: "not-both", Roles: []RoleID{"auditor", "editor"}, Cardinality: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignUserRole("alice", "auditor"); err != nil {
		t.Fatal(err)
	}
	if err := s.AssignUserRole("alice", "editor"); err != nil {
		t.Fatal(err)
	}
	sess, _ := s.CreateSession("alice")
	if err := sess.ActivateRole("auditor"); err != nil {
		t.Fatal(err)
	}
	if err := sess.ActivateRole("editor"); !errors.Is(err, ErrDSD) {
		t.Fatalf("DSD not enforced: %v", err)
	}
	// After deactivating, the other role is allowed.
	sess.DeactivateRole("auditor")
	if err := sess.ActivateRole("editor"); err != nil {
		t.Fatal(err)
	}
}

func TestDeassignDeactivatesInSessions(t *testing.T) {
	s := newSys(t)
	if err := s.AssignUserRole("alice", "auditor"); err != nil {
		t.Fatal(err)
	}
	if err := s.GrantPermission("auditor", "p-read"); err != nil {
		t.Fatal(err)
	}
	sess, _ := s.CreateSession("alice")
	if err := sess.ActivateRole("auditor"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeassignUserRole("alice", "auditor"); err != nil {
		t.Fatal(err)
	}
	if len(sess.ActiveRoles()) != 0 {
		t.Fatal("revoked role still active in session")
	}
}

func TestClosedSession(t *testing.T) {
	s := newSys(t)
	if err := s.AssignUserRole("alice", "auditor"); err != nil {
		t.Fatal(err)
	}
	sess, _ := s.CreateSession("alice")
	sess.Close()
	if err := sess.ActivateRole("auditor"); err == nil {
		t.Fatal("activation on closed session")
	}
	_, _, _, n := s.Stats()
	if n != 0 {
		t.Fatalf("closed session still registered: %d", n)
	}
}

func TestConcurrentSessions(t *testing.T) {
	s := newSys(t)
	for i := 0; i < 4; i++ {
		u := UserID(fmt.Sprintf("user%d", i))
		if err := s.AddUser(u); err != nil {
			t.Fatal(err)
		}
		if err := s.AssignUserRole(u, "reader"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.GrantPermission("reader", "p-read"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u := UserID(fmt.Sprintf("user%d", i))
			for j := 0; j < 100; j++ {
				sess, err := s.CreateSession(u)
				if err != nil {
					t.Error(err)
					return
				}
				if err := sess.ActivateRole("reader"); err != nil {
					t.Error(err)
					return
				}
				sess.CheckAccess(model.NewAccess(model.ObjectID(u), "read", "f1", "s1"))
				sess.Close()
			}
		}(i)
	}
	wg.Wait()
}

func TestStatsAndRoles(t *testing.T) {
	s := newSys(t)
	u, r, p, sess := s.Stats()
	if u != 2 || r != 4 || p != 4 || sess != 0 {
		t.Fatalf("Stats = %d %d %d %d", u, r, p, sess)
	}
	roles := s.Roles()
	if len(roles) != 4 || roles[0] != "admin" {
		t.Fatalf("Roles = %v", roles)
	}
	if !s.HasUser("alice") || s.HasUser("ghost") {
		t.Fatal("HasUser wrong")
	}
	if !s.HasRole("admin") || s.HasRole("ghost") {
		t.Fatal("HasRole wrong")
	}
	if _, err := s.Permission("p-read"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Permission("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown permission: %v", err)
	}
}
