package model

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAccess(t *testing.T) {
	a := NewAccess("agent1", OpRead, "f1", "s1")
	if a.Object != "agent1" || a.Op != OpRead || a.Resource != "f1" || a.Server != "s1" {
		t.Fatalf("NewAccess produced %+v", a)
	}
}

func TestAccessString(t *testing.T) {
	tests := []struct {
		a    Access
		want string
	}{
		{Access{Op: OpRead, Resource: "f1", Server: "s1"}, "read f1 @ s1"},
		{Access{Object: "o1", Op: OpWrite, Resource: "r2", Server: "s2"}, "o1: write r2 @ s2"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestWithObjectAndAnonymous(t *testing.T) {
	a := Access{Op: OpRead, Resource: "f1", Server: "s1"}
	b := a.WithObject("bot")
	if b.Object != "bot" {
		t.Fatalf("WithObject did not set object: %+v", b)
	}
	if a.Object != "" {
		t.Fatalf("WithObject mutated receiver: %+v", a)
	}
	if c := b.Anonymous(); c.Object != "" || c.Op != OpRead {
		t.Fatalf("Anonymous() = %+v", c)
	}
}

func TestAccessMatches(t *testing.T) {
	target := NewAccess("o1", OpRead, "f1", "s1")
	tests := []struct {
		name    string
		pattern Access
		want    bool
	}{
		{"empty pattern matches everything", Access{}, true},
		{"exact match", target, true},
		{"op only", Access{Op: OpRead}, true},
		{"wrong op", Access{Op: OpWrite}, false},
		{"resource+server", Access{Resource: "f1", Server: "s1"}, true},
		{"wrong server", Access{Server: "s9"}, false},
		{"wrong object", Access{Object: "o2"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.pattern.Matches(target); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAccessValidate(t *testing.T) {
	if err := (Access{Op: OpRead, Resource: "f1", Server: "s1"}).Validate(); err != nil {
		t.Fatalf("valid access rejected: %v", err)
	}
	err := (Access{Op: OpRead}).Validate()
	if err == nil {
		t.Fatal("access missing resource and server accepted")
	}
	if !strings.Contains(err.Error(), "resource") || !strings.Contains(err.Error(), "server") {
		t.Fatalf("error should name missing parts: %v", err)
	}
	if err := (Access{Resource: "r", Server: "s"}).Validate(); err == nil {
		t.Fatal("access missing operation accepted")
	}
}

func TestSelectorEmpty(t *testing.T) {
	if !(Selector{}).Empty() {
		t.Fatal("zero selector should be Empty")
	}
	if (Selector{Ops: []Operation{OpRead}}).Empty() {
		t.Fatal("selector with restriction should not be Empty")
	}
}

func TestSelectorSelectAccess(t *testing.T) {
	a := NewAccess("o1", OpRead, "rsw-licensed", "s1")
	tests := []struct {
		name string
		sel  Selector
		want bool
	}{
		{"empty selects all", Selector{}, true},
		{"matching resource alternative", Selector{Resources: []ResourceID{"rsw-licensed", "rsw-trial"}}, true},
		{"non-matching resource", Selector{Resources: []ResourceID{"other"}}, false},
		{"op and server", Selector{Ops: []Operation{OpRead}, Servers: []ServerID{"s1"}}, true},
		{"op matches server does not", Selector{Ops: []Operation{OpRead}, Servers: []ServerID{"s2"}}, false},
		{"object restriction", Selector{Objects: []ObjectID{"o1"}}, true},
		{"object mismatch", Selector{Objects: []ObjectID{"o2"}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.sel.SelectAccess(a); got != tt.want {
				t.Errorf("SelectAccess = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSelectorString(t *testing.T) {
	if got := (Selector{Name: "RSW"}).String(); got != "sigma:RSW" {
		t.Errorf("named selector String = %q", got)
	}
	if got := (Selector{}).String(); got != "sigma[*]" {
		t.Errorf("empty selector String = %q", got)
	}
	s := Selector{Ops: []Operation{OpRead, OpWrite}, Servers: []ServerID{"s1"}}
	got := s.String()
	if !strings.Contains(got, "op=read,write") || !strings.Contains(got, "s=s1") {
		t.Errorf("selector String = %q", got)
	}
}

// Property: an access always matches itself as a pattern, and the
// empty pattern matches every access.
func TestAccessMatchesReflexive(t *testing.T) {
	f := func(o, op, r, s string) bool {
		a := NewAccess(ObjectID(o), Operation(op), ResourceID(r), ServerID(s))
		return a.Matches(a) && (Access{}).Matches(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: WithObject then Anonymous is the identity on anonymous
// accesses.
func TestWithObjectAnonymousRoundTrip(t *testing.T) {
	f := func(o, op, r, s string) bool {
		a := Access{Op: Operation(op), Resource: ResourceID(r), Server: ServerID(s)}
		return a.WithObject(ObjectID(o)).Anonymous() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a selector listing exactly an access's components selects
// that access.
func TestSelectorSelectsOwnComponents(t *testing.T) {
	f := func(o, op, r, s string) bool {
		a := NewAccess(ObjectID(o), Operation(op), ResourceID(r), ServerID(s))
		sel := Selector{
			Objects:   []ObjectID{a.Object},
			Ops:       []Operation{a.Op},
			Resources: []ResourceID{a.Resource},
			Servers:   []ServerID{a.Server},
		}
		return sel.SelectAccess(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
