// Package model defines the syntactic sets of the coalition mobile
// computing system model (Section 2 of Fu & Xu, IPPS 2005).
//
// A coalition environment consists of a set of cooperating servers S
// that expose shared resources R on which operations OP may be
// exercised. A mobile object o roams across the servers; each shared
// resource access is the tuple a = (o, op, r, s), meaning mobile
// object o exercises operation op on resource r at server s. The
// remaining syntactic sets — channels Z, variables V, boolean
// expressions C and signals E — support the synchronisation and
// control constructs of the SRAL language and are defined here as
// identifier types so that every other package shares one vocabulary.
package model

import (
	"errors"
	"fmt"
	"strings"
)

// ServerID names a coalition server (an element of the set S).
type ServerID string

// ResourceID names a shared resource (an element of the set R).
type ResourceID string

// Operation names an operation on shared resources (an element of the
// set OP), such as "read", "write" or "execute".
type Operation string

// ObjectID names a mobile object (the roaming computation o). Cloned
// agents receive derived IDs (see the agent package) but share the
// coalition-wide access history of their family unless a policy says
// otherwise.
type ObjectID string

// ChannelID names a communication channel (an element of the set Z).
type ChannelID string

// VarID names a program variable (an element of the set V).
type VarID string

// SignalID names an order-synchronisation signal (an element of the
// set E); signal(ξ) must be performed before wait(ξ) may proceed.
type SignalID string

// Common operations used throughout the examples and tests. The model
// places no restriction on the operation vocabulary; these are the
// file-system style operations the paper mentions.
const (
	OpRead    Operation = "read"
	OpWrite   Operation = "write"
	OpExecute Operation = "execute"
)

// Access is the shared-resource access tuple a = (o, op, r, s): mobile
// object Object exercises operation Op on resource Resource at server
// Server. Access values are comparable and may be used as map keys.
type Access struct {
	Object   ObjectID
	Op       Operation
	Resource ResourceID
	Server   ServerID
}

// NewAccess constructs the access tuple (o, op, r, s).
func NewAccess(o ObjectID, op Operation, r ResourceID, s ServerID) Access {
	return Access{Object: o, Op: op, Resource: r, Server: s}
}

// String renders the access in the paper's "op r @ s" notation,
// prefixed with the mobile object when one is set.
func (a Access) String() string {
	if a.Object == "" {
		return fmt.Sprintf("%s %s @ %s", a.Op, a.Resource, a.Server)
	}
	return fmt.Sprintf("%s: %s %s @ %s", a.Object, a.Op, a.Resource, a.Server)
}

// WithObject returns a copy of the access attributed to object o.
// SRAL programs are written without the object component (the object
// is implied by whoever executes the program); the interpreter stamps
// the executing object onto each access before it is checked.
func (a Access) WithObject(o ObjectID) Access {
	a.Object = o
	return a
}

// Anonymous returns a copy of the access with the object component
// cleared. Constraints that should apply to any mobile object are
// written against anonymous accesses.
func (a Access) Anonymous() Access {
	a.Object = ""
	return a
}

// Matches reports whether access b matches a treated as a pattern:
// every non-empty component of a must equal the corresponding
// component of b. An all-empty pattern matches every access.
func (a Access) Matches(b Access) bool {
	if a.Object != "" && a.Object != b.Object {
		return false
	}
	if a.Op != "" && a.Op != b.Op {
		return false
	}
	if a.Resource != "" && a.Resource != b.Resource {
		return false
	}
	if a.Server != "" && a.Server != b.Server {
		return false
	}
	return true
}

// Validate reports an error when the access misses a mandatory
// component. The object component is optional (see WithObject).
func (a Access) Validate() error {
	var missing []string
	if a.Op == "" {
		missing = append(missing, "operation")
	}
	if a.Resource == "" {
		missing = append(missing, "resource")
	}
	if a.Server == "" {
		missing = append(missing, "server")
	}
	if len(missing) > 0 {
		return fmt.Errorf("access %v: missing %s", a, strings.Join(missing, ", "))
	}
	return nil
}

// ErrUnknownServer is returned by registries and routers when a server
// id does not name a live coalition member.
var ErrUnknownServer = errors.New("model: unknown coalition server")

// ErrUnknownResource is returned by servers when an access names a
// resource they do not host.
var ErrUnknownResource = errors.New("model: unknown shared resource")

// Selector is a predicate over accesses: the σ of the paper's
// #(m, n, σ(A)) counting constraint. A selector selects the subset of
// an access set (or trace) that meets its conditions.
//
// The zero Selector selects every access. Non-empty fields restrict by
// equality; the sets are alternatives (OR within a field, AND across
// fields). For example Selector{Resources: {"rsw-licensed","rsw-trial"}}
// is the σ_RSW of Example 3.5: it selects accesses to the restricted
// software package in either form, at any server, by any object.
type Selector struct {
	// Name labels the selector in diagnostics and policy files.
	Name string
	// Objects restricts to accesses by any of these mobile objects.
	Objects []ObjectID
	// Ops restricts to any of these operations.
	Ops []Operation
	// Resources restricts to any of these resources.
	Resources []ResourceID
	// Servers restricts to accesses performed at any of these servers.
	Servers []ServerID
}

// SelectAccess reports whether the selector selects access a.
func (sel Selector) SelectAccess(a Access) bool {
	if len(sel.Objects) > 0 && !containsID(sel.Objects, a.Object) {
		return false
	}
	if len(sel.Ops) > 0 && !containsID(sel.Ops, a.Op) {
		return false
	}
	if len(sel.Resources) > 0 && !containsID(sel.Resources, a.Resource) {
		return false
	}
	if len(sel.Servers) > 0 && !containsID(sel.Servers, a.Server) {
		return false
	}
	return true
}

// Empty reports whether the selector has no restrictions (selects all).
func (sel Selector) Empty() bool {
	return len(sel.Objects) == 0 && len(sel.Ops) == 0 &&
		len(sel.Resources) == 0 && len(sel.Servers) == 0
}

// String renders the selector in a compact σ-notation used by the
// SRAC printer, e.g. `sigma[op=read,write; r=f1; s=s1]`.
func (sel Selector) String() string {
	if sel.Name != "" {
		return "sigma:" + sel.Name
	}
	var parts []string
	if len(sel.Objects) > 0 {
		parts = append(parts, "o="+joinIDs(sel.Objects))
	}
	if len(sel.Ops) > 0 {
		parts = append(parts, "op="+joinIDs(sel.Ops))
	}
	if len(sel.Resources) > 0 {
		parts = append(parts, "r="+joinIDs(sel.Resources))
	}
	if len(sel.Servers) > 0 {
		parts = append(parts, "s="+joinIDs(sel.Servers))
	}
	if len(parts) == 0 {
		return "sigma[*]"
	}
	return "sigma[" + strings.Join(parts, "; ") + "]"
}

func containsID[T ~string](xs []T, x T) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func joinIDs[T ~string](xs []T) string {
	ss := make([]string, len(xs))
	for i, v := range xs {
		ss[i] = string(v)
	}
	return strings.Join(ss, ",")
}
