package agent

// Fault-tolerance tests for the remote runtime: the agent's tour must
// survive injected dial failures, connection resets and partial
// writes without losing proofs or double-consuming budgets.

import (
	"errors"
	"net"
	"testing"
	"time"

	"stac/internal/faults"
	"stac/internal/model"
	"stac/internal/server"
)

// faultyRuntime builds a RemoteRuntime whose client-side transport
// goes through the injector.
func faultyRuntime(addrs map[model.ServerID]string, in *faults.Injector) *RemoteRuntime {
	return &RemoteRuntime{
		Addrs:   addrs,
		Retries: 25,
		Backoff: time.Millisecond,
		Seed:    7,
		Dial:    in.Dialer(nil),
	}
}

func TestRemoteRuntimeRetriesDialFailures(t *testing.T) {
	c, _ := newCoalition(t)
	addrs := startTCP(t, c)
	in := faults.New(faults.Config{Seed: 1, DialFailProb: 1, MaxFaults: 4})
	rt := faultyRuntime(addrs, in)
	ag := newAgent(t, c, "o1", "read f-s1 @ s1; read f-s2 @ s2")
	if err := rt.Launch(ag); err != nil {
		t.Fatalf("tour under dial failures: %v", err)
	}
	if ag.Proofs.Len() != 2 {
		t.Fatalf("proofs = %d", ag.Proofs.Len())
	}
	if in.Stats().DialFailures == 0 {
		t.Fatal("no dial failures were actually injected")
	}
}

func TestRemoteRuntimeSurvivesConnectionResets(t *testing.T) {
	c, _ := newCoalition(t)
	addrs := startTCP(t, c)
	in := faults.New(faults.Config{
		Seed:           3,
		WriteResetProb: 0.4,
		ReadResetProb:  0.2,
		ChunkProb:      0.5,
		MaxFaults:      8,
	})
	rt := faultyRuntime(addrs, in)
	ag := newAgent(t, c, "o1", "read f-s1 @ s1; read f-s2 @ s2; read f-s3 @ s3")
	if err := rt.Launch(ag); err != nil {
		t.Fatalf("tour under resets: %v (stats %+v)", err, in.Stats())
	}
	// Exactly one proof per logical access despite retries.
	if ag.Proofs.Len() != 3 {
		t.Fatalf("proofs = %d (stats %+v)", ag.Proofs.Len(), in.Stats())
	}
	for _, p := range ag.Proofs.All() {
		if err := c.Signer.Verify(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRemoteRuntimeResetsDoNotDoubleConsumeBudget(t *testing.T) {
	// The rsw ceiling is 2 coalition-wide. Under heavy resets the
	// retried accesses must still consume exactly 2 units: replays
	// are idempotent, and the denial of the 3rd access is a genuine
	// engine verdict, not a retry artefact.
	c, _ := newCoalition(t)
	addrs := startTCP(t, c)
	in := faults.New(faults.Config{Seed: 11, WriteResetProb: 0.3, ReadResetProb: 0.3, MaxFaults: 10})
	rt := faultyRuntime(addrs, in)
	prog := `
		ch ! 3; ch ? x;
		while x > 0 do {
			if x == 3 then { read rsw @ s1 };
			if x == 2 then { read rsw @ s2 };
			if x == 1 then { read rsw @ s3 };
			ch ! x - 1; ch ? x
		}
	`
	ag := newAgent(t, c, "o1", prog)
	err := rt.Launch(ag)
	if err == nil {
		t.Fatal("3rd rsw access granted under faults")
	}
	if !errors.Is(err, server.ErrDenied) {
		t.Fatalf("tour error = %v, want a denial", err)
	}
	if ag.Proofs.Len() != 2 {
		t.Fatalf("proofs = %d, want exactly the ceiling of 2", ag.Proofs.Len())
	}
}

func TestRemoteRuntimeDeniedVerdictNotRetried(t *testing.T) {
	c, _ := newCoalition(t)
	addrs := startTCP(t, c)
	var dials int
	rt := &RemoteRuntime{
		Addrs:   addrs,
		Retries: 5,
		Backoff: time.Millisecond,
		Dial: func(addr string) (net.Conn, error) {
			dials++
			return net.Dial("tcp", addr)
		},
	}
	// Unknown resource: a server verdict, not a transport failure.
	ag := newAgent(t, c, "o1", "read no-such-file @ s1")
	if err := rt.Launch(ag); err == nil {
		t.Fatal("unknown resource granted")
	}
	if dials != 1 {
		t.Fatalf("dials = %d; a server verdict must not trigger reconnects", dials)
	}
}

func TestRemoteRuntimeGivesUpAfterRetryBudget(t *testing.T) {
	c, _ := newCoalition(t)
	// All dials fail, forever.
	in := faults.New(faults.Config{Seed: 5, DialFailProb: 1})
	rt := &RemoteRuntime{
		Addrs:   startTCP(t, c),
		Retries: 2,
		Backoff: time.Millisecond,
		Dial:    in.Dialer(nil),
	}
	ag := newAgent(t, c, "o1", "read f-s1 @ s1")
	err := rt.Launch(ag)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("exhausted retries = %v, want the underlying injected fault", err)
	}
	if got := in.Stats().DialFailures; got != 3 {
		t.Fatalf("dial attempts = %d, want initial + 2 retries", got)
	}
}
