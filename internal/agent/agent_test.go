package agent

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"stac/internal/core"
	"stac/internal/model"
	"stac/internal/server"
	"stac/internal/sral"
	"stac/internal/temporal"
)

var key = []byte("agent-test-key")

const roamPolicy = `
user o1
user o2
role traveler
permission p-read read * @ * {
    spatial count(0, 2, sigma[r=rsw])
}
permission p-exec execute * @ *
grant traveler p-read
grant traveler p-exec
assign o1 traveler
assign o2 traveler
`

func newCoalition(t *testing.T) (*server.Coalition, *temporal.SimClock) {
	t.Helper()
	clk := temporal.NewSimClock(0)
	c := server.NewCoalition(clk, key)
	if err := core.LoadPolicyString(c.Engine, roamPolicy); err != nil {
		t.Fatal(err)
	}
	for _, id := range []model.ServerID{"s1", "s2", "s3"} {
		srv, err := c.AddServer(id)
		if err != nil {
			t.Fatal(err)
		}
		srv.HostResource(model.ResourceID("f-"+id), []byte("data@"+id))
		srv.HostResource("rsw", []byte("restricted"))
	}
	return c, clk
}

func newAgent(t *testing.T, c *server.Coalition, id, prog string) *Agent {
	t.Helper()
	cred := c.Signer.IssueCredential(model.ObjectID(id), "owner@example", []string{"traveler"})
	return New(model.ObjectID(id), cred, sral.MustParse(prog), c.Signer)
}

func TestAgentRoamsPerProgram(t *testing.T) {
	c, _ := newCoalition(t)
	ag := newAgent(t, c, "o1", "read f-s1 @ s1; read f-s2 @ s2; read f-s3 @ s3")
	var accessed []string
	ag.Hooks.OnAccess = func(a model.Access, data []byte) {
		accessed = append(accessed, string(data))
	}
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	if !ag.Done() || ag.Err() != nil {
		t.Fatalf("agent state: done=%v err=%v", ag.Done(), ag.Err())
	}
	visited := ag.Visited()
	if len(visited) != 3 || visited[0] != "s1" || visited[2] != "s3" {
		t.Fatalf("visited = %v", visited)
	}
	if len(accessed) != 3 || accessed[0] != "data@s1" {
		t.Fatalf("accessed = %v", accessed)
	}
	if ag.Proofs.Len() != 3 {
		t.Fatalf("proofs = %d", ag.Proofs.Len())
	}
	// The proof trace reflects execution order.
	tr := ag.Proofs.Trace()
	if tr[0].Server != "s1" || tr[2].Server != "s3" {
		t.Fatalf("proof trace = %v", tr)
	}
	// Migrations: 3 arrivals.
	if c.Migrations() != 3 {
		t.Fatalf("migrations = %d", c.Migrations())
	}
}

func TestAgentLifecycleHooks(t *testing.T) {
	c, _ := newCoalition(t)
	ag := newAgent(t, c, "o1", "read f-s1 @ s1; read f-s2 @ s2")
	var events []string
	ag.Hooks.OnArrival = func(at model.ServerID) { events = append(events, "arrive:"+string(at)) }
	ag.Hooks.OnDeparture = func(from model.ServerID) { events = append(events, "depart:"+string(from)) }
	ag.Hooks.OnCompletion = func(err error) { events = append(events, "done") }
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	want := "arrive:s1,arrive:s2,depart:s2,done"
	// Departure from s1 happens on migration to s2.
	got := strings.Join(events, ",")
	if got != "arrive:s1,depart:s1,arrive:s2,depart:s2,done" && got != want {
		t.Fatalf("events = %v", events)
	}
}

func TestAgentStaticallyRejectedProgram(t *testing.T) {
	c, _ := newCoalition(t)
	// A straight-line program with 3 rsw reads can NEVER satisfy
	// count(0,2): the engine's check(P, C) rejects it at the very
	// first access, before any resource is touched.
	ag := newAgent(t, c, "o1", "read rsw @ s1; read rsw @ s2; read rsw @ s3; read f-s3 @ s3")
	err := Launch(c, ag)
	if !errors.Is(err, server.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	if ag.Proofs.Len() != 0 {
		t.Fatalf("statically rejected program performed %d accesses", ag.Proofs.Len())
	}
}

func TestAgentDeniedAtRuntimeCeiling(t *testing.T) {
	c, _ := newCoalition(t)
	// A loop is statically Mixed (it may run ≤ 2 times), so the
	// program is admitted; the runtime prefix check denies the 3rd
	// iteration's access.
	prog := `
		ch ! 3; ch ? x;
		while x > 0 do {
			read rsw @ s1;
			ch ! x - 1; ch ? x
		}
	`
	ag := newAgent(t, c, "o1", prog)
	err := Launch(c, ag)
	if !errors.Is(err, server.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	if ag.Proofs.Len() != 2 {
		t.Fatalf("proofs after runtime denial = %d", ag.Proofs.Len())
	}
	if !ag.Done() || ag.Err() == nil {
		t.Fatal("agent not marked failed")
	}
}

func TestAgentUnknownServer(t *testing.T) {
	c, _ := newCoalition(t)
	ag := newAgent(t, c, "o1", "read f @ nowhere")
	if err := Launch(c, ag); !errors.Is(err, model.ErrUnknownServer) {
		t.Fatalf("err = %v", err)
	}
}

func TestAgentValidation(t *testing.T) {
	c, _ := newCoalition(t)
	cred := c.Signer.IssueCredential("o1", "owner", []string{"traveler"})
	ag := New("o1", cred, nil, c.Signer)
	if err := Launch(c, ag); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("nil program: %v", err)
	}
	bad := New("o1", cred, sral.Seq{First: sral.Skip{}}, c.Signer)
	if err := Launch(c, bad); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestAgentConditionalsAndVars(t *testing.T) {
	c, _ := newCoalition(t)
	prog := `
		ch ! 5;
		ch ? x;
		if x > 3 then { read f-s1 @ s1 } else { read f-s2 @ s2 }
	`
	ag := newAgent(t, c, "o1", prog)
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	if ag.Vars().Get("x") != 5 {
		t.Fatalf("x = %d", ag.Vars().Get("x"))
	}
	visited := ag.Visited()
	if len(visited) != 1 || visited[0] != "s1" {
		t.Fatalf("visited = %v", visited)
	}
}

func TestAgentWhileLoop(t *testing.T) {
	c, _ := newCoalition(t)
	// Count down via channel self-sends: reads f-s1 three times.
	prog := `
		ch ! 3;
		ch ? x;
		while x > 0 do {
			read f-s1 @ s1;
			ch ! x - 1;
			ch ? x
		}
	`
	ag := newAgent(t, c, "o1", prog)
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	if ag.Proofs.Len() != 3 {
		t.Fatalf("loop accesses = %d", ag.Proofs.Len())
	}
}

func TestAgentParallelClones(t *testing.T) {
	c, _ := newCoalition(t)
	ag := newAgent(t, c, "o1", "read f-s1 @ s1 || read f-s2 @ s2 || read f-s3 @ s3")
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	if ag.Proofs.Len() != 3 {
		t.Fatalf("parallel proofs = %d", ag.Proofs.Len())
	}
	if len(ag.Visited()) != 3 {
		t.Fatalf("visited = %v", ag.Visited())
	}
}

func TestAgentParallelBranchFailurePropagates(t *testing.T) {
	c, _ := newCoalition(t)
	ag := newAgent(t, c, "o1", "read f-s1 @ s1 || read f @ nowhere")
	if err := Launch(c, ag); err == nil {
		t.Fatal("branch failure not propagated")
	}
}

func TestTwoAgentsSynchronise(t *testing.T) {
	c, _ := newCoalition(t)
	// o1 signals after its access; o2 waits for the signal before its
	// access: signal(ξ) must precede wait(ξ).
	a1 := newAgent(t, c, "o1", "read f-s1 @ s1; signal(done1)")
	a2 := newAgent(t, c, "o2", "wait(done1); read f-s2 @ s2")
	var wg sync.WaitGroup
	var order []string
	var mu sync.Mutex
	record := func(tag string) func(model.Access, []byte) {
		return func(model.Access, []byte) {
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
		}
	}
	a1.Hooks.OnAccess = record("a1")
	a2.Hooks.OnAccess = record("a2")
	wg.Add(2)
	go func() { defer wg.Done(); _ = Launch(c, a2) }()
	go func() { defer wg.Done(); _ = Launch(c, a1) }()
	wg.Wait()
	if a1.Err() != nil || a2.Err() != nil {
		t.Fatalf("errors: %v %v", a1.Err(), a2.Err())
	}
	if len(order) != 2 || order[0] != "a1" || order[1] != "a2" {
		t.Fatalf("order = %v", order)
	}
}

func TestAgentHomeServer(t *testing.T) {
	c, _ := newCoalition(t)
	ag := newAgent(t, c, "o1", "skip")
	ag.Home = "s2"
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	visited := ag.Visited()
	if len(visited) != 1 || visited[0] != "s2" {
		t.Fatalf("visited = %v", visited)
	}
}

func TestAgentString(t *testing.T) {
	c, _ := newCoalition(t)
	ag := newAgent(t, c, "o1", "read f-s1 @ s1")
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	s := ag.String()
	if !strings.Contains(s, "o1") || !strings.Contains(s, "1 proofs") {
		t.Fatalf("String = %q", s)
	}
}

func TestVarStore(t *testing.T) {
	v := NewVarStore()
	if _, ok := v.Lookup("x"); ok {
		t.Fatal("unbound var found")
	}
	if v.Get("x") != 0 {
		t.Fatal("unbound Get != 0")
	}
	v.Set("x", 7)
	if v.Get("x") != 7 {
		t.Fatal("Set/Get broken")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Set(model.VarID(rune('a'+i)), int64(j))
				v.Get(model.VarID(rune('a' + i)))
			}
		}(i)
	}
	wg.Wait()
}

// --- Patterns ---------------------------------------------------------

func TestAccessPatternBuild(t *testing.T) {
	p := AccessPattern{Op: "read", Res: "f1", Server: "s1"}
	n := p.Build()
	if _, ok := n.(sral.Prim); !ok {
		t.Fatalf("unguarded pattern = %T", n)
	}
	guarded := AccessPattern{Guard: CheckFunc(func() bool { return true }), Op: "read", Res: "f1", Server: "s1"}
	if _, ok := guarded.Build().(sral.If); !ok {
		t.Fatalf("guarded pattern = %T", guarded.Build())
	}
}

func TestSeqParLoopPatternBuild(t *testing.T) {
	a := AccessPattern{Op: "read", Res: "f1", Server: "s1"}
	b := AccessPattern{Op: "read", Res: "f2", Server: "s2"}
	if _, ok := (SeqPattern{a, b}).Build().(sral.Seq); !ok {
		t.Fatal("SeqPattern")
	}
	if _, ok := (ParPattern{a, b}).Build().(sral.Par); !ok {
		t.Fatal("ParPattern")
	}
	loop := LoopPattern{Cond: CheckFunc(func() bool { return false }), Body: a}
	if _, ok := loop.Build().(sral.While); !ok {
		t.Fatal("LoopPattern")
	}
	raw := Raw{Node: sral.Skip{}}
	if _, ok := raw.Build().(sral.Skip); !ok {
		t.Fatal("Raw")
	}
}

func TestGuardedPatternSkipsWhenGuardFalse(t *testing.T) {
	c, _ := newCoalition(t)
	pattern := SeqPattern{
		AccessPattern{Guard: CheckFunc(func() bool { return false }), Op: "read", Res: "f-s1", Server: "s1"},
		AccessPattern{Op: "read", Res: "f-s2", Server: "s2"},
	}
	cred := c.Signer.IssueCredential("o1", "owner", []string{"traveler"})
	ag := New("o1", cred, pattern.Build(), c.Signer)
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	if ag.Proofs.Len() != 1 {
		t.Fatalf("guarded access ran: %d proofs", ag.Proofs.Len())
	}
}

func TestShardedApplAgentProg(t *testing.T) {
	c, _ := newCoalition(t)
	// 6 accesses over 3 servers, k = 3 clones.
	var accesses []AccessPattern
	for _, s := range []model.ServerID{"s1", "s2", "s3"} {
		accesses = append(accesses,
			AccessPattern{Op: "read", Res: model.ResourceID("f-" + s), Server: s},
			AccessPattern{Op: "execute", Res: model.ResourceID("f-" + s), Server: s},
		)
	}
	collector := &Collector{}
	guard := CheckFunc(func() bool { return true })
	prog := Sharded(accesses, 3, guard, collector).Build()

	cred := c.Signer.IssueCredential("o1", "owner", []string{"traveler"})
	ag := New("o1", cred, prog, c.Signer)
	ag.Hooks.OnAccess = collector.Report
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	if got := len(collector.Reports()); got != 6 {
		t.Fatalf("reports = %d", got)
	}
	if ag.Proofs.Len() != 6 {
		t.Fatalf("proofs = %d", ag.Proofs.Len())
	}
}

func TestShardedEdgeCases(t *testing.T) {
	if _, ok := Sharded(nil, 3, nil, nil).Build().(sral.Skip); !ok {
		t.Fatal("empty access list")
	}
	one := []AccessPattern{{Op: "read", Res: "f", Server: "s1"}}
	// k larger than the list clamps.
	n := Sharded(one, 10, nil, nil).Build()
	if _, ok := n.(sral.Prim); !ok {
		t.Fatalf("k>len = %T", n)
	}
	// k <= 0 defaults to 1.
	n = Sharded(one, 0, nil, nil).Build()
	if _, ok := n.(sral.Prim); !ok {
		t.Fatalf("k=0 = %T", n)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	col := &Collector{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				col.Report(model.NewAccess("o", "read", "f", "s"), []byte{1})
			}
		}()
	}
	wg.Wait()
	if len(col.Reports()) != 400 {
		t.Fatalf("reports = %d", len(col.Reports()))
	}
}

func TestObserveFuncAndCheckFunc(t *testing.T) {
	called := false
	ObserveFunc(func(model.Access, []byte) { called = true }).Report(model.Access{}, nil)
	if !called {
		t.Fatal("ObserveFunc")
	}
	if !CheckFunc(func() bool { return true }).Check() {
		t.Fatal("CheckFunc")
	}
}

func TestAgentAbortWhileBlocked(t *testing.T) {
	c, _ := newCoalition(t)
	// The agent blocks forever on a channel no one sends to.
	ag := newAgent(t, c, "o1", "read f-s1 @ s1; never ? x; read f-s2 @ s2")
	done := make(chan error, 1)
	go func() { done <- Launch(c, ag) }()
	// Let it reach the blocking receive, then recall it.
	for i := 0; i < 200 && ag.Proofs.Len() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if ag.Aborted() {
		t.Fatal("agent aborted before Abort()")
	}
	ag.Abort()
	ag.Abort() // idempotent
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted agent finished without error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("aborted agent never returned")
	}
	if !ag.Aborted() || !ag.Done() {
		t.Fatal("abort state not recorded")
	}
	if ag.Proofs.Len() != 1 {
		t.Fatalf("proofs = %d", ag.Proofs.Len())
	}
}

func TestAgentAbortBeforeLaunch(t *testing.T) {
	c, _ := newCoalition(t)
	ag := newAgent(t, c, "o1", "read f-s1 @ s1; read f-s2 @ s2")
	ag.Abort()
	err := Launch(c, ag)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v", err)
	}
	if ag.Proofs.Len() != 0 {
		t.Fatal("pre-aborted agent performed accesses")
	}
}

func TestAgentAbortStopsParallelBranches(t *testing.T) {
	c, _ := newCoalition(t)
	// Both branches block on waits; abort must release both.
	ag := newAgent(t, c, "o1", "wait(never1) || wait(never2)")
	done := make(chan error, 1)
	go func() { done <- Launch(c, ag) }()
	time.Sleep(20 * time.Millisecond)
	ag.Abort()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted parallel agent finished cleanly")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("aborted parallel agent hung")
	}
}

func TestAgentStepBudget(t *testing.T) {
	c, _ := newCoalition(t)
	// An intentionally unbounded loop: 0 < 1 forever.
	ag := newAgent(t, c, "o1", "while 0 < 1 do { ch ! 1; ch ? x }")
	ag.MaxSteps = 500
	err := Launch(c, ag)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v", err)
	}
	if ag.Steps() <= 500 {
		t.Fatalf("steps = %d", ag.Steps())
	}
	// Unlimited by default: a bounded program is unaffected.
	ag2 := newAgent(t, c, "o1", "read f-s1 @ s1")
	if err := Launch(c, ag2); err != nil {
		t.Fatal(err)
	}
	if ag2.Steps() != 0 {
		t.Fatalf("unbudgeted agent counted steps: %d", ag2.Steps())
	}
}
