package agent

import (
	"errors"
	"testing"
	"time"

	"stac/internal/model"
	"stac/internal/server"
)

// startTCP exposes every coalition server over TCP and returns the
// address map a RemoteRuntime needs.
func startTCP(t *testing.T, c *server.Coalition) map[model.ServerID]string {
	t.Helper()
	addrs := make(map[model.ServerID]string)
	for _, s := range c.Servers() {
		d := server.NewDaemon(s)
		addr, err := d.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = d.Close() })
		addrs[s.ID()] = addr
	}
	return addrs
}

func TestRemoteRuntimeRoams(t *testing.T) {
	c, _ := newCoalition(t)
	rt := &RemoteRuntime{Addrs: startTCP(t, c)}
	ag := newAgent(t, c, "o1", "read f-s1 @ s1; read f-s2 @ s2; read f-s3 @ s3")
	var data []string
	ag.Hooks.OnAccess = func(a model.Access, d []byte) { data = append(data, string(d)) }
	if err := rt.Launch(ag); err != nil {
		t.Fatal(err)
	}
	if ag.Proofs.Len() != 3 {
		t.Fatalf("proofs = %d", ag.Proofs.Len())
	}
	if len(data) != 3 || data[0] != "data@s1" || data[2] != "data@s3" {
		t.Fatalf("data = %v", data)
	}
	if got := ag.Visited(); len(got) != 3 || got[0] != "s1" {
		t.Fatalf("visited = %v", got)
	}
	// Every carried proof verifies under the coalition key.
	for _, p := range ag.Proofs.All() {
		if err := c.Signer.Verify(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRemoteRuntimeEnforcesCeilingAcrossConnections(t *testing.T) {
	c, _ := newCoalition(t)
	rt := &RemoteRuntime{Addrs: startTCP(t, c)}
	// 3rd rsw access must be denied at a server the device never
	// visited, because the carried proofs travel over the wire. A
	// loop keeps the program statically admissible.
	prog := `
		ch ! 3; ch ? x;
		while x > 0 do {
			if x == 3 then { read rsw @ s1 };
			if x == 2 then { read rsw @ s2 };
			if x == 1 then { read rsw @ s3 };
			ch ! x - 1; ch ? x
		}
	`
	ag := newAgent(t, c, "o1", prog)
	err := rt.Launch(ag)
	if err == nil {
		t.Fatal("3rd rsw access granted over TCP")
	}
	if ag.Proofs.Len() != 2 {
		t.Fatalf("proofs = %d", ag.Proofs.Len())
	}
}

func TestRemoteRuntimeStaticCheckOverWire(t *testing.T) {
	c, _ := newCoalition(t)
	rt := &RemoteRuntime{Addrs: startTCP(t, c)}
	// The program text travels with each request; the straight-line
	// 3×rsw program is rejected before any access.
	ag := newAgent(t, c, "o1", "read rsw @ s1; read rsw @ s1; read rsw @ s1")
	if err := rt.Launch(ag); err == nil {
		t.Fatal("statically invalid program accepted over TCP")
	}
	if ag.Proofs.Len() != 0 {
		t.Fatalf("proofs = %d", ag.Proofs.Len())
	}
}

func TestRemoteRuntimeParallelBranches(t *testing.T) {
	c, _ := newCoalition(t)
	rt := &RemoteRuntime{Addrs: startTCP(t, c)}
	ag := newAgent(t, c, "o1", "read f-s1 @ s1 || read f-s2 @ s2")
	if err := rt.Launch(ag); err != nil {
		t.Fatal(err)
	}
	if ag.Proofs.Len() != 2 {
		t.Fatalf("proofs = %d", ag.Proofs.Len())
	}
}

func TestRemoteRuntimeChannelsAndSignals(t *testing.T) {
	c, _ := newCoalition(t)
	rt := &RemoteRuntime{Addrs: startTCP(t, c)}
	prog := `
		{ ch ! 7; wait(done) } || { ch ? x; read f-s1 @ s1; signal(done) }
	`
	ag := newAgent(t, c, "o1", prog)
	if err := rt.Launch(ag); err != nil {
		t.Fatal(err)
	}
	if ag.Vars().Get("x") != 7 {
		t.Fatalf("x = %d", ag.Vars().Get("x"))
	}
}

func TestRemoteRuntimeErrors(t *testing.T) {
	c, _ := newCoalition(t)
	rt := &RemoteRuntime{Addrs: startTCP(t, c)}
	cred := c.Signer.IssueCredential("o1", "owner", []string{"traveler"})
	// No program.
	ag := New("o1", cred, nil, c.Signer)
	if err := rt.Launch(ag); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("nil program: %v", err)
	}
	// Unknown server address.
	ag2 := newAgent(t, c, "o1", "read f @ nowhere")
	if err := rt.Launch(ag2); !errors.Is(err, model.ErrUnknownServer) {
		t.Fatalf("unknown server: %v", err)
	}
	// Unreachable address.
	rtBad := &RemoteRuntime{Addrs: map[model.ServerID]string{"s1": "127.0.0.1:1"}}
	ag3 := newAgent(t, c, "o1", "read f-s1 @ s1")
	if err := rtBad.Launch(ag3); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

func TestRemoteRuntimeAbort(t *testing.T) {
	c, _ := newCoalition(t)
	rt := &RemoteRuntime{Addrs: startTCP(t, c)}
	ag := newAgent(t, c, "o1", "read f-s1 @ s1; never ? x")
	done := make(chan error, 1)
	go func() { done <- rt.Launch(ag) }()
	for i := 0; i < 200 && ag.Proofs.Len() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	ag.Abort()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("aborted remote agent finished cleanly")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("aborted remote agent hung")
	}
}
