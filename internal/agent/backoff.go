package agent

import (
	"math/rand"
	"sync"
	"time"
)

// Backoff is the coalition-standard retry delay policy: jittered
// exponential backoff, doubling from Base per attempt up to a cap,
// with ±50% deterministic jitter so concurrent retriers decorrelate
// without losing reproducibility. It is the policy RemoteRuntime uses
// between migration and access retries; stream followers (stacctl
// watch/top/timeline) reuse it for reconnects so the whole toolchain
// hammers a recovering daemon the same gentle way.
//
// The zero value is ready to use: Base defaults to 5ms, Cap to
// 100×Base, Seed to 1. Safe for concurrent use.
type Backoff struct {
	// Base is the delay before the first retry (default 5ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 100×Base).
	Cap time.Duration
	// Seed drives the jitter (default 1), keeping retry schedules
	// reproducible.
	Seed int64

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

// Delay returns the jittered delay before retry attempt (1-based).
func (b *Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 100 * base
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	b.once.Do(func() {
		seed := b.Seed
		if seed == 0 {
			seed = 1
		}
		b.rng = rand.New(rand.NewSource(seed))
	})
	b.mu.Lock()
	jitter := b.rng.Float64()
	b.mu.Unlock()
	// ±50% jitter decorrelates concurrent branches retrying together.
	return time.Duration(float64(d) * (0.5 + jitter))
}
