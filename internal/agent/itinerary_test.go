package agent

import (
	"testing"

	"stac/internal/model"
	"stac/internal/registry"
	"stac/internal/sral"
)

func TestVisitCompile(t *testing.T) {
	n := Visit("s1").Compile(ReadTask("f1"))
	p, ok := n.(sral.Prim)
	if !ok || p.Server != "s1" || p.Resource != "f1" {
		t.Fatalf("compiled %v", n)
	}
	if _, ok := Visit("s1").Compile(nil).(sral.Skip); !ok {
		t.Fatal("nil task should compile to Skip")
	}
	nilTask := func(model.ServerID) sral.Node { return nil }
	if _, ok := Visit("s1").Compile(nilTask).(sral.Skip); !ok {
		t.Fatal("nil task result should compile to Skip")
	}
	stops := Visit("s1").Stops()
	if len(stops) != 1 || stops[0] != "s1" {
		t.Fatalf("stops = %v", stops)
	}
}

func TestRouteAndSplitCompile(t *testing.T) {
	r := Route{Visit("s1"), Visit("s2"), Visit("s1")}
	n := r.Compile(ReadTask("f"))
	if _, ok := n.(sral.Seq); !ok {
		t.Fatalf("route compiled to %T", n)
	}
	stops := r.Stops()
	if len(stops) != 2 || stops[0] != "s1" || stops[1] != "s2" {
		t.Fatalf("route stops = %v", stops)
	}
	s := Split{Visit("s1"), Visit("s2")}
	if _, ok := s.Compile(ReadTask("f")).(sral.Par); !ok {
		t.Fatal("split should compile to Par")
	}
	if len(s.Stops()) != 2 {
		t.Fatalf("split stops = %v", s.Stops())
	}
}

func TestAlternativeCompile(t *testing.T) {
	alt := Alternative{
		Options: []Itinerary{Visit("replica-1"), Visit("replica-2"), Visit("replica-3")},
		Choose:  func(n int) int { return 1 },
	}
	n := alt.Compile(ReadTask("f"))
	iff, ok := n.(sral.If)
	if !ok {
		t.Fatalf("alternative compiled to %T", n)
	}
	// Statically, all three options are reachable branches.
	servers := sral.Servers(iff)
	if len(servers) != 3 {
		t.Fatalf("servers = %v", servers)
	}
	// At run time the chooser selects option 1.
	if iff.Cond.EvalCond(nil) {
		t.Fatal("option 0 guard should be false when chooser picks 1")
	}
	inner := iff.Else.(sral.If)
	if !inner.Cond.EvalCond(nil) {
		t.Fatal("option 1 guard should be true")
	}
	// Empty and nil-chooser cases.
	if _, ok := (Alternative{}).Compile(ReadTask("f")).(sral.Skip); !ok {
		t.Fatal("empty alternative should be Skip")
	}
	first := Alternative{Options: []Itinerary{Visit("a"), Visit("b")}}
	fi := first.Compile(ReadTask("f")).(sral.If)
	if !fi.Cond.EvalCond(nil) {
		t.Fatal("nil chooser should select the first option")
	}
	// Out-of-range chooser falls back to the first option.
	oob := Alternative{Options: []Itinerary{Visit("a"), Visit("b")}, Choose: func(int) int { return 99 }}
	oi := oob.Compile(ReadTask("f")).(sral.If)
	if !oi.Cond.EvalCond(nil) {
		t.Fatal("out-of-range chooser should select option 0")
	}
}

func TestCycleCompile(t *testing.T) {
	remaining := 2
	c := Cycle{
		While: CheckFunc(func() bool { remaining--; return remaining >= 0 }),
		Body:  Visit("s1"),
	}
	n := c.Compile(ReadTask("f"))
	w, ok := n.(sral.While)
	if !ok {
		t.Fatalf("cycle compiled to %T", n)
	}
	if !w.Cond.EvalCond(nil) || !w.Cond.EvalCond(nil) || w.Cond.EvalCond(nil) {
		t.Fatal("cycle condition sequence wrong")
	}
	if len(c.Stops()) != 1 {
		t.Fatalf("cycle stops = %v", c.Stops())
	}
	// nil While is fail-safe false.
	safe := Cycle{Body: Visit("s1")}
	if safe.Compile(ReadTask("f")).(sral.While).Cond.EvalCond(nil) {
		t.Fatal("nil cycle condition should be false")
	}
}

func TestItineraryDrivesAgent(t *testing.T) {
	c, _ := newCoalition(t)
	it := Route{
		Visit("s1"),
		Split{Visit("s2"), Visit("s3")},
	}
	task := func(at model.ServerID) sral.Node {
		return sral.Prim{Op: model.OpRead, Resource: model.ResourceID("f-" + at), Server: at}
	}
	cred := c.Signer.IssueCredential("o1", "owner", []string{"traveler"})
	ag := New("o1", cred, it.Compile(task), c.Signer)
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	if ag.Proofs.Len() != 3 {
		t.Fatalf("proofs = %d", ag.Proofs.Len())
	}
	if got := ag.Visited(); len(got) != 3 || got[0] != "s1" {
		t.Fatalf("visited = %v", got)
	}
}

func TestPlanVisits(t *testing.T) {
	reg := registry.New()
	if err := reg.Register(registry.Entry{Server: "s1", Resources: []model.ResourceID{"a", "c"}}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(registry.Entry{Server: "s2", Resources: []model.ResourceID{"b"}}); err != nil {
		t.Fatal(err)
	}
	route, task, err := PlanVisits(reg, []model.ResourceID{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	// Two stops: c is grouped onto s1's visit (data locality).
	if len(route) != 2 {
		t.Fatalf("route = %v", route)
	}
	prog := route.Compile(task)
	accs := sral.Accesses(prog)
	if len(accs) != 3 {
		t.Fatalf("accesses = %v", accs)
	}
	// Unhosted resources are an error.
	if _, _, err := PlanVisits(reg, []model.ResourceID{"ghost"}); err == nil {
		t.Fatal("unhosted resource accepted")
	}
}

func TestPlanVisitsEndToEnd(t *testing.T) {
	c, _ := newCoalition(t)
	route, task, err := PlanVisits(c.Registry, []model.ResourceID{"f-s1", "f-s2", "f-s3", "rsw"})
	if err != nil {
		t.Fatal(err)
	}
	cred := c.Signer.IssueCredential("o1", "owner", []string{"traveler"})
	ag := New("o1", cred, route.Compile(task), c.Signer)
	if err := Launch(c, ag); err != nil {
		t.Fatal(err)
	}
	if ag.Proofs.Len() != 4 {
		t.Fatalf("proofs = %d", ag.Proofs.Len())
	}
}
