package agent

import (
	"fmt"
	"sync"

	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/server"
	"stac/internal/sral"
)

// branch is one execution context of an agent: parallel composition
// forks branches that share the agent (proof store, variables,
// credential) but hold their own location and subject — the cloned
// naplets of the ApplAgentProg example.
type branch struct {
	coalition *server.Coalition
	agent     *Agent
	// tc is the branch's trace context (child of the itinerary root);
	// Par clones inherit it, so forks stay within one trace.
	tc obs.TraceContext

	// loc is the server the branch currently resides at; nil subject
	// means not authenticated anywhere yet.
	loc     model.ServerID
	subject *server.Subject
	srv     *server.Server

	cancel chan struct{}
}

// moveTo migrates the branch to server s: depart from the current
// server (if any), then authenticate at the destination. Moving to
// the current location is a no-op.
func (b *branch) moveTo(s model.ServerID) error {
	if b.loc == s && b.subject != nil {
		return nil
	}
	b.leave()
	srv, err := b.coalition.Server(s)
	if err != nil {
		return err
	}
	sub, err := srv.Authenticate(b.agent.Credential)
	if err != nil {
		return fmt.Errorf("agent %s: arrival at %s: %w", b.agent.ID, s, err)
	}
	b.loc = s
	b.subject = sub
	b.srv = srv
	b.agent.recordVisit(s)
	if b.agent.Hooks.OnArrival != nil {
		b.agent.Hooks.OnArrival(s)
	}
	return nil
}

// leave departs from the current server, closing the subject.
func (b *branch) leave() {
	if b.subject == nil {
		return
	}
	if b.agent.Hooks.OnDeparture != nil {
		b.agent.Hooks.OnDeparture(b.loc)
	}
	b.srv.Depart(b.subject)
	b.subject = nil
	b.srv = nil
}

// exec interprets an SRAL program fragment in this branch.
func (b *branch) exec(n sral.Node) error {
	select {
	case <-b.cancel:
		return fmt.Errorf("agent %s: %w", b.agent.ID, ErrAborted)
	default:
	}
	if err := b.agent.chargeStep(); err != nil {
		return fmt.Errorf("agent %s: %w", b.agent.ID, err)
	}
	switch x := n.(type) {
	case sral.Skip:
		return nil

	case sral.Prim:
		if err := b.moveTo(x.Server); err != nil {
			return err
		}
		res, err := b.srv.Request(b.subject, x.Op, x.Resource, server.RequestContext{
			Program: b.agent.Program,
			Store:   b.agent.Proofs,
			Trace:   b.tc,
		})
		if err != nil {
			return fmt.Errorf("agent %s: %s %s @ %s: %w", b.agent.ID, x.Op, x.Resource, x.Server, err)
		}
		if b.agent.Hooks.OnAccess != nil {
			b.agent.Hooks.OnAccess(res.Proof.Access, res.Data)
		}
		return nil

	case sral.Recv:
		v, err := b.coalition.Hub.Channel(x.Ch).Recv(b.cancel)
		if err != nil {
			return fmt.Errorf("agent %s: %s?%s: %w", b.agent.ID, x.Ch, x.Var, err)
		}
		b.agent.vars.Set(x.Var, v)
		return nil

	case sral.Send:
		b.coalition.Hub.Channel(x.Ch).Send(x.Expr.EvalExpr(b.agent.vars))
		return nil

	case sral.Signal:
		b.coalition.Hub.Signals().Signal(x.Sig)
		return nil

	case sral.Wait:
		if err := b.coalition.Hub.Signals().Wait(x.Sig, b.cancel); err != nil {
			return fmt.Errorf("agent %s: wait(%s): %w", b.agent.ID, x.Sig, err)
		}
		return nil

	case sral.Seq:
		if err := b.exec(x.First); err != nil {
			return err
		}
		return b.exec(x.Second)

	case sral.If:
		if x.Cond.EvalCond(b.agent.vars) {
			return b.exec(x.Then)
		}
		return b.exec(x.Else)

	case sral.While:
		for x.Cond.EvalCond(b.agent.vars) {
			if err := b.exec(x.Body); err != nil {
				return err
			}
		}
		return nil

	case sral.Par:
		// Fork a clone branch for the right side; both sides share the
		// agent but roam independently. The left side continues in
		// this branch so its final location is the branch's location.
		clone := &branch{coalition: b.coalition, agent: b.agent, cancel: b.cancel, tc: b.tc}
		// The clone starts co-located with its parent; snapshot the
		// location before forking, since the parent keeps roaming.
		origin := b.loc
		var wg sync.WaitGroup
		var rightErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			if origin != "" {
				if err := clone.moveTo(origin); err != nil {
					rightErr = err
					return
				}
			}
			rightErr = clone.exec(x.Right)
			clone.leave()
		}()
		leftErr := b.exec(x.Left)
		wg.Wait()
		if leftErr != nil {
			return leftErr
		}
		return rightErr

	case nil:
		return nil
	}
	return fmt.Errorf("agent %s: unknown construct %T", b.agent.ID, n)
}
