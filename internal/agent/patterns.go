package agent

import (
	"sync"

	"stac/internal/model"
	"stac/internal/sral"
)

// This file provides the recursively constructed resource access
// patterns of Section 5.2. The base is a Singleton pattern — a single
// shared-resource access at a server guarded by a pre-condition — and
// over the set of access patterns three composite operators are
// defined: SeqPattern, ParPattern and LoopPattern, forming resource
// accesses of regular trace models. Patterns compile to SRAL programs
// (Build), so everything the engine can check statically applies to
// them.

// Checkable is a guard object evaluated before a guarded access runs —
// the paper's Checkable (e.g. ResultVerify). Implementations must be
// safe for concurrent use when used under ParPattern.
type Checkable interface {
	// Check reports whether the guarded access may proceed.
	Check() bool
}

// CheckFunc adapts a function to Checkable.
type CheckFunc func() bool

// Check implements Checkable.
func (f CheckFunc) Check() bool { return f() }

// Observable receives the results the agent reports — the paper's
// Observable (e.g. ResultReport); naplets report their results to
// home at the end of their execution.
type Observable interface {
	// Report delivers one observation.
	Report(a model.Access, data []byte)
}

// ObserveFunc adapts a function to Observable.
type ObserveFunc func(a model.Access, data []byte)

// Report implements Observable.
func (f ObserveFunc) Report(a model.Access, data []byte) { f(a, data) }

// Collector is an Observable that accumulates reports, safe for
// concurrent use.
type Collector struct {
	mu      sync.Mutex
	reports []Reported
}

// Reported is one collected observation.
type Reported struct {
	Access model.Access
	Data   []byte
}

// Report implements Observable.
func (c *Collector) Report(a model.Access, data []byte) {
	c.mu.Lock()
	c.reports = append(c.reports, Reported{Access: a, Data: append([]byte(nil), data...)})
	c.mu.Unlock()
}

// Reports returns the collected observations in arrival order.
func (c *Collector) Reports() []Reported {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Reported(nil), c.reports...)
}

// Pattern is a recursively constructed resource access pattern.
type Pattern interface {
	// Build compiles the pattern to an SRAL program.
	Build() sral.Node
}

// AccessPattern is the Singleton base: one access guarded by an
// optional pre-condition.
type AccessPattern struct {
	Guard  Checkable
	Op     model.Operation
	Res    model.ResourceID
	Server model.ServerID
}

// Build implements Pattern. A guarded access compiles to
// "if guard then access"; an unguarded one to the bare access.
func (p AccessPattern) Build() sral.Node {
	prim := sral.Prim{Op: p.Op, Resource: p.Res, Server: p.Server}
	if p.Guard == nil {
		return prim
	}
	return sral.IfThen(sral.Guard("pattern-guard", p.Guard.Check), prim)
}

// SeqPattern is the sequential composition p1; p2; ...; pn.
type SeqPattern []Pattern

// Build implements Pattern.
func (ps SeqPattern) Build() sral.Node {
	nodes := make([]sral.Node, len(ps))
	for i, p := range ps {
		nodes[i] = p.Build()
	}
	return sral.SeqOf(nodes...)
}

// ParPattern is the concurrent composition p1 || p2 || ... || pn —
// each operand runs in a cloned execution branch.
type ParPattern []Pattern

// Build implements Pattern.
func (ps ParPattern) Build() sral.Node {
	nodes := make([]sral.Node, len(ps))
	for i, p := range ps {
		nodes[i] = p.Build()
	}
	return sral.ParOf(nodes...)
}

// LoopPattern repeats a body pattern while a pre-condition holds.
type LoopPattern struct {
	Cond Checkable
	Body Pattern
}

// Build implements Pattern.
func (p LoopPattern) Build() sral.Node {
	return sral.Loop(sral.Guard("loop-guard", p.Cond.Check), p.Body.Build())
}

// Raw wraps an existing SRAL node as a Pattern, for mixing hand-built
// program fragments into pattern compositions.
type Raw struct{ Node sral.Node }

// Build implements Pattern.
func (r Raw) Build() sral.Node { return r.Node }

// Sharded builds the ApplAgentProg of Section 5.2: the access list is
// split into k equal shares, each share becoming a sequential pattern
// of guarded accesses, and the k shares run in parallel (k cloned
// naplets). Each access runs the guard first and reports through the
// observable. When k does not divide the list, the last share takes
// the remainder.
func Sharded(accesses []AccessPattern, k int, guard Checkable, report Observable) Pattern {
	if k <= 0 {
		k = 1
	}
	if k > len(accesses) {
		k = len(accesses)
	}
	if k == 0 {
		return Raw{Node: sral.Skip{}}
	}
	share := len(accesses) / k
	var clones ParPattern
	for i := 0; i < k; i++ {
		lo := i * share
		hi := lo + share
		if i == k-1 {
			hi = len(accesses)
		}
		var seq SeqPattern
		for _, a := range accesses[lo:hi] {
			a.Guard = guard
			seq = append(seq, a)
		}
		clones = append(clones, seq)
	}
	_ = report // reporting is wired through the agent's OnAccess hook
	return clones
}
