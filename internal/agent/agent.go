// Package agent implements the mobile-object runtime of the emulation
// — the Naplet stand-in of Section 5.
//
// An Agent carries an owner credential, an SRAL program, a proof
// store and a variable store. Launched into a coalition, it roams:
// whenever its program's next shared-resource access names a server
// other than the one it is at, the agent departs (closing its subject,
// pausing temporal accumulation), migrates, authenticates at the new
// server (creating a subject, activating its credential roles,
// resetting per-server budgets) and continues. Parallel composition
// forks cloned execution branches — the "k cloned naplets" of the
// ApplAgentProg example — that share the agent's proof store and
// variables but roam independently.
//
// Lifecycle hooks mirror the Naplet object's application-specific
// functions: OnArrival, OnAccess, OnDeparture and OnCompletion.
package agent

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/proof"
	"stac/internal/server"
	"stac/internal/sral"
)

// Hooks are the application-specific lifecycle callbacks of an agent.
// All are optional; they run synchronously in the agent's execution
// branch.
type Hooks struct {
	// OnArrival runs after successful authentication at a server.
	OnArrival func(at model.ServerID)
	// OnAccess runs after each granted access with the result data.
	OnAccess func(a model.Access, data []byte)
	// OnDeparture runs before the agent leaves a server.
	OnDeparture func(from model.ServerID)
	// OnCompletion runs once when the whole program finishes
	// (successfully or not).
	OnCompletion func(err error)
}

// Agent is a mobile object executing an SRAL program in a coalition.
type Agent struct {
	ID         model.ObjectID
	Credential proof.Credential
	Program    sral.Node
	// Home is the server where execution starts; when empty, the
	// first access's server is used.
	Home model.ServerID
	// Proofs is the agent's execution-proof store; it migrates with
	// the agent and supplies the cross-server history.
	Proofs *proof.Store
	Hooks  Hooks
	// MaxSteps bounds the number of interpreter steps across all
	// branches (0 means unlimited). SRAL loops are governed by
	// ordinary program conditions, so a confined execution environment
	// — the paper's Naplet servers confine agents — needs a budget
	// against runaway programs.
	MaxSteps int64

	steps int64

	vars *VarStore

	abort     chan struct{}
	abortOnce sync.Once

	mu      sync.Mutex
	visited []model.ServerID
	err     error
	done    bool
}

// New creates an agent with a fresh proof store verified against the
// coalition signer.
func New(id model.ObjectID, cred proof.Credential, program sral.Node, signer *proof.Signer) *Agent {
	return &Agent{
		ID:         id,
		Credential: cred,
		Program:    program,
		Proofs:     proof.NewStore(signer),
		vars:       NewVarStore(),
		abort:      make(chan struct{}),
	}
}

// Abort recalls the agent: every execution branch stops at its next
// step, blocked channel receives and signal waits return
// ErrCancelled, and the run completes with ErrAborted. Abort is
// idempotent and safe to call from any goroutine.
func (ag *Agent) Abort() {
	ag.abortOnce.Do(func() { close(ag.abort) })
}

// Aborted reports whether the agent has been recalled.
func (ag *Agent) Aborted() bool {
	select {
	case <-ag.abort:
		return true
	default:
		return false
	}
}

// ErrAborted is the terminal error of a recalled agent.
var ErrAborted = errors.New("agent: aborted")

// ErrStepBudget is returned when an agent exceeds its MaxSteps budget.
var ErrStepBudget = errors.New("agent: step budget exhausted")

// chargeStep counts one interpreter step against the budget.
func (ag *Agent) chargeStep() error {
	if ag.MaxSteps <= 0 {
		return nil
	}
	if atomic.AddInt64(&ag.steps, 1) > ag.MaxSteps {
		return ErrStepBudget
	}
	return nil
}

// Steps returns the number of interpreter steps consumed so far.
func (ag *Agent) Steps() int64 { return atomic.LoadInt64(&ag.steps) }

// Vars returns the agent's shared variable store.
func (ag *Agent) Vars() *VarStore { return ag.vars }

// Visited returns the servers visited, in first-arrival order across
// all branches.
func (ag *Agent) Visited() []model.ServerID {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	return append([]model.ServerID(nil), ag.visited...)
}

func (ag *Agent) recordVisit(s model.ServerID) {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	for _, v := range ag.visited {
		if v == s {
			return
		}
	}
	ag.visited = append(ag.visited, s)
}

// Err returns the terminal error of a completed run, if any.
func (ag *Agent) Err() error {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	return ag.err
}

// Done reports whether the agent's run has completed.
func (ag *Agent) Done() bool {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	return ag.done
}

func (ag *Agent) finish(err error) {
	ag.mu.Lock()
	ag.done = true
	ag.err = err
	ag.mu.Unlock()
	if ag.Hooks.OnCompletion != nil {
		ag.Hooks.OnCompletion(err)
	}
}

// ErrNoProgram is returned when launching an agent without a program.
var ErrNoProgram = errors.New("agent: no program")

// Launch runs the agent to completion inside the coalition,
// interpreting its SRAL program and migrating between servers as the
// program's accesses require. It is synchronous; run it in a
// goroutine for concurrent agents. Each launch mints one trace from
// the coalition engine's tracer — the in-process counterpart of the
// remote runtime's itinerary trace.
func Launch(c *server.Coalition, ag *Agent) error {
	return LaunchTraced(c, c.Engine.Tracer().NewContext(), ag)
}

// LaunchTraced is Launch under a caller-minted trace context.
func LaunchTraced(c *server.Coalition, tc obs.TraceContext, ag *Agent) error {
	if ag.Program == nil {
		ag.finish(ErrNoProgram)
		return ErrNoProgram
	}
	if err := sral.Validate(ag.Program); err != nil {
		ag.finish(err)
		return err
	}
	sp, btc := c.Engine.Tracer().StartSpan(tc, "itinerary")
	sp.SetService("agent")
	sp.SetAttr("agent", string(ag.ID))
	ctx := &branch{coalition: c, agent: ag, cancel: ag.abort, tc: btc}
	// Establish the starting location.
	start := ag.Home
	if start == "" {
		if servers := sral.Servers(ag.Program); len(servers) > 0 {
			start = servers[0]
		}
	}
	var err error
	if start != "" {
		err = ctx.moveTo(start)
	}
	if err == nil {
		err = ctx.exec(ag.Program)
	}
	ctx.leave()
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.Finish()
	ag.finish(err)
	return err
}

// String summarises the agent for diagnostics.
func (ag *Agent) String() string {
	return fmt.Sprintf("agent %s (owner %s, %d proofs, visited %v)",
		ag.ID, ag.Credential.Owner, ag.Proofs.Len(), ag.Visited())
}

// VarStore is the agent's variable environment, shared by all
// execution branches (clones). It implements sral.Env.
type VarStore struct {
	mu   sync.RWMutex
	vars map[model.VarID]int64
}

// NewVarStore creates an empty variable store.
func NewVarStore() *VarStore {
	return &VarStore{vars: make(map[model.VarID]int64)}
}

// Lookup implements sral.Env.
func (v *VarStore) Lookup(name model.VarID) (int64, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	x, ok := v.vars[name]
	return x, ok
}

// Set binds a variable.
func (v *VarStore) Set(name model.VarID, val int64) {
	v.mu.Lock()
	v.vars[name] = val
	v.mu.Unlock()
}

// Get returns a variable's value (zero when unbound).
func (v *VarStore) Get(name model.VarID) int64 {
	x, _ := v.Lookup(name)
	return x
}

var _ sral.Env = (*VarStore)(nil)
