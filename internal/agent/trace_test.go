package agent

import (
	"testing"

	"stac/internal/obs"
)

// An in-process launch keeps every hop of the itinerary — and every
// engine decision it triggers — inside one trace.
func TestLaunchTracesWholeItinerary(t *testing.T) {
	c, _ := newCoalition(t)
	tracer := obs.NewTracer(256)
	c.Engine.SetTracer(tracer)
	ag := newAgent(t, c, "o1", "read f-s1 @ s1; read f-s2 @ s2; read f-s3 @ s3")
	tc := tracer.NewContext()
	if err := LaunchTraced(c, tc, ag); err != nil {
		t.Fatal(err)
	}
	spans := tracer.Store().Trace(tc.Trace)
	if len(spans) == 0 {
		t.Fatal("no spans for the launch trace")
	}
	for _, sp := range tracer.Store().Spans() {
		if sp.TraceID != tc.Trace {
			t.Fatalf("span %s escaped the trace: %s", sp.Name, sp.TraceID)
		}
	}
	names := map[string]int{}
	var root obs.Span
	for _, sp := range spans {
		names[sp.Name]++
		if sp.Name == "itinerary" {
			root = sp
		}
	}
	if names["itinerary"] != 1 || names["authorize"] != 3 || names["server.request"] != 3 {
		t.Fatalf("span census = %v", names)
	}
	if root.Service != "agent" || !root.Parent.IsZero() {
		t.Fatalf("itinerary root = %+v", root)
	}
	// server.request spans descend from the itinerary root.
	for _, sp := range spans {
		if sp.Name == "server.request" && sp.Parent != root.SpanID {
			t.Fatalf("server.request parent = %s, want %s", sp.Parent, root.SpanID)
		}
	}

	// Launch (the convenience wrapper) mints its own trace from the
	// engine's tracer.
	before := len(tracer.Store().TraceIDs())
	ag2 := newAgent(t, c, "o2", "read f-s1 @ s1")
	if err := Launch(c, ag2); err != nil {
		t.Fatal(err)
	}
	if got := len(tracer.Store().TraceIDs()); got != before+1 {
		t.Fatalf("trace count = %d, want %d", got, before+1)
	}
}

// Parallel clones inherit the launch trace: forked branches stay
// within the itinerary.
func TestParallelClonesShareTrace(t *testing.T) {
	c, _ := newCoalition(t)
	tracer := obs.NewTracer(256)
	c.Engine.SetTracer(tracer)
	ag := newAgent(t, c, "o1", "read f-s1 @ s1 || read f-s2 @ s2")
	tc := tracer.NewContext()
	if err := LaunchTraced(c, tc, ag); err != nil {
		t.Fatal(err)
	}
	for _, sp := range tracer.Store().Spans() {
		if sp.TraceID != tc.Trace {
			t.Fatalf("span %s escaped the trace: %s", sp.Name, sp.TraceID)
		}
	}
}
