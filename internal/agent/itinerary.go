package agent

import (
	"fmt"

	"stac/internal/model"
	"stac/internal/registry"
	"stac/internal/sral"
)

// This file provides the structured navigation facility of the Naplet
// system (Section 5): an itinerary describes a mobile object's roaming
// agenda — the list of servers to be visited and their ordering — as a
// composable structure. An itinerary compiles, together with a
// per-stop task, into the SRAL program the agent executes, so every
// static and runtime check applies to navigated agents unchanged.

// Task produces the program fragment an agent performs at a stop.
type Task func(at model.ServerID) sral.Node

// ReadTask is a convenience task: read the given resource at every
// stop.
func ReadTask(res model.ResourceID) Task {
	return func(at model.ServerID) sral.Node {
		return sral.Prim{Op: model.OpRead, Resource: res, Server: at}
	}
}

// Itinerary is a roaming agenda. Compile turns it into an SRAL
// program by applying the task at every visited server.
type Itinerary interface {
	Compile(task Task) sral.Node
	// Stops returns the servers the itinerary may visit, in
	// first-mention order.
	Stops() []model.ServerID
}

// Visit is the primitive itinerary: perform the task at one server.
type Visit model.ServerID

// Compile implements Itinerary.
func (v Visit) Compile(task Task) sral.Node {
	if task == nil {
		return sral.Skip{}
	}
	n := task(model.ServerID(v))
	if n == nil {
		return sral.Skip{}
	}
	return n
}

// Stops implements Itinerary.
func (v Visit) Stops() []model.ServerID { return []model.ServerID{model.ServerID(v)} }

// Route visits its legs in order (Naplet's sequential agenda).
type Route []Itinerary

// Compile implements Itinerary.
func (r Route) Compile(task Task) sral.Node {
	nodes := make([]sral.Node, len(r))
	for i, leg := range r {
		nodes[i] = leg.Compile(task)
	}
	return sral.SeqOf(nodes...)
}

// Stops implements Itinerary.
func (r Route) Stops() []model.ServerID { return mergeStops([]Itinerary(r)) }

// Split forks cloned agents over its legs (Naplet's parallel agenda;
// the clones share the agent's proofs and variables).
type Split []Itinerary

// Compile implements Itinerary.
func (s Split) Compile(task Task) sral.Node {
	nodes := make([]sral.Node, len(s))
	for i, leg := range s {
		nodes[i] = leg.Compile(task)
	}
	return sral.ParOf(nodes...)
}

// Stops implements Itinerary.
func (s Split) Stops() []model.ServerID { return mergeStops([]Itinerary(s)) }

// Alternative visits exactly one of its options, selected at run time
// by Choose (e.g. the nearest replica, or the first reachable one). A
// nil Choose selects the first option.
type Alternative struct {
	Options []Itinerary
	Choose  func(n int) int
}

// Compile implements Itinerary. The choice compiles to a chain of
// conditionals over opaque guards so that the static checker treats
// every option as possible (Definition 3.2 union semantics).
func (a Alternative) Compile(task Task) sral.Node {
	if len(a.Options) == 0 {
		return sral.Skip{}
	}
	pick := func() int {
		if a.Choose == nil {
			return 0
		}
		k := a.Choose(len(a.Options))
		if k < 0 || k >= len(a.Options) {
			return 0
		}
		return k
	}
	node := a.Options[len(a.Options)-1].Compile(task)
	for i := len(a.Options) - 2; i >= 0; i-- {
		idx := i
		node = sral.If{
			Cond: sral.Guard(fmt.Sprintf("route-option-%d", idx), func() bool {
				return pick() == idx
			}),
			Then: a.Options[idx].Compile(task),
			Else: node,
		}
	}
	return node
}

// Stops implements Itinerary.
func (a Alternative) Stops() []model.ServerID { return mergeStops(a.Options) }

// Cycle repeats its body while the condition holds (Naplet's loop
// agenda).
type Cycle struct {
	While Checkable
	Body  Itinerary
}

// Compile implements Itinerary.
func (c Cycle) Compile(task Task) sral.Node {
	cond := sral.Guard("cycle", func() bool { return c.While != nil && c.While.Check() })
	return sral.Loop(cond, c.Body.Compile(task))
}

// Stops implements Itinerary.
func (c Cycle) Stops() []model.ServerID { return c.Body.Stops() }

func mergeStops(legs []Itinerary) []model.ServerID {
	var out []model.ServerID
	seen := map[model.ServerID]bool{}
	for _, leg := range legs {
		for _, s := range leg.Stops() {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// PlanVisits builds a sequential itinerary that touches every given
// resource once, resolving hosting servers through the coalition
// registry (the yellow-page query of Section 5.2) and grouping
// consecutive resources by server to exploit data locality. Resources
// nobody hosts yield an error.
func PlanVisits(reg *registry.Registry, resources []model.ResourceID) (Route, Task, error) {
	// Resolve each resource to its (first) hosting server.
	hostOf := make(map[model.ResourceID]model.ServerID, len(resources))
	perServer := make(map[model.ServerID][]model.ResourceID)
	var serverOrder []model.ServerID
	for _, res := range resources {
		hosts := reg.WhoHosts(res)
		if len(hosts) == 0 {
			return nil, nil, fmt.Errorf("agent: no coalition server hosts %q", res)
		}
		h := hosts[0]
		hostOf[res] = h
		if _, ok := perServer[h]; !ok {
			serverOrder = append(serverOrder, h)
		}
		perServer[h] = append(perServer[h], res)
	}
	var route Route
	for _, s := range serverOrder {
		route = append(route, Visit(s))
	}
	// The task reads, at each stop, every resource grouped onto it.
	task := func(at model.ServerID) sral.Node {
		var nodes []sral.Node
		for _, res := range perServer[at] {
			nodes = append(nodes, sral.Prim{Op: model.OpRead, Resource: res, Server: at})
		}
		return sral.SeqOf(nodes...)
	}
	return route, task, nil
}
