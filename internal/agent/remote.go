package agent

import (
	"fmt"
	"net"
	"sync"
	"time"

	"stac/internal/channel"
	"stac/internal/hlc"
	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/server"
	"stac/internal/sral"
)

// RemoteRuntime executes an agent's SRAL program against coalition
// servers over the TCP transport: the runtime stays on the device (the
// physical-mobility reading of Section 2 — the device connects to
// different data servers at different times), migration is re-dialling
// the next server, and the execution proofs ride along in the agent's
// store, imported into every new connection.
//
// The runtime assumes the coalition network is unreliable: dials and
// accesses that fail with transport errors (resets, timeouts, dropped
// connections) are retried with jittered exponential backoff, and a
// retried access carries an idempotency key so the server returns its
// original verdict instead of consuming a validity budget twice. The
// proof history lives in the agent's store, so a connection lost
// mid-hop never loses proofs: the replacement connection re-imports
// the full history before re-authenticating. Application-level
// verdicts — denials, authentication failures — are never retried.
//
// Channel and signal operations synchronise execution branches of the
// SAME device through the runtime's local hub; cross-device teamwork
// over the network uses the in-process coalition emulation instead.
type RemoteRuntime struct {
	// Addrs resolves coalition server IDs to TCP addresses.
	Addrs map[model.ServerID]string
	// Hub carries the device-local channels and signals; created on
	// first use when nil.
	Hub *channel.Hub

	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// IOTimeout bounds each request/response round trip (default
	// 10s).
	IOTimeout time.Duration
	// Retries is the number of retry attempts per step after a
	// transient transport failure. Zero means DefaultRetries;
	// negative disables retrying.
	Retries int
	// Backoff is the base delay before the first retry; it doubles
	// per attempt with ±50% deterministic jitter and is capped at
	// 100× the base (default 5ms).
	Backoff time.Duration
	// Seed drives the backoff jitter (default 1), keeping retry
	// schedules reproducible.
	Seed int64
	// Dial overrides the transport (e.g. to inject faults); nil uses
	// TCP.
	Dial func(addr string) (net.Conn, error)
	// Obs selects the metrics registry the runtime reports retries,
	// backoff sleeps and hop latency into; nil means obs.Default. Set
	// it before the first Launch.
	Obs *obs.Registry
	// Tracer mints one trace per Launch (the whole itinerary) and
	// records the runtime's hop and access spans; nil means
	// obs.DefaultTracer. The trace context propagates to every daemon
	// the itinerary touches, so one trace ID spans all hops.
	Tracer *obs.Tracer

	once    sync.Once
	polOnce sync.Once
	pol     *Backoff

	// hlcOnce guards the runtime's hybrid logical clock: one clock per
	// runtime, shared by every dialled connection across every branch,
	// so the agent's causal history is a single chain no matter how the
	// itinerary forks or reconnects.
	hlcOnce sync.Once
	hlcClk  *hlc.Clock

	metOnce sync.Once
	met     *rtMetrics
}

// rtMetrics holds the runtime's resolved metric handles.
type rtMetrics struct {
	dialRetries   *obs.Counter
	accessRetries *obs.Counter
	backoff       *obs.Histogram
	hop           *obs.Histogram
}

// hopBuckets span a LAN round trip up to backoff-laden recoveries.
var hopBuckets = []float64{
	100e-6, 500e-6, 1e-3, 5e-3, 25e-3, 100e-3, 500e-3, 2.5, 10,
}

func (rt *RemoteRuntime) metrics() *rtMetrics {
	rt.metOnce.Do(func() {
		r := rt.Obs
		if r == nil {
			r = obs.Default
		}
		rt.met = &rtMetrics{
			dialRetries: r.Counter("stac_agent_retries_total",
				obs.Label("phase", "dial"),
				"Transient-failure retries by the remote agent runtime, by phase."),
			accessRetries: r.Counter("stac_agent_retries_total",
				obs.Label("phase", "access"),
				"Transient-failure retries by the remote agent runtime, by phase."),
			backoff: r.Histogram("stac_agent_backoff_seconds", "",
				"Time the runtime slept in retry backoff.", hopBuckets),
			hop: r.Histogram("stac_agent_hop_seconds", "",
				"Migration (dial + history import + auth) latency per completed hop.", hopBuckets),
		}
	})
	return rt.met
}

// DefaultRetries is the per-step transient-failure retry budget when
// RemoteRuntime.Retries is zero.
const DefaultRetries = 3

func (rt *RemoteRuntime) tracer() *obs.Tracer {
	if rt.Tracer != nil {
		return rt.Tracer
	}
	return obs.DefaultTracer
}

func (rt *RemoteRuntime) hub() *channel.Hub {
	rt.once.Do(func() {
		if rt.Hub == nil {
			rt.Hub = channel.NewHub()
		}
	})
	return rt.Hub
}

func (rt *RemoteRuntime) retries() int {
	switch {
	case rt.Retries < 0:
		return 0
	case rt.Retries == 0:
		return DefaultRetries
	default:
		return rt.Retries
	}
}

func (rt *RemoteRuntime) clientConfig() server.ClientConfig {
	cfg := server.ClientConfig{
		DialTimeout: rt.DialTimeout,
		IOTimeout:   rt.IOTimeout,
		Dial:        rt.Dial,
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.IOTimeout == 0 {
		cfg.IOTimeout = 10 * time.Second
	}
	return cfg
}

// backoffDelay computes the jittered exponential backoff before retry
// attempt (1-based), delegating to the shared Backoff policy.
func (rt *RemoteRuntime) backoffDelay(attempt int) time.Duration {
	rt.polOnce.Do(func() {
		rt.pol = &Backoff{Base: rt.Backoff, Seed: rt.Seed}
	})
	return rt.pol.Delay(attempt)
}

// HLC returns the runtime's hybrid logical clock (created on first
// use, over the host wall clock). Every connection the runtime dials
// shares it: each request carries the clock's reading and each reply's
// stamp is folded back in, so decisions along the itinerary — across
// servers with skewed clocks — form one causal chain the coalition
// timeline can order.
func (rt *RemoteRuntime) HLC() *hlc.Clock {
	rt.hlcOnce.Do(func() {
		if rt.hlcClk == nil {
			rt.hlcClk = hlc.New(nil)
		}
	})
	return rt.hlcClk
}

// Launch runs the agent to completion over TCP. It is synchronous;
// errors carry the failing step. The agent's proof store accumulates
// every issued proof, exactly as with the in-process Launch. Each
// launch mints one trace — the itinerary — whose context propagates to
// every daemon the agent visits.
func (rt *RemoteRuntime) Launch(ag *Agent) error {
	return rt.LaunchTraced(rt.tracer().NewContext(), ag)
}

// LaunchTraced is Launch under a caller-minted trace context, so the
// caller knows the itinerary's trace ID up front (e.g. to fetch its
// span tree afterwards).
func (rt *RemoteRuntime) LaunchTraced(tc obs.TraceContext, ag *Agent) error {
	if ag.Program == nil {
		ag.finish(ErrNoProgram)
		return ErrNoProgram
	}
	if err := sral.Validate(ag.Program); err != nil {
		ag.finish(err)
		return err
	}
	// The itinerary root span parents every hop and access, across
	// every server the agent visits.
	tr := rt.tracer()
	sp, ctx := tr.StartSpan(tc, "itinerary")
	sp.SetService("agent")
	sp.SetAttr("agent", string(ag.ID))
	b := &remoteBranch{rt: rt, agent: ag, programText: sral.String(ag.Program), tc: ctx}
	start := ag.Home
	if start == "" {
		if servers := sral.Servers(ag.Program); len(servers) > 0 {
			start = servers[0]
		}
	}
	var err error
	if start != "" {
		err = b.moveTo(start)
	}
	if err == nil {
		err = b.exec(ag.Program)
	}
	b.leave()
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.Finish()
	ag.finish(err)
	return err
}

// remoteBranch is one execution context over TCP; parallel composition
// forks branches with their own connections.
type remoteBranch struct {
	rt          *RemoteRuntime
	agent       *Agent
	programText string
	// tc is the branch's trace context (child of the itinerary root);
	// Par clones inherit it, so forks stay within one trace.
	tc obs.TraceContext

	loc    model.ServerID
	client *server.Client
}

// sleepBackoff waits out the retry backoff, aborting early if the
// agent is recalled.
func (b *remoteBranch) sleepBackoff(attempt int) error {
	delay := b.rt.backoffDelay(attempt)
	b.rt.metrics().backoff.Observe(delay)
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-b.agent.abort:
		return fmt.Errorf("agent %s: %w", b.agent.ID, ErrAborted)
	}
}

func (b *remoteBranch) moveTo(s model.ServerID) error {
	if b.loc == s && b.client != nil {
		return nil
	}
	b.leave()
	addr, ok := b.rt.Addrs[s]
	if !ok {
		return fmt.Errorf("agent %s: %w: %q has no address", b.agent.ID, model.ErrUnknownServer, s)
	}
	hopStart := time.Now()
	sp, _ := b.rt.tracer().StartSpan(b.tc, "hop")
	sp.SetService("agent")
	sp.SetAttr("server", string(s))
	var lastErr error
	for attempt := 0; attempt <= b.rt.retries(); attempt++ {
		if attempt > 0 {
			b.rt.metrics().dialRetries.Inc()
			if err := b.sleepBackoff(attempt); err != nil {
				sp.SetAttr("error", err.Error())
				sp.Finish()
				return err
			}
		}
		cl, err := server.DialConfig(addr, b.rt.clientConfig())
		if err != nil {
			lastErr = err
			continue
		}
		// The itinerary-wide HLC rides every connection: requests carry
		// its reading, replies advance it, so hop N+1's decisions are
		// causally after hop N's even across skewed daemons.
		cl.SetHLC(b.rt.HLC())
		// The carried history enters the new connection before
		// authentication, so the server sees the full cross-site
		// trace. A redial after a mid-migration reset re-imports it,
		// so no proof is ever lost to the network.
		cl.ImportProofs(b.agent.Proofs.All())
		if err := cl.Auth(b.agent.Credential); err != nil {
			cl.Close()
			if !server.IsTransient(err) {
				// The server decided: the credential is bad, the
				// object unknown. Retrying cannot change that.
				sp.SetAttr("error", err.Error())
				sp.Finish()
				return fmt.Errorf("agent %s: arrival at %s: %w", b.agent.ID, s, err)
			}
			lastErr = err
			continue
		}
		b.loc = s
		b.client = cl
		b.rt.metrics().hop.ObserveSince(hopStart)
		sp.SetAttr("attempts", fmt.Sprintf("%d", attempt+1))
		sp.Finish()
		b.agent.recordVisit(s)
		if b.agent.Hooks.OnArrival != nil {
			b.agent.Hooks.OnArrival(s)
		}
		return nil
	}
	err := fmt.Errorf("agent %s: migrate to %s: %w", b.agent.ID, s, lastErr)
	sp.SetAttr("error", err.Error())
	sp.Finish()
	return err
}

func (b *remoteBranch) leave() {
	if b.client == nil {
		return
	}
	if b.agent.Hooks.OnDeparture != nil {
		b.agent.Hooks.OnDeparture(b.loc)
	}
	_ = b.client.Depart()
	b.client.Close()
	b.client = nil
}

// access performs one shared-resource access with transparent
// reconnect-and-retry on transport failures. The idempotency key is
// fixed before the first attempt, so a retry after a lost response
// returns the server's original verdict and proof.
func (b *remoteBranch) access(x sral.Prim) ([]byte, error) {
	id := server.NewRequestID()
	// One span covers the whole retry loop; the span's context rides
	// each wire request, so the daemon's spans parent under it even
	// across reconnects.
	sp, ctx := b.rt.tracer().StartSpan(b.tc, "access")
	sp.SetService("agent")
	sp.SetAttr("op", string(x.Op))
	sp.SetAttr("resource", string(x.Resource))
	sp.SetAttr("server", string(x.Server))
	// When unsampled, ctx is b.tc unchanged: the bare trace identity
	// still propagates, so audit records correlate without spans.
	var data []byte
	var err error
	attempts := 1
	for attempt := 0; ; attempt++ {
		data, err = b.client.AccessTraced(ctx, id, x.Op, x.Resource, b.programText, nil)
		if err == nil || !server.IsTransient(err) || attempt >= b.rt.retries() {
			break
		}
		b.rt.metrics().accessRetries.Inc()
		if serr := b.sleepBackoff(attempt + 1); serr != nil {
			sp.SetAttr("error", serr.Error())
			sp.Finish()
			return nil, serr
		}
		// The connection is suspect; re-arrive at the same server.
		// The server sees a genuine departure and arrival, exactly as
		// if the device had dropped off the network and returned.
		b.client.Close()
		b.client = nil
		loc := b.loc
		b.loc = ""
		if merr := b.moveTo(loc); merr != nil {
			sp.SetAttr("error", merr.Error())
			sp.Finish()
			return nil, merr
		}
		attempts++
	}
	sp.SetAttr("attempts", fmt.Sprintf("%d", attempts))
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.Finish()
	return data, err
}

func (b *remoteBranch) exec(n sral.Node) error {
	select {
	case <-b.agent.abort:
		return fmt.Errorf("agent %s: %w", b.agent.ID, ErrAborted)
	default:
	}
	if err := b.agent.chargeStep(); err != nil {
		return fmt.Errorf("agent %s: %w", b.agent.ID, err)
	}
	switch x := n.(type) {
	case sral.Skip:
		return nil

	case sral.Prim:
		if err := b.moveTo(x.Server); err != nil {
			return err
		}
		data, err := b.access(x)
		if err != nil {
			return fmt.Errorf("agent %s: %s %s @ %s: %w", b.agent.ID, x.Op, x.Resource, x.Server, err)
		}
		// The wire client collected the proof; mirror the latest one
		// into the agent's authoritative store.
		ps := b.client.Proofs()
		if len(ps) > 0 {
			if err := b.agent.Proofs.Add(ps[len(ps)-1]); err != nil {
				return fmt.Errorf("agent %s: proof rejected: %w", b.agent.ID, err)
			}
		}
		if b.agent.Hooks.OnAccess != nil {
			access := model.Access{Object: b.agent.ID, Op: x.Op, Resource: x.Resource, Server: x.Server}
			b.agent.Hooks.OnAccess(access, data)
		}
		return nil

	case sral.Recv:
		v, err := b.rt.hub().Channel(x.Ch).Recv(b.agent.abort)
		if err != nil {
			return fmt.Errorf("agent %s: %s?%s: %w", b.agent.ID, x.Ch, x.Var, err)
		}
		b.agent.vars.Set(x.Var, v)
		return nil

	case sral.Send:
		b.rt.hub().Channel(x.Ch).Send(x.Expr.EvalExpr(b.agent.vars))
		return nil

	case sral.Signal:
		b.rt.hub().Signals().Signal(x.Sig)
		return nil

	case sral.Wait:
		if err := b.rt.hub().Signals().Wait(x.Sig, b.agent.abort); err != nil {
			return fmt.Errorf("agent %s: wait(%s): %w", b.agent.ID, x.Sig, err)
		}
		return nil

	case sral.Seq:
		if err := b.exec(x.First); err != nil {
			return err
		}
		return b.exec(x.Second)

	case sral.If:
		if x.Cond.EvalCond(b.agent.vars) {
			return b.exec(x.Then)
		}
		return b.exec(x.Else)

	case sral.While:
		for x.Cond.EvalCond(b.agent.vars) {
			if err := b.exec(x.Body); err != nil {
				return err
			}
		}
		return nil

	case sral.Par:
		clone := &remoteBranch{rt: b.rt, agent: b.agent, programText: b.programText, tc: b.tc}
		origin := b.loc
		var wg sync.WaitGroup
		var rightErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			if origin != "" {
				if err := clone.moveTo(origin); err != nil {
					rightErr = err
					return
				}
			}
			rightErr = clone.exec(x.Right)
			clone.leave()
		}()
		leftErr := b.exec(x.Left)
		wg.Wait()
		if leftErr != nil {
			return leftErr
		}
		return rightErr

	case nil:
		return nil
	}
	return fmt.Errorf("agent %s: unknown construct %T", b.agent.ID, n)
}
