package agent

import (
	"fmt"
	"sync"

	"stac/internal/channel"
	"stac/internal/model"
	"stac/internal/server"
	"stac/internal/sral"
)

// RemoteRuntime executes an agent's SRAL program against coalition
// servers over the TCP transport: the runtime stays on the device (the
// physical-mobility reading of Section 2 — the device connects to
// different data servers at different times), migration is re-dialling
// the next server, and the execution proofs ride along in the agent's
// store, imported into every new connection.
//
// Channel and signal operations synchronise execution branches of the
// SAME device through the runtime's local hub; cross-device teamwork
// over the network uses the in-process coalition emulation instead.
type RemoteRuntime struct {
	// Addrs resolves coalition server IDs to TCP addresses.
	Addrs map[model.ServerID]string
	// Hub carries the device-local channels and signals; created on
	// first use when nil.
	Hub *channel.Hub

	once sync.Once
}

func (rt *RemoteRuntime) hub() *channel.Hub {
	rt.once.Do(func() {
		if rt.Hub == nil {
			rt.Hub = channel.NewHub()
		}
	})
	return rt.Hub
}

// Launch runs the agent to completion over TCP. It is synchronous;
// errors carry the failing step. The agent's proof store accumulates
// every issued proof, exactly as with the in-process Launch.
func (rt *RemoteRuntime) Launch(ag *Agent) error {
	if ag.Program == nil {
		ag.finish(ErrNoProgram)
		return ErrNoProgram
	}
	if err := sral.Validate(ag.Program); err != nil {
		ag.finish(err)
		return err
	}
	b := &remoteBranch{rt: rt, agent: ag, programText: sral.String(ag.Program)}
	start := ag.Home
	if start == "" {
		if servers := sral.Servers(ag.Program); len(servers) > 0 {
			start = servers[0]
		}
	}
	var err error
	if start != "" {
		err = b.moveTo(start)
	}
	if err == nil {
		err = b.exec(ag.Program)
	}
	b.leave()
	ag.finish(err)
	return err
}

// remoteBranch is one execution context over TCP; parallel composition
// forks branches with their own connections.
type remoteBranch struct {
	rt          *RemoteRuntime
	agent       *Agent
	programText string

	loc    model.ServerID
	client *server.Client
}

func (b *remoteBranch) moveTo(s model.ServerID) error {
	if b.loc == s && b.client != nil {
		return nil
	}
	b.leave()
	addr, ok := b.rt.Addrs[s]
	if !ok {
		return fmt.Errorf("agent %s: %w: %q has no address", b.agent.ID, model.ErrUnknownServer, s)
	}
	cl, err := server.Dial(addr)
	if err != nil {
		return fmt.Errorf("agent %s: migrate to %s: %w", b.agent.ID, s, err)
	}
	// The carried history enters the new connection before
	// authentication, so the server sees the full cross-site trace.
	cl.ImportProofs(b.agent.Proofs.All())
	if err := cl.Auth(b.agent.Credential); err != nil {
		cl.Close()
		return fmt.Errorf("agent %s: arrival at %s: %w", b.agent.ID, s, err)
	}
	b.loc = s
	b.client = cl
	b.agent.recordVisit(s)
	if b.agent.Hooks.OnArrival != nil {
		b.agent.Hooks.OnArrival(s)
	}
	return nil
}

func (b *remoteBranch) leave() {
	if b.client == nil {
		return
	}
	if b.agent.Hooks.OnDeparture != nil {
		b.agent.Hooks.OnDeparture(b.loc)
	}
	_ = b.client.Depart()
	b.client.Close()
	b.client = nil
}

func (b *remoteBranch) exec(n sral.Node) error {
	select {
	case <-b.agent.abort:
		return fmt.Errorf("agent %s: %w", b.agent.ID, ErrAborted)
	default:
	}
	if err := b.agent.chargeStep(); err != nil {
		return fmt.Errorf("agent %s: %w", b.agent.ID, err)
	}
	switch x := n.(type) {
	case sral.Skip:
		return nil

	case sral.Prim:
		if err := b.moveTo(x.Server); err != nil {
			return err
		}
		data, err := b.client.Access(x.Op, x.Resource, b.programText, nil)
		if err != nil {
			return fmt.Errorf("agent %s: %s %s @ %s: %w", b.agent.ID, x.Op, x.Resource, x.Server, err)
		}
		// The wire client collected the proof; mirror the latest one
		// into the agent's authoritative store.
		ps := b.client.Proofs()
		if len(ps) > 0 {
			if err := b.agent.Proofs.Add(ps[len(ps)-1]); err != nil {
				return fmt.Errorf("agent %s: proof rejected: %w", b.agent.ID, err)
			}
		}
		if b.agent.Hooks.OnAccess != nil {
			access := model.Access{Object: b.agent.ID, Op: x.Op, Resource: x.Resource, Server: x.Server}
			b.agent.Hooks.OnAccess(access, data)
		}
		return nil

	case sral.Recv:
		v, err := b.rt.hub().Channel(x.Ch).Recv(b.agent.abort)
		if err != nil {
			return fmt.Errorf("agent %s: %s?%s: %w", b.agent.ID, x.Ch, x.Var, err)
		}
		b.agent.vars.Set(x.Var, v)
		return nil

	case sral.Send:
		b.rt.hub().Channel(x.Ch).Send(x.Expr.EvalExpr(b.agent.vars))
		return nil

	case sral.Signal:
		b.rt.hub().Signals().Signal(x.Sig)
		return nil

	case sral.Wait:
		if err := b.rt.hub().Signals().Wait(x.Sig, b.agent.abort); err != nil {
			return fmt.Errorf("agent %s: wait(%s): %w", b.agent.ID, x.Sig, err)
		}
		return nil

	case sral.Seq:
		if err := b.exec(x.First); err != nil {
			return err
		}
		return b.exec(x.Second)

	case sral.If:
		if x.Cond.EvalCond(b.agent.vars) {
			return b.exec(x.Then)
		}
		return b.exec(x.Else)

	case sral.While:
		for x.Cond.EvalCond(b.agent.vars) {
			if err := b.exec(x.Body); err != nil {
				return err
			}
		}
		return nil

	case sral.Par:
		clone := &remoteBranch{rt: b.rt, agent: b.agent, programText: b.programText}
		origin := b.loc
		var wg sync.WaitGroup
		var rightErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			if origin != "" {
				if err := clone.moveTo(origin); err != nil {
					rightErr = err
					return
				}
			}
			rightErr = clone.exec(x.Right)
			clone.leave()
		}()
		leftErr := b.exec(x.Left)
		wg.Wait()
		if leftErr != nil {
			return leftErr
		}
		return rightErr

	case nil:
		return nil
	}
	return fmt.Errorf("agent %s: unknown construct %T", b.agent.ID, n)
}
