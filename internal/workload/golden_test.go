package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"stac/internal/sral"
)

// Golden-seed determinism: every generator in this package is a pure
// function of its *rand.Rand (or, for the scenario generators, of the
// seed itself), so a fixed seed must produce byte-identical output on
// every run, on every machine, at every GOMAXPROCS. The load harness,
// the replay recorder and the chaos suite all lean on this — a silent
// change to a generator's draw order invalidates recorded baselines,
// which is exactly what these hard-coded fingerprints catch.

// fingerprint hashes a canonical render.
func fingerprint(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:8])
}

// renderAll produces the canonical render of everything the golden
// fingerprints cover, from one fixed seed set.
func renderAll() string {
	var b strings.Builder
	v := DefaultVocabulary(3, 8)

	// Scenario-generator outputs: policy text and worker plans.
	for _, spec := range []PolicySpec{
		{Workers: 4, Servers: 3, Resources: 8, Permissions: 8, Flavor: FlavorCount, CountMax: 100},
		{Workers: 4, Servers: 3, Resources: 8, Permissions: 8, Flavor: FlavorTemporal, DurationS: 2.5},
		{Workers: 6, Servers: 3, Resources: 8, Permissions: 32, Flavor: FlavorMixed, CountMax: 50, DurationS: 1},
	} {
		gp := GeneratePolicy(spec)
		fmt.Fprintf(&b, "policy %s/%d:\n%s\n", spec.Flavor, spec.Permissions, gp.Text)
	}
	for worker := 0; worker < 4; worker++ {
		fmt.Fprintf(&b, "plan %d: %s\n", worker, WorkerPlan(42, worker, v, 3, 2).String())
	}

	// PRNG-driven generators, one private source each.
	fmt.Fprintf(&b, "program: %s\n", sral.String(Program(
		rand.New(rand.NewSource(7)), v, ProgramOptions{Size: 24, LoopFraction: 0.1, ParFraction: 0.2})))
	fmt.Fprintf(&b, "linear: %s\n", sral.String(LinearProgram(rand.New(rand.NewSource(8)), v, 12)))
	fmt.Fprintf(&b, "itinerary: %v\n", Itinerary(rand.New(rand.NewSource(9)), v, 6))
	return b.String()
}

// goldenFingerprint is the hard-coded fingerprint of renderAll. When a
// deliberate generator change lands, the failure message prints the
// new value to paste here — but remember that recorded flight-recorder
// baselines and LOAD_*.json summaries keyed to old seeds go stale too.
const goldenFingerprint = "2e6dd0e168f0a88c"

func TestGoldenSeedFingerprint(t *testing.T) {
	got := fingerprint(renderAll())
	if got != goldenFingerprint {
		t.Fatalf("golden fingerprint changed: got %s want %s\n"+
			"a workload generator's draw order changed; if deliberate, update goldenFingerprint",
			got, goldenFingerprint)
	}
}

// TestGoldenSeedRepeatable re-renders several times in-process: any
// hidden global state (shared rand, map iteration leaking into output)
// would break run-to-run identity before it breaks the fingerprint.
func TestGoldenSeedRepeatable(t *testing.T) {
	first := renderAll()
	for i := 0; i < 3; i++ {
		if got := renderAll(); got != first {
			t.Fatalf("render %d differs from first render", i+1)
		}
	}
}

// TestGoldenSeedGOMAXPROCS pins the render under GOMAXPROCS(1) and a
// wider setting, and also generates all worker plans concurrently —
// scheduling must not be able to reach the generators.
func TestGoldenSeedGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	one := renderAll()
	runtime.GOMAXPROCS(4)
	four := renderAll()
	if one != four {
		t.Fatal("render differs between GOMAXPROCS(1) and GOMAXPROCS(4)")
	}

	v := DefaultVocabulary(3, 8)
	sequential := make([]string, 16)
	for w := range sequential {
		sequential[w] = WorkerPlan(42, w, v, 4, 3).String()
	}
	concurrent := make([]string, len(sequential))
	var wg sync.WaitGroup
	for w := range concurrent {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			concurrent[w] = WorkerPlan(42, w, v, 4, 3).String()
		}(w)
	}
	wg.Wait()
	for w := range sequential {
		if sequential[w] != concurrent[w] {
			t.Fatalf("worker %d plan differs when generated concurrently", w)
		}
	}
}

// TestWorkerPlanDecorrelated guards the splitmix64 seed mixing:
// adjacent workers must not share plans (a naive seed+worker scheme
// produces heavily overlapping rand streams).
func TestWorkerPlanDecorrelated(t *testing.T) {
	v := DefaultVocabulary(3, 8)
	seen := map[string]int{}
	for w := 0; w < 32; w++ {
		s := WorkerPlan(1, w, v, 4, 3).String()
		if prev, dup := seen[s]; dup {
			t.Fatalf("workers %d and %d generated identical plans", prev, w)
		}
		seen[s] = w
	}
}
