package workload

// Scenario-matrix generators for the load harness (cmd/stacload): a
// policy generator parameterised by size and constraint flavour, and
// per-worker itinerary plans. Everything here is a pure function of
// its inputs — the same spec and seed produce byte-identical output on
// every run and under every GOMAXPROCS value, which the golden-seed
// tests pin down. That determinism is what makes a scenario file a
// reproducible experiment rather than a one-off traffic shape.

import (
	"fmt"
	"math/rand"
	"strings"

	"stac/internal/model"
)

// Constraint flavours of a generated load policy.
const (
	// FlavorCount attaches a counting ceiling to every covering
	// permission (count-heavy scenarios: denials appear when carried
	// histories reach the ceiling).
	FlavorCount = "count"
	// FlavorTemporal attaches a validity duration to every covering
	// permission (temporal-heavy scenarios: denials appear when a
	// subject outlives its budget).
	FlavorTemporal = "temporal"
	// FlavorMixed alternates counting and temporal clauses and gives
	// ballast permissions both.
	FlavorMixed = "mixed"
)

// PolicySpec sizes a generated load policy. The generated policy is a
// deterministic function of the spec alone.
type PolicySpec struct {
	// Workers is the number of load users (w0..wN-1), all assigned one
	// role.
	Workers int
	// Servers and Resources bound the vocabulary (s1..sS, f1..fR).
	Servers   int
	Resources int
	// Permissions is the total permission count. The first Resources
	// permissions each cover one resource; the surplus is ballast on
	// ghost resources that no itinerary touches, so it scales the
	// per-decision active-permission set without changing verdicts.
	Permissions int
	// Flavor selects the constraint mix (Flavor* constants).
	Flavor string
	// CountMax is the counting ceiling of count-flavoured permissions.
	CountMax int
	// DurationS is the validity duration of temporal-flavoured
	// permissions, in seconds.
	DurationS float64
}

// PermDef describes one generated permission: which resource it
// covers and which constraints it carries (zero values mean none).
type PermDef struct {
	ID       string
	Resource model.ResourceID
	CountMax int
	// DurationS is 0 when the permission has no temporal clause.
	DurationS float64
}

// GeneratedPolicy is the output of GeneratePolicy: the policy text in
// the stacd format plus the structured view the baseline adapters
// (plain RBAC, TRBAC, GTRBAC) build their equivalent models from.
type GeneratedPolicy struct {
	Text  string
	Users []string
	Role  string
	// Cover holds one permission per vocabulary resource, in resource
	// order; Ballast holds the surplus permissions on ghost resources.
	Cover   []PermDef
	Ballast []PermDef
}

// LoadRole is the single role every generated load policy grants
// through.
const LoadRole = "roam"

// GeneratePolicy renders a load policy for the spec. It uses no
// randomness: two calls with equal specs return identical text.
func GeneratePolicy(spec PolicySpec) GeneratedPolicy {
	if spec.Workers < 1 {
		spec.Workers = 1
	}
	if spec.Servers < 1 {
		spec.Servers = 1
	}
	if spec.Resources < 1 {
		spec.Resources = 1
	}
	if spec.Permissions < spec.Resources {
		spec.Permissions = spec.Resources
	}
	if spec.CountMax < 1 {
		spec.CountMax = 8
	}
	if spec.DurationS <= 0 {
		spec.DurationS = 3600
	}

	gp := GeneratedPolicy{Role: LoadRole}
	var b strings.Builder
	fmt.Fprintf(&b, "# generated load policy: %d perms, flavor %s\n", spec.Permissions, spec.Flavor)
	fmt.Fprintf(&b, "role %s\n", LoadRole)
	for i := 0; i < spec.Workers; i++ {
		u := fmt.Sprintf("w%d", i)
		gp.Users = append(gp.Users, u)
		fmt.Fprintf(&b, "user %s\n", u)
		fmt.Fprintf(&b, "assign %s %s\n", u, LoadRole)
	}

	clauses := func(d *PermDef, i int) string {
		var body strings.Builder
		count, temporal := false, false
		switch spec.Flavor {
		case FlavorCount:
			count = true
		case FlavorTemporal:
			temporal = true
		default: // FlavorMixed and anything unrecognised
			count = i%2 == 0
			temporal = !count
		}
		if count {
			d.CountMax = spec.CountMax
			fmt.Fprintf(&body, "    spatial  count(0, %d, sigma[r=%s])\n", spec.CountMax, d.Resource)
		}
		if temporal {
			d.DurationS = spec.DurationS
			fmt.Fprintf(&body, "    duration %gs\n    scheme   global\n", spec.DurationS)
		}
		return body.String()
	}

	for i := 0; i < spec.Permissions; i++ {
		var d PermDef
		if i < spec.Resources {
			d = PermDef{ID: fmt.Sprintf("p%d", i), Resource: model.ResourceID(fmt.Sprintf("f%d", i+1))}
		} else {
			d = PermDef{ID: fmt.Sprintf("p%d", i), Resource: model.ResourceID(fmt.Sprintf("ghost%d", i))}
		}
		fmt.Fprintf(&b, "permission %s * %s @ * {\n%s}\n", d.ID, d.Resource, clauses(&d, i))
		fmt.Fprintf(&b, "grant %s %s\n", LoadRole, d.ID)
		if i < spec.Resources {
			gp.Cover = append(gp.Cover, d)
		} else {
			gp.Ballast = append(gp.Ballast, d)
		}
	}
	gp.Text = b.String()
	return gp
}

// PermFor returns the covering permission for a resource (zero PermDef
// when the resource is outside the generated vocabulary).
func (gp GeneratedPolicy) PermFor(res model.ResourceID) PermDef {
	for _, d := range gp.Cover {
		if d.Resource == res {
			return d
		}
	}
	return PermDef{}
}

// Hop is one stop of a worker's itinerary: the server visited and the
// resources accessed there, in order.
type Hop struct {
	Server    model.ServerID
	Resources []model.ResourceID
}

// Plan is one worker's complete itinerary plan. Workers cycle through
// their plan for the duration of a load run.
type Plan struct {
	Worker int
	Hops   []Hop
}

// String renders the plan canonically — the byte stream the golden
// determinism tests fingerprint.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "worker %d\n", p.Worker)
	for _, h := range p.Hops {
		fmt.Fprintf(&b, "@%s:", h.Server)
		for i, r := range h.Resources {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(string(r))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WorkerPlan derives the itinerary plan of one worker from the
// scenario seed. Each worker owns a private PRNG stream decorrelated
// by a splitmix64 finalizer, so a plan depends only on (seed, worker,
// vocabulary, shape) — never on scheduling, other workers or
// GOMAXPROCS.
func WorkerPlan(seed int64, worker int, v Vocabulary, hops, perHop int) Plan {
	if hops < 1 {
		hops = 1
	}
	if perHop < 1 {
		perHop = 1
	}
	r := rand.New(rand.NewSource(mixSeed(seed, int64(worker))))
	order := Itinerary(r, v, hops)
	p := Plan{Worker: worker, Hops: make([]Hop, hops)}
	for i, srv := range order {
		h := Hop{Server: srv, Resources: make([]model.ResourceID, perHop)}
		for j := range h.Resources {
			h.Resources[j] = v.Resources[r.Intn(len(v.Resources))]
		}
		p.Hops[i] = h
	}
	return p
}

// mixSeed decorrelates per-worker PRNG streams (splitmix64 finalizer,
// mirroring internal/faults).
func mixSeed(seed, idx int64) int64 {
	z := uint64(seed) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
