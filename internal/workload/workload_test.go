package workload

import (
	"math/rand"
	"testing"

	"stac/internal/srac"
	"stac/internal/sral"
)

func TestDefaultVocabulary(t *testing.T) {
	v := DefaultVocabulary(3, 5)
	if len(v.Servers) != 3 || len(v.Resources) != 5 || len(v.Ops) != 3 {
		t.Fatalf("vocabulary = %+v", v)
	}
	if v.Servers[0] != "s1" || v.Resources[4] != "f5" {
		t.Fatalf("naming = %+v", v)
	}
}

func TestProgramGeneration(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v := DefaultVocabulary(3, 5)
	for _, size := range []int{1, 5, 20, 100, 500} {
		p := Program(r, v, ProgramOptions{Size: size, LoopFraction: 0.1, ParFraction: 0.1})
		if err := sral.Validate(p); err != nil {
			t.Fatalf("size %d: invalid program: %v", size, err)
		}
		got := p.Size()
		if got < size/2 || got > size*3 {
			t.Fatalf("size %d: generated %d constructs", size, got)
		}
	}
}

func TestProgramDeterministic(t *testing.T) {
	v := DefaultVocabulary(3, 5)
	opts := ProgramOptions{Size: 50, LoopFraction: 0.2, ParFraction: 0.2}
	p1 := Program(rand.New(rand.NewSource(7)), v, opts)
	p2 := Program(rand.New(rand.NewSource(7)), v, opts)
	if !sral.Equal(p1, p2) {
		t.Fatal("same seed produced different programs")
	}
}

func TestProgramLoopFree(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	v := DefaultVocabulary(3, 5)
	for i := 0; i < 50; i++ {
		p := Program(r, v, ProgramOptions{Size: 30, LoopFraction: 0.9, LoopFree: true})
		hasLoop := false
		sral.Walk(p, func(n sral.Node) bool {
			if _, ok := n.(sral.While); ok {
				hasLoop = true
				return false
			}
			return true
		})
		if hasLoop {
			t.Fatal("LoopFree program contains a loop")
		}
	}
}

func TestLinearProgram(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	v := DefaultVocabulary(3, 5)
	p := LinearProgram(r, v, 10)
	if got := len(sral.Accesses(p)); got == 0 {
		t.Fatal("no accesses")
	}
	// 10 prims + 9 seqs.
	if p.Size() != 19 {
		t.Fatalf("Size = %d", p.Size())
	}
}

func TestConstraintGeneration(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	v := DefaultVocabulary(3, 5)
	for _, size := range []int{1, 5, 20, 100} {
		c := Constraint(r, v, ConstraintOptions{Size: size})
		if err := srac.Validate(c); err != nil {
			t.Fatalf("size %d: invalid constraint: %v", size, err)
		}
		got := c.Size()
		if got < size/2 || got > size*3 {
			t.Fatalf("size %d: generated %d constructs", size, got)
		}
	}
}

func TestConstraintNegationFree(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	v := DefaultVocabulary(3, 5)
	for i := 0; i < 50; i++ {
		c := Constraint(r, v, ConstraintOptions{Size: 20, NegationFree: true})
		hasNot := false
		srac.Walk(c, func(x srac.Constraint) bool {
			if _, ok := x.(srac.Not); ok {
				hasNot = true
				return false
			}
			return true
		})
		if hasNot {
			t.Fatal("NegationFree constraint contains ¬")
		}
	}
}

func TestItinerary(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	v := DefaultVocabulary(4, 5)
	it := Itinerary(r, v, 20)
	if len(it) != 20 {
		t.Fatalf("len = %d", len(it))
	}
	for i := 1; i < len(it); i++ {
		if it[i] == it[i-1] {
			t.Fatal("consecutive repeat in itinerary")
		}
	}
}

func TestTourProgram(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	v := DefaultVocabulary(4, 5)
	it := Itinerary(r, v, 6)
	p := TourProgram(r, v, it)
	if err := sral.Validate(p); err != nil {
		t.Fatal(err)
	}
	// The program's server order follows the itinerary.
	var servers []string
	sral.Walk(p, func(n sral.Node) bool {
		if pr, ok := n.(sral.Prim); ok {
			servers = append(servers, string(pr.Server))
		}
		return true
	})
	if len(servers) != 6 {
		t.Fatalf("accesses = %v", servers)
	}
	for i, s := range servers {
		if s != string(it[i]) {
			t.Fatalf("stop %d = %s, want %s", i, s, it[i])
		}
	}
}

func TestModuleGraph(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	v := DefaultVocabulary(3, 5)
	g := ModuleGraph(r, v, 20, 0.3)
	if len(g.Modules()) != 20 {
		t.Fatalf("modules = %d", len(g.Modules()))
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Fatalf("generated graph not acyclic: %v", err)
	}
	// Pristine graph verifies clean.
	for id, ok := range g.Verify() {
		if !ok {
			t.Fatalf("module %s failed pristine verification", id)
		}
	}
}
