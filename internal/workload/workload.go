// Package workload generates synthetic programs, constraints,
// itineraries and module graphs for tests, benchmarks and the
// experiment harness. All generators are deterministic functions of
// the caller-supplied *rand.Rand so experiments are reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"stac/internal/digraph"
	"stac/internal/model"
	"stac/internal/srac"
	"stac/internal/sral"
)

// Vocabulary bounds the identifier space of generated artefacts.
type Vocabulary struct {
	Servers   []model.ServerID
	Resources []model.ResourceID
	Ops       []model.Operation
}

// DefaultVocabulary returns a vocabulary with s servers, r resources
// and the three file-system operations.
func DefaultVocabulary(s, r int) Vocabulary {
	v := Vocabulary{Ops: []model.Operation{model.OpRead, model.OpWrite, model.OpExecute}}
	for i := 0; i < s; i++ {
		v.Servers = append(v.Servers, model.ServerID(fmt.Sprintf("s%d", i+1)))
	}
	for i := 0; i < r; i++ {
		v.Resources = append(v.Resources, model.ResourceID(fmt.Sprintf("f%d", i+1)))
	}
	return v
}

func (v Vocabulary) access(r *rand.Rand) sral.Prim {
	return sral.Prim{
		Op:       v.Ops[r.Intn(len(v.Ops))],
		Resource: v.Resources[r.Intn(len(v.Resources))],
		Server:   v.Servers[r.Intn(len(v.Servers))],
	}
}

func (v Vocabulary) accessPattern(r *rand.Rand) model.Access {
	a := v.access(r).Access()
	// Occasionally wildcard the server so constraints span sites.
	if r.Intn(3) == 0 {
		a.Server = ""
	}
	return a
}

// ProgramOptions tunes random program generation.
type ProgramOptions struct {
	// Size is the target construct count (the m of Theorem 3.2); the
	// generated size is within a small factor of it.
	Size int
	// LoopFraction and ParFraction steer the construct mix; the rest
	// splits between sequences and conditionals. Values in [0, 1].
	LoopFraction, ParFraction float64
	// LoopFree forbids while-constructs regardless of LoopFraction
	// (needed when the consumer enumerates traces exactly).
	LoopFree bool
}

// Program generates a random well-formed SRAL program of roughly
// opts.Size constructs over the vocabulary.
func Program(r *rand.Rand, v Vocabulary, opts ProgramOptions) sral.Node {
	if opts.Size <= 1 {
		return v.access(r)
	}
	p := r.Float64()
	switch {
	case !opts.LoopFree && p < opts.LoopFraction:
		// Loop bodies get the remaining budget.
		body := Program(r, v, shrink(opts, opts.Size-1))
		return sral.While{Cond: sral.Lt(sral.V("x"), sral.Lit(int64(r.Intn(8)))), Body: body}
	case p < opts.LoopFraction+opts.ParFraction:
		left := Program(r, v, shrink(opts, opts.Size/2))
		right := Program(r, v, shrink(opts, opts.Size-1-opts.Size/2))
		return sral.Par{Left: left, Right: right}
	case p < opts.LoopFraction+opts.ParFraction+0.25:
		then := Program(r, v, shrink(opts, opts.Size/2))
		els := Program(r, v, shrink(opts, opts.Size-1-opts.Size/2))
		return sral.If{Cond: sral.Gt(sral.V("x"), sral.Lit(int64(r.Intn(8)))), Then: then, Else: els}
	default:
		first := Program(r, v, shrink(opts, opts.Size/2))
		second := Program(r, v, shrink(opts, opts.Size-1-opts.Size/2))
		return sral.Seq{First: first, Second: second}
	}
}

func shrink(opts ProgramOptions, size int) ProgramOptions {
	opts.Size = size
	return opts
}

// LinearProgram generates a purely sequential program of exactly n
// accesses — the workload for measuring per-construct checker cost
// without branching noise.
func LinearProgram(r *rand.Rand, v Vocabulary, n int) sral.Node {
	nodes := make([]sral.Node, n)
	for i := range nodes {
		nodes[i] = v.access(r)
	}
	return sral.SeqOf(nodes...)
}

// ConstraintOptions tunes random constraint generation.
type ConstraintOptions struct {
	// Size is the target construct count (the n of Theorem 3.2).
	Size int
	// NegationFree omits ¬ (and therefore →), keeping the checker in
	// its exact fragment.
	NegationFree bool
}

// Constraint generates a random SRAC constraint of roughly opts.Size
// constructs over the vocabulary.
func Constraint(r *rand.Rand, v Vocabulary, opts ConstraintOptions) srac.Constraint {
	if opts.Size <= 1 {
		switch r.Intn(4) {
		case 0:
			return srac.Require(v.accessPattern(r))
		case 1:
			return srac.Before(v.accessPattern(r), v.accessPattern(r))
		case 2:
			lo := r.Intn(3)
			hi := lo + r.Intn(6)
			if r.Intn(4) == 0 {
				hi = srac.Unbounded
			}
			return srac.Count{Min: lo, Max: hi, Sel: randomSelector(r, v)}
		default:
			if r.Intn(2) == 0 {
				return srac.TrueC{}
			}
			return srac.Require(v.accessPattern(r))
		}
	}
	kinds := 2
	if !opts.NegationFree {
		kinds = 3
	}
	switch r.Intn(kinds) {
	case 0:
		return srac.And{
			Left:  Constraint(r, v, shrinkC(opts, opts.Size/2)),
			Right: Constraint(r, v, shrinkC(opts, opts.Size-1-opts.Size/2)),
		}
	case 1:
		return srac.Or{
			Left:  Constraint(r, v, shrinkC(opts, opts.Size/2)),
			Right: Constraint(r, v, shrinkC(opts, opts.Size-1-opts.Size/2)),
		}
	default:
		return srac.Not{C: Constraint(r, v, shrinkC(opts, opts.Size-1))}
	}
}

func shrinkC(opts ConstraintOptions, size int) ConstraintOptions {
	opts.Size = size
	return opts
}

func randomSelector(r *rand.Rand, v Vocabulary) model.Selector {
	var sel model.Selector
	if r.Intn(2) == 0 {
		sel.Resources = []model.ResourceID{v.Resources[r.Intn(len(v.Resources))]}
	}
	if r.Intn(3) == 0 {
		sel.Ops = []model.Operation{v.Ops[r.Intn(len(v.Ops))]}
	}
	if r.Intn(3) == 0 {
		sel.Servers = []model.ServerID{v.Servers[r.Intn(len(v.Servers))]}
	}
	return sel
}

// Itinerary generates a random server visiting order of length n
// (servers may repeat, consecutive repeats avoided).
func Itinerary(r *rand.Rand, v Vocabulary, n int) []model.ServerID {
	out := make([]model.ServerID, 0, n)
	last := -1
	for i := 0; i < n; i++ {
		k := r.Intn(len(v.Servers))
		if k == last && len(v.Servers) > 1 {
			k = (k + 1) % len(v.Servers)
		}
		out = append(out, v.Servers[k])
		last = k
	}
	return out
}

// TourProgram generates a sequential program that reads one resource
// at each itinerary stop — the roaming workload of the enforcement
// experiments.
func TourProgram(r *rand.Rand, v Vocabulary, itinerary []model.ServerID) sral.Node {
	nodes := make([]sral.Node, len(itinerary))
	for i, s := range itinerary {
		nodes[i] = sral.Prim{
			Op:       model.OpRead,
			Resource: v.Resources[r.Intn(len(v.Resources))],
			Server:   s,
		}
	}
	return sral.SeqOf(nodes...)
}

// ModuleGraph generates a random acyclic dependency digraph with n
// modules spread over the vocabulary's servers, with edge probability
// p between each ordered pair (higher index depends on lower, so the
// graph is acyclic by construction).
func ModuleGraph(r *rand.Rand, v Vocabulary, n int, p float64) *digraph.Graph {
	g := digraph.NewGraph()
	ids := make([]digraph.ModuleID, n)
	for i := range ids {
		ids[i] = digraph.ModuleID(fmt.Sprintf("m%03d", i))
		srv := v.Servers[r.Intn(len(v.Servers))]
		content := make([]byte, 64)
		r.Read(content)
		if err := g.AddModule(ids[i], srv, content); err != nil {
			panic(err) // ids are unique by construction
		}
	}
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			if r.Float64() < p {
				if err := g.AddDep(ids[i], ids[j]); err != nil {
					panic(err) // acyclic by construction
				}
			}
		}
	}
	return g
}
