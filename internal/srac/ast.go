// Package srac implements the Shared Resource Access Constraint
// language of Definition 3.4:
//
//	C ::= T | F | a | a1 ⊗ a2 | #(m, n, σ(A)) | C1 ∧ C2 | C1 ∨ C2 | ¬C
//
// with the derived implication C1 → C2 ::= ¬C1 ∨ C2. Spatial
// constraints are defined over mobile object access actions; the
// package provides:
//
//   - the constraint AST with a concrete text syntax (Parse/String);
//   - exact trace satisfaction per Definition 3.6, relative to an
//     execution-proof oracle (t ⊨ a requires both a ∈ t and
//     Pr(a) = true);
//   - the polynomial-time static checker of Theorem 3.2, which decides
//     satisfaction for a whole SRAL program without enumerating its
//     (possibly infinite) trace model.
//
// Constraint atoms are access *patterns*: an empty component matches
// any value, so the anonymous atom "read f1 @ s1" constrains any
// mobile object's read of f1 at s1.
package srac

import (
	"fmt"
	"math"
	"strings"

	"stac/internal/model"
)

// Unbounded is the upper bound n of a #(m, n, σ) constraint meaning
// "no upper limit".
const Unbounded = math.MaxInt

// Constraint is a formula of the SRAC language.
type Constraint interface {
	isConstraint()
	// Size is the number of constructs in the formula — the
	// constraint size n of Theorem 3.2.
	Size() int
}

// TrueC is the constant T, satisfied by every trace.
type TrueC struct{}

// FalseC is the constant F, satisfied by no trace.
type FalseC struct{}

// Atom requires the access (pattern) to be performed by the mobile
// object, backed by an execution proof.
type Atom struct {
	A model.Access
}

// Ordered is a1 ⊗ a2: the mobile object must first perform a1 and then
// perform a2, possibly making other resource accesses in between.
// Both occurrences must be proof-backed.
type Ordered struct {
	First, Second model.Access
}

// Count is #(m, n, σ(A)): the number of accesses selected by σ must
// lie within [Min, Max]. Max = Unbounded lifts the upper limit.
type Count struct {
	Min, Max int
	Sel      model.Selector
}

// And is the conjunction C1 ∧ C2.
type And struct{ Left, Right Constraint }

// Or is the disjunction C1 ∨ C2.
type Or struct{ Left, Right Constraint }

// Not is the negation ¬C.
type Not struct{ C Constraint }

func (TrueC) isConstraint()   {}
func (FalseC) isConstraint()  {}
func (Atom) isConstraint()    {}
func (Ordered) isConstraint() {}
func (Count) isConstraint()   {}
func (And) isConstraint()     {}
func (Or) isConstraint()      {}
func (Not) isConstraint()     {}

func (TrueC) Size() int   { return 1 }
func (FalseC) Size() int  { return 1 }
func (Atom) Size() int    { return 1 }
func (Ordered) Size() int { return 1 }
func (Count) Size() int   { return 1 }

func (c And) Size() int { return 1 + c.Left.Size() + c.Right.Size() }
func (c Or) Size() int  { return 1 + c.Left.Size() + c.Right.Size() }
func (c Not) Size() int { return 1 + c.C.Size() }

// Implies builds the derived implication ¬C1 ∨ C2.
func Implies(c1, c2 Constraint) Constraint {
	return Or{Left: Not{C: c1}, Right: c2}
}

// Require builds the atom constraint for the given access pattern.
func Require(a model.Access) Atom { return Atom{A: a} }

// Before builds the ordering constraint a1 ⊗ a2.
func Before(a1, a2 model.Access) Ordered { return Ordered{First: a1, Second: a2} }

// AtMost builds #(0, n, σ): σ-selected accesses may occur at most n
// times. The paper's Example 3.5 restricted-software rule is
// AtMost(5, σ_RSW).
func AtMost(n int, sel model.Selector) Count { return Count{Min: 0, Max: n, Sel: sel} }

// AtLeast builds #(m, ∞, σ).
func AtLeast(m int, sel model.Selector) Count {
	return Count{Min: m, Max: Unbounded, Sel: sel}
}

// Exactly builds #(n, n, σ).
func Exactly(n int, sel model.Selector) Count { return Count{Min: n, Max: n, Sel: sel} }

// AndOf folds constraints into a right-nested conjunction.
// AndOf() is T.
func AndOf(cs ...Constraint) Constraint {
	switch len(cs) {
	case 0:
		return TrueC{}
	case 1:
		return cs[0]
	}
	return And{Left: cs[0], Right: AndOf(cs[1:]...)}
}

// OrOf folds constraints into a right-nested disjunction. OrOf() is F.
func OrOf(cs ...Constraint) Constraint {
	switch len(cs) {
	case 0:
		return FalseC{}
	case 1:
		return cs[0]
	}
	return Or{Left: cs[0], Right: OrOf(cs[1:]...)}
}

// Walk visits c and every descendant in pre-order, stopping early when
// fn returns false.
func Walk(c Constraint, fn func(Constraint) bool) bool {
	if c == nil {
		return true
	}
	if !fn(c) {
		return false
	}
	switch x := c.(type) {
	case And:
		return Walk(x.Left, fn) && Walk(x.Right, fn)
	case Or:
		return Walk(x.Left, fn) && Walk(x.Right, fn)
	case Not:
		return Walk(x.C, fn)
	}
	return true
}

// Atoms returns the distinct access patterns mentioned by the formula
// (atoms and both sides of orderings), in first-occurrence order.
func Atoms(c Constraint) []model.Access {
	var out []model.Access
	seen := map[model.Access]bool{}
	add := func(a model.Access) {
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	Walk(c, func(x Constraint) bool {
		switch y := x.(type) {
		case Atom:
			add(y.A)
		case Ordered:
			add(y.First)
			add(y.Second)
		}
		return true
	})
	return out
}

// Validate reports structural problems: nil children or inverted
// count bounds.
func Validate(c Constraint) error {
	if c == nil {
		return fmt.Errorf("srac: nil constraint")
	}
	var err error
	Walk(c, func(x Constraint) bool {
		switch y := x.(type) {
		case Count:
			if y.Min < 0 || y.Max < 0 {
				err = fmt.Errorf("srac: negative count bound [%d,%d]", y.Min, y.Max)
				return false
			}
			if y.Min > y.Max {
				err = fmt.Errorf("srac: empty count interval [%d,%d]", y.Min, y.Max)
				return false
			}
		case And:
			if y.Left == nil || y.Right == nil {
				err = fmt.Errorf("srac: conjunction with nil operand")
				return false
			}
		case Or:
			if y.Left == nil || y.Right == nil {
				err = fmt.Errorf("srac: disjunction with nil operand")
				return false
			}
		case Not:
			if y.C == nil {
				err = fmt.Errorf("srac: negation of nil")
				return false
			}
		}
		return true
	})
	return err
}

// String renders the constraint in the concrete syntax accepted by
// Parse:
//
//	T, F
//	[read f1 @ s1]                      atom
//	[read f1 @ s1] >> [write f2 @ s2]   ordering a1 ⊗ a2
//	count(0, 5, sigma[r=rsw])           #(0, 5, σ)
//	C and C, C or C, not C, C -> C
func String(c Constraint) string {
	var b strings.Builder
	printC(&b, c, 0)
	return b.String()
}

// Precedence: or < and < unary.
const (
	precOr = iota + 1
	precAnd
	precUnary
)

func printC(b *strings.Builder, c Constraint, prec int) {
	switch x := c.(type) {
	case nil:
		b.WriteString("<nil>")
	case TrueC:
		b.WriteString("T")
	case FalseC:
		b.WriteString("F")
	case Atom:
		printAccess(b, x.A)
	case Ordered:
		printAccess(b, x.First)
		b.WriteString(" >> ")
		printAccess(b, x.Second)
	case Count:
		if x.Max == Unbounded {
			fmt.Fprintf(b, "count(%d, inf, %s)", x.Min, x.Sel)
		} else {
			fmt.Fprintf(b, "count(%d, %d, %s)", x.Min, x.Max, x.Sel)
		}
	case And:
		// The parser builds left-associative chains, so a right
		// operand that is itself an And needs parentheses.
		if prec > precAnd {
			b.WriteString("(")
		}
		printC(b, x.Left, precAnd)
		b.WriteString(" and ")
		printC(b, x.Right, precAnd+1)
		if prec > precAnd {
			b.WriteString(")")
		}
	case Or:
		if prec > precOr {
			b.WriteString("(")
		}
		printC(b, x.Left, precOr)
		b.WriteString(" or ")
		printC(b, x.Right, precOr+1)
		if prec > precOr {
			b.WriteString(")")
		}
	case Not:
		b.WriteString("not ")
		printC(b, x.C, precUnary)
	default:
		fmt.Fprintf(b, "<constraint %T>", c)
	}
}

func printAccess(b *strings.Builder, a model.Access) {
	b.WriteString("[")
	if a.Object != "" {
		b.WriteString(string(a.Object))
		b.WriteString(": ")
	}
	op := string(a.Op)
	if op == "" {
		op = "*"
	}
	r := string(a.Resource)
	if r == "" {
		r = "*"
	}
	s := string(a.Server)
	if s == "" {
		s = "*"
	}
	fmt.Fprintf(b, "%s %s @ %s]", op, r, s)
}
