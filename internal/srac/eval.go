package srac

import (
	"stac/internal/model"
	"stac/internal/trace"
)

// ProofOracle answers whether an access has been successfully carried
// out, as attested by an execution proof (the Pr_x(·) of Section 2).
// The proof package's Store implements it; AllProven is used when
// constraints are evaluated against hypothetical traces.
type ProofOracle interface {
	// Proven reports whether an execution proof exists for the access.
	Proven(a model.Access) bool
}

// OracleFunc adapts a function to a ProofOracle.
type OracleFunc func(model.Access) bool

// Proven implements ProofOracle.
func (f OracleFunc) Proven(a model.Access) bool { return f(a) }

// AllProven is the oracle that attests every access — used when
// checking a program's *potential* traces, where proofs will be issued
// as the accesses are performed.
var AllProven ProofOracle = OracleFunc(func(model.Access) bool { return true })

// NoneProven attests no access.
var NoneProven ProofOracle = OracleFunc(func(model.Access) bool { return false })

// SatisfiesTrace implements the trace satisfaction relation t ⊨ C of
// Definition 3.6, relative to the execution-proof oracle pr:
//
//	t ⊨ T; t ⊭ F
//	t ⊨ a           iff a ∈ t and Pr(a)
//	t ⊨ a1 ⊗ a2     iff ∃ t1·t2 = t with a1 ∈ t1, a2 ∈ t2,
//	                    Pr(a1) and Pr(a2)
//	t ⊨ #(m,n,σ)    iff m ≤ |σ(t)| ≤ n, over proof-backed accesses
//	∧, ∨, ¬          as usual
//
// On the proof oracle and counting: Definition 3.6 writes |σ(t)| over
// the trace, but the model's premise (Section 2) is that a mobile
// object's claimed history is only credible where an execution proof
// attests it — which is why the atom and ordering cases require
// Pr(a). We read the counting atom the same way: #(m, n, σ) counts
// only the σ-selected accesses the oracle attests, through the shared
// countProven helper used by both SatisfiesTrace and EvalPrefix.
// Counting raw trace entries would let an unattested (e.g. replayed or
// fabricated) access consume a ceiling or satisfy a floor that the
// proof-carrying design says it must not. With the default AllProven
// oracle (hypothetical traces, static checking) the two readings
// coincide.
//
// Constraint atoms are access patterns: an atom with an empty
// component matches any access agreeing on the non-empty components.
// A nil oracle defaults to AllProven.
func SatisfiesTrace(t trace.Trace, c Constraint, pr ProofOracle) bool {
	if pr == nil {
		pr = AllProven
	}
	switch x := c.(type) {
	case TrueC:
		return true
	case FalseC:
		return false
	case Atom:
		return firstMatch(t, x.A, 0, pr) >= 0
	case Ordered:
		i := firstMatch(t, x.First, 0, pr)
		if i < 0 {
			return false
		}
		return firstMatch(t, x.Second, i+1, pr) >= 0
	case Count:
		n := countProven(t, x.Sel, pr)
		return n >= x.Min && n <= x.Max
	case And:
		return SatisfiesTrace(t, x.Left, pr) && SatisfiesTrace(t, x.Right, pr)
	case Or:
		return SatisfiesTrace(t, x.Left, pr) || SatisfiesTrace(t, x.Right, pr)
	case Not:
		return !SatisfiesTrace(t, x.C, pr)
	}
	return false
}

// countProven counts the proof-backed accesses in t selected by sel —
// the |σ(t)| of Definition 3.6 under the proof-carrying reading (see
// the SatisfiesTrace comment). Both SatisfiesTrace and EvalPrefix
// count through this helper so the two relations cannot drift.
func countProven(t trace.Trace, sel model.Selector, pr ProofOracle) int {
	n := 0
	for _, a := range t {
		if sel.SelectAccess(a) && pr.Proven(a) {
			n++
		}
	}
	return n
}

// firstMatch returns the index of the first access at or after from
// that matches the pattern and is attested by the oracle, or -1.
func firstMatch(t trace.Trace, pattern model.Access, from int, pr ProofOracle) int {
	for i := from; i < len(t); i++ {
		if pattern.Matches(t[i]) && pr.Proven(t[i]) {
			return i
		}
	}
	return -1
}

// SatisfiesAll reports whether every trace in the set satisfies the
// constraint — the universal ("Must") reading of Definition 3.7 used
// for enforcement.
func SatisfiesAll(s *trace.Set, c Constraint, pr ProofOracle) bool {
	for _, t := range s.Traces() {
		if !SatisfiesTrace(t, c, pr) {
			return false
		}
	}
	return true
}

// SatisfiesAny reports whether at least one trace in the set satisfies
// the constraint — the existential ("May") reading.
func SatisfiesAny(s *trace.Set, c Constraint, pr ProofOracle) bool {
	for _, t := range s.Traces() {
		if SatisfiesTrace(t, c, pr) {
			return true
		}
	}
	return false
}

// MentionsOtherObject reports whether the constraint references the
// access actions of a mobile object other than obj — a
// companion-coordinating constraint. Static program checking
// (Theorem 3.2) analyses ONE object's program and therefore cannot
// decide such constraints; enforcement falls back to the runtime
// history, which (with a coalition ledger) does include companions.
func MentionsOtherObject(c Constraint, obj model.ObjectID) bool {
	foreign := func(o model.ObjectID) bool { return o != "" && o != obj }
	found := false
	Walk(c, func(x Constraint) bool {
		switch y := x.(type) {
		case Atom:
			if foreign(y.A.Object) {
				found = true
			}
		case Ordered:
			if foreign(y.First.Object) || foreign(y.Second.Object) {
				found = true
			}
		case Count:
			for _, o := range y.Sel.Objects {
				if foreign(o) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// StampObject returns a copy of the constraint with every anonymous
// access pattern (and selector without object restriction) bound to
// the given mobile object. Policies are written object-neutrally and
// stamped at check time for the requesting object; patterns already
// naming an object are left alone so cross-object coordination
// constraints keep working.
func StampObject(c Constraint, o model.ObjectID) Constraint {
	stamp := func(a model.Access) model.Access {
		if a.Object == "" {
			a.Object = o
		}
		return a
	}
	switch x := c.(type) {
	case Atom:
		return Atom{A: stamp(x.A)}
	case Ordered:
		return Ordered{First: stamp(x.First), Second: stamp(x.Second)}
	case Count:
		if len(x.Sel.Objects) == 0 {
			x.Sel.Objects = []model.ObjectID{o}
		}
		return x
	case And:
		return And{Left: StampObject(x.Left, o), Right: StampObject(x.Right, o)}
	case Or:
		return Or{Left: StampObject(x.Left, o), Right: StampObject(x.Right, o)}
	case Not:
		return Not{C: StampObject(x.C, o)}
	}
	return c
}
