package srac

import (
	"math/rand"
	"testing"

	"stac/internal/model"
)

func TestParseConstants(t *testing.T) {
	if _, ok := MustParse("T").(TrueC); !ok {
		t.Fatal("T")
	}
	if _, ok := MustParse("F").(FalseC); !ok {
		t.Fatal("F")
	}
}

func TestParseAtom(t *testing.T) {
	c := MustParse("[read f1 @ s1]")
	a, ok := c.(Atom)
	if !ok {
		t.Fatalf("parsed %T", c)
	}
	want := model.Access{Op: "read", Resource: "f1", Server: "s1"}
	if a.A != want {
		t.Fatalf("atom = %+v", a.A)
	}
}

func TestParseAtomWithObjectAndWildcards(t *testing.T) {
	c := MustParse("[o1: * f1 @ *]")
	a := c.(Atom)
	if a.A.Object != "o1" || a.A.Op != "" || a.A.Resource != "f1" || a.A.Server != "" {
		t.Fatalf("atom = %+v", a.A)
	}
}

func TestParseOrdered(t *testing.T) {
	c := MustParse("[read f1 @ s1] >> [write f2 @ s2]")
	o, ok := c.(Ordered)
	if !ok {
		t.Fatalf("parsed %T", c)
	}
	if o.First.Resource != "f1" || o.Second.Resource != "f2" {
		t.Fatalf("ordered = %+v", o)
	}
}

func TestParseCount(t *testing.T) {
	c := MustParse("count(0, 5, sigma[r=rsw-licensed,rsw-trial])")
	n, ok := c.(Count)
	if !ok {
		t.Fatalf("parsed %T", c)
	}
	if n.Min != 0 || n.Max != 5 || len(n.Sel.Resources) != 2 {
		t.Fatalf("count = %+v", n)
	}
}

func TestParseCountInf(t *testing.T) {
	c := MustParse("count(2, inf, sigma[*])")
	n := c.(Count)
	if n.Min != 2 || n.Max != Unbounded || !n.Sel.Empty() {
		t.Fatalf("count = %+v", n)
	}
}

func TestParseSelectorFields(t *testing.T) {
	c := MustParse("count(0, 1, sigma[o=o1,o2; op=read; r=f1; s=s1,s2])")
	sel := c.(Count).Sel
	if len(sel.Objects) != 2 || len(sel.Ops) != 1 || len(sel.Resources) != 1 || len(sel.Servers) != 2 {
		t.Fatalf("selector = %+v", sel)
	}
}

func TestParseConnectivePrecedence(t *testing.T) {
	// or is lower than and: "a and b or c" = (a∧b)∨c.
	c := MustParse("[read f1 @ s1] and [read f2 @ s1] or T")
	if _, ok := c.(Or); !ok {
		t.Fatalf("top = %T, want Or", c)
	}
	// -> is lowest and right associative.
	c = MustParse("T -> F -> T")
	o, ok := c.(Or) // ¬T ∨ (F -> T)
	if !ok {
		t.Fatalf("top = %T, want Or (desugared implication)", c)
	}
	if _, ok := o.Left.(Not); !ok {
		t.Fatalf("implication did not desugar: left = %T", o.Left)
	}
}

func TestParseNot(t *testing.T) {
	c := MustParse("not [read f1 @ s1]")
	if _, ok := c.(Not); !ok {
		t.Fatalf("parsed %T", c)
	}
	c = MustParse("![read f1 @ s1]")
	if _, ok := c.(Not); !ok {
		t.Fatalf("parsed %T", c)
	}
}

func TestParseParens(t *testing.T) {
	c := MustParse("([read f1 @ s1] or F) and T")
	if _, ok := c.(And); !ok {
		t.Fatalf("parsed %T", c)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"[read f1 s1]",            // missing @
		"[read f1 @ s1",           // unclosed
		"[read f1 @ s1] >>",       // missing second access
		"count(0 5, sigma[*])",    // missing comma
		"count(x, 5, sigma[*])",   // non-integer
		"count(0, 5, sigma[q=1])", // bad field
		"count(5, 2, sigma[*])",   // inverted interval
		"count(-1, 2, sigma[*])",
		"T and",
		"or T",
		"T T",
		"count(0, 5, [read f @ s])", // selector required
		"[read f1 @ s1] %",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParse("(((")
}

func TestValidateDirect(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Fatal("nil constraint accepted")
	}
	if err := Validate(And{Left: TrueC{}}); err == nil {
		t.Fatal("nil operand accepted")
	}
	if err := Validate(Or{Right: TrueC{}}); err == nil {
		t.Fatal("nil operand accepted")
	}
	if err := Validate(Not{}); err == nil {
		t.Fatal("nil negand accepted")
	}
	if err := Validate(Count{Min: 3, Max: 1}); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if err := Validate(AndOf(TrueC{}, FalseC{}, Require(read1))); err != nil {
		t.Fatalf("valid constraint rejected: %v", err)
	}
}

func TestAndOfOrOf(t *testing.T) {
	if _, ok := AndOf().(TrueC); !ok {
		t.Fatal("AndOf() should be T")
	}
	if _, ok := OrOf().(FalseC); !ok {
		t.Fatal("OrOf() should be F")
	}
	if c := AndOf(FalseC{}); c != (Constraint)(FalseC{}) {
		t.Fatal("AndOf(c) should be c")
	}
	three := AndOf(TrueC{}, TrueC{}, TrueC{})
	if three.Size() != 5 {
		t.Fatalf("AndOf(T,T,T).Size = %d", three.Size())
	}
}

func TestAtomsCollector(t *testing.T) {
	c := MustParse("[read f1 @ s1] >> [write f2 @ s2] and [read f1 @ s1] or not [read f3 @ s1]")
	atoms := Atoms(c)
	if len(atoms) != 3 {
		t.Fatalf("Atoms = %v", atoms)
	}
}

func TestSizeCounts(t *testing.T) {
	tests := []struct {
		src  string
		want int
	}{
		{"T", 1},
		{"[read f1 @ s1]", 1},
		{"[read f1 @ s1] >> [write f2 @ s2]", 1},
		{"count(0, 5, sigma[*])", 1},
		{"T and F", 3},
		{"not T", 2},
		{"T -> F", 4}, // ¬T ∨ F
	}
	for _, tt := range tests {
		if got := MustParse(tt.src).Size(); got != tt.want {
			t.Errorf("Size(%q) = %d, want %d", tt.src, got, tt.want)
		}
	}
}

// randomConstraint builds a random constraint over a small access
// vocabulary for round-trip testing.
func randomConstraint(r *rand.Rand, depth int) Constraint {
	accs := []model.Access{
		{Op: "read", Resource: "f1", Server: "s1"},
		{Op: "write", Resource: "f2", Server: "s1"},
		{Object: "o1", Op: "read", Resource: "f3", Server: "s2"},
		{Op: "execute", Resource: "f4"}, // wildcard server
	}
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return TrueC{}
		case 1:
			return FalseC{}
		case 2:
			return Require(accs[r.Intn(len(accs))])
		case 3:
			return Before(accs[r.Intn(len(accs))], accs[r.Intn(len(accs))])
		default:
			lo := r.Intn(3)
			hi := lo + r.Intn(4)
			if r.Intn(4) == 0 {
				hi = Unbounded
			}
			sel := model.Selector{}
			if r.Intn(2) == 0 {
				sel.Ops = []model.Operation{"read"}
			}
			if r.Intn(2) == 0 {
				sel.Servers = []model.ServerID{"s1", "s2"}
			}
			return Count{Min: lo, Max: hi, Sel: sel}
		}
	}
	switch r.Intn(3) {
	case 0:
		return And{Left: randomConstraint(r, depth-1), Right: randomConstraint(r, depth-1)}
	case 1:
		return Or{Left: randomConstraint(r, depth-1), Right: randomConstraint(r, depth-1)}
	default:
		return Not{C: randomConstraint(r, depth-1)}
	}
}

// Property: parse(print(C)) is structurally identical to C.
func TestPrintParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 400; i++ {
		c := randomConstraint(r, 3)
		printed := String(c)
		d, err := Parse(printed)
		if err != nil {
			t.Fatalf("iteration %d: reparse of %q failed: %v", i, printed, err)
		}
		if String(d) != printed {
			t.Fatalf("iteration %d: round trip changed constraint:\n%s\nvs\n%s", i, printed, String(d))
		}
	}
}

func TestStringFixedForms(t *testing.T) {
	tests := []struct {
		c    Constraint
		want string
	}{
		{TrueC{}, "T"},
		{Require(model.Access{Op: "read", Resource: "f1", Server: "s1"}), "[read f1 @ s1]"},
		{Require(model.Access{Object: "o1", Op: "read", Resource: "f1", Server: "s1"}), "[o1: read f1 @ s1]"},
		{Require(model.Access{Resource: "f1"}), "[* f1 @ *]"},
		{AtMost(5, model.Selector{Resources: []model.ResourceID{"rsw"}}), "count(0, 5, sigma[r=rsw])"},
		{AtLeast(1, model.Selector{}), "count(1, inf, sigma[*])"},
		{And{Left: TrueC{}, Right: FalseC{}}, "T and F"},
		{Or{Left: And{Left: TrueC{}, Right: TrueC{}}, Right: FalseC{}}, "T and T or F"},
		{And{Left: Or{Left: TrueC{}, Right: TrueC{}}, Right: FalseC{}}, "(T or T) and F"},
		{Not{C: And{Left: TrueC{}, Right: TrueC{}}}, "not (T and T)"},
	}
	for _, tt := range tests {
		if got := String(tt.c); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}
