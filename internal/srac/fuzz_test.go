package srac

import (
	"testing"

	"stac/internal/trace"
)

// FuzzParse checks that the SRAC parser never panics and accepted
// constraints round-trip through the printer.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"T", "F",
		"[read f1 @ s1]",
		"[o1: * f1 @ *] >> [write f2 @ s2]",
		"count(0, 5, sigma[r=rsw-licensed,rsw-trial])",
		"count(2, inf, sigma[*])",
		"not T and F or [read f @ s] -> T",
		"count(0, 1, sigma[o=o1,o2; op=read; r=f1; s=s1,s2])",
		"[[", "count(", "sigma", ">>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return
		}
		printed := String(c)
		d, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its printed form %q: %v", src, printed, err)
		}
		if String(d) != printed {
			t.Fatalf("round trip changed constraint: %q -> %q -> %q", src, printed, String(d))
		}
		// Evaluation must be total on any accepted constraint.
		_ = SatisfiesTrace(trace.Empty, c, nil)
		_ = EvalPrefix(trace.Empty, c, nil)
	})
}
