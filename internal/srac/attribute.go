package srac

// Violation attribution: given the three-valued prefix status of a
// constraint, pinpoint the subformula responsible for it. Aggregate
// enforcement (PR 2's counters) can say *that* a denial happened;
// attribution says *which* clause of the policy made it irreversible —
// the property Combi et al. argue temporal-constraint systems need to
// be trustworthy at all.
//
// Attribute must agree with EvalPrefixStable exactly: its Status and
// Stable fields are defined to equal the engine's verdict, and the
// equivalence is property-tested over a formula corpus. The clause it
// reports is a genuine witness — for a Violated conjunction it is the
// violated conjunct (recursively), for a Violated disjunction both
// disjuncts are dead so the disjunction itself is reported, and for a
// negation the blame lies with the stably satisfied operand.

import (
	"fmt"
	"strings"

	"stac/internal/trace"
)

// CountWindow is the observable state of one counting atom
// #(m, n, σ): how many proof-backed accesses σ has selected so far
// versus the window it must land in. Max is -1 in JSON when the
// ceiling is unbounded.
type CountWindow struct {
	Selector string `json:"selector"`
	Min      int    `json:"min"`
	Max      int    `json:"max"`
	Observed int    `json:"observed"`
}

// String renders e.g. "sigma[rsw]: observed 3 of window [0,5]".
func (cw CountWindow) String() string {
	max := "inf"
	if cw.Max >= 0 {
		max = fmt.Sprintf("%d", cw.Max)
	}
	return fmt.Sprintf("%s: observed %d of window [%d,%s]", cw.Selector, cw.Observed, cw.Min, max)
}

// Attribution is the explained outcome of a prefix evaluation.
type Attribution struct {
	// Status and Stable equal EvalPrefixStable's verdict on the whole
	// constraint.
	Status Status
	Stable bool
	// Clause is the subformula the verdict is attributed to: for
	// Violated, the smallest subformula whose violation forces the
	// whole constraint's; for Satisfied, a witness subformula; for
	// Pending, the subformula still awaited.
	Clause Constraint
	// Detail is a one-line human reading of why Clause has its status.
	Detail string
	// Counts is the window state of every counting atom inside Clause,
	// so a count-driven denial carries its [m,n] numbers.
	Counts []CountWindow
}

// ClauseString renders the attributed clause in the concrete syntax
// ("" when there is none).
func (a Attribution) ClauseString() string {
	if a.Clause == nil {
		return ""
	}
	return String(a.Clause)
}

// LeafEval evaluates one leaf construct (TrueC, FalseC, Atom, Ordered,
// Count) and describes the outcome. It lets AttributeWith mirror
// either evaluation mode: the trace-scan leaves of EvalPrefix or the
// engine's incremental counters.
type LeafEval func(c Constraint) (status Status, stable bool, detail string)

// mergeCounts combines the observed count windows of two subresults
// (attribution and coverage share it). Constraints without counting
// atoms — the common case — merge empty against empty, which costs no
// allocation; a fresh slice is only built when either side observed
// windows, so neither input is ever aliased or mutated.
func mergeCounts(l, r []CountWindow) []CountWindow {
	if len(l) == 0 && len(r) == 0 {
		return nil
	}
	out := make([]CountWindow, 0, len(l)+len(r))
	return append(append(out, l...), r...)
}

// AttributeWith explains a constraint's prefix status using the given
// leaf evaluator for the atomic constructs. The connective logic is a
// transcription of evalPrefix, so (Status, Stable) match it exactly.
func AttributeWith(c Constraint, leaf LeafEval) Attribution {
	switch x := c.(type) {
	case And:
		l := AttributeWith(x.Left, leaf)
		r := AttributeWith(x.Right, leaf)
		switch {
		case l.Status == Violated:
			return l
		case r.Status == Violated:
			return r
		case l.Status == Satisfied && r.Status == Satisfied:
			return Attribution{
				Status: Satisfied, Stable: l.Stable && r.Stable,
				Clause: c, Detail: "both conjuncts satisfied",
				Counts: mergeCounts(l.Counts, r.Counts),
			}
		case l.Status == Pending:
			l.Status = Pending
			l.Stable = false
			return l
		default:
			r.Status = Pending
			r.Stable = false
			return r
		}
	case Or:
		l := AttributeWith(x.Left, leaf)
		r := AttributeWith(x.Right, leaf)
		switch {
		// Prefer a stably satisfied disjunct so Stable matches
		// evalPrefix's (l==Sat&&lst) || (r==Sat&&rst).
		case l.Status == Satisfied && l.Stable:
			return l
		case r.Status == Satisfied && r.Stable:
			return r
		case l.Status == Satisfied:
			return l
		case r.Status == Satisfied:
			return r
		case l.Status == Violated && r.Status == Violated:
			// Both alternatives are dead: the disjunction as a whole is
			// the violated clause.
			return Attribution{
				Status: Violated, Stable: true, Clause: c,
				Detail: fmt.Sprintf("both alternatives violated: %s; %s", l.Detail, r.Detail),
				Counts: mergeCounts(l.Counts, r.Counts),
			}
		case l.Status == Pending:
			l.Status = Pending
			l.Stable = false
			return l
		default:
			r.Status = Pending
			r.Stable = false
			return r
		}
	case Not:
		in := AttributeWith(x.C, leaf)
		st, stable := NegateStable(in.Status, in.Stable)
		out := Attribution{Status: st, Stable: stable, Clause: c, Counts: in.Counts}
		switch st {
		case Violated:
			// ¬C is irreversibly violated because C is stably satisfied;
			// blame the negation but carry the inner witness.
			out.Detail = fmt.Sprintf("negated subformula stably satisfied (%s)", in.Detail)
		case Satisfied:
			out.Detail = fmt.Sprintf("negated subformula violated (%s)", in.Detail)
		default:
			if in.Status == Satisfied {
				out.Detail = fmt.Sprintf("negated subformula satisfied but not stably (%s)", in.Detail)
			} else {
				out.Detail = fmt.Sprintf("negated subformula still pending (%s)", in.Detail)
			}
		}
		return out
	default:
		st, stable, detail := leaf(c)
		a := Attribution{Status: st, Stable: stable, Clause: c, Detail: detail}
		if cnt, ok := c.(Count); ok {
			max := cnt.Max
			if max == Unbounded {
				max = -1
			}
			a.Counts = []CountWindow{{Selector: cnt.Sel.String(), Min: cnt.Min, Max: max, Observed: -1}}
		}
		return a
	}
}

// Attribute explains the prefix status of c over the history t — the
// attribution counterpart of EvalPrefixStable, with identical Status
// and Stable.
func Attribute(t trace.Trace, c Constraint, pr ProofOracle) Attribution {
	return AttributeWith(c, TraceLeafEval(t, pr)).withObserved(t, pr)
}

// countLeafStatus is the detail-free verdict for a counting atom
// given its observed proof-backed count — the cost walk's leaf
// evaluators use it directly so sampled timings don't pay for
// explanation formatting.
func countLeafStatus(x Count, n int) (Status, bool) {
	switch {
	case n > x.Max:
		return Violated, true
	case n >= x.Min:
		if x.Max == Unbounded {
			return Satisfied, true
		}
		return Satisfied, false
	default:
		return Pending, false
	}
}

// countLeaf is the shared leaf verdict for a counting atom given its
// observed proof-backed count — used by both the trace-scan
// attribution here and the engine's incremental-counter attribution.
func countLeaf(x Count, n int) (Status, bool, string) {
	switch st, _ := countLeafStatus(x, n); {
	case st == Violated:
		return Violated, true,
			fmt.Sprintf("count %d exceeds ceiling %d of window [%d,%d] for %s",
				n, x.Max, x.Min, x.Max, x.Sel)
	case st == Satisfied:
		if x.Max == Unbounded {
			return Satisfied, true,
				fmt.Sprintf("count %d meets floor %d (no ceiling) for %s", n, x.Min, x.Sel)
		}
		return Satisfied, false,
			fmt.Sprintf("count %d within window [%d,%d] for %s (extensions may exceed it)",
				n, x.Min, x.Max, x.Sel)
	default:
		return Pending, false,
			fmt.Sprintf("count %d below floor %d of window [%d,%d] for %s",
				n, x.Min, x.Min, x.Max, x.Sel)
	}
}

// CountLeafEval adapts a counting function (selector → observed count)
// into a LeafEval for formulas whose leaves are all counting atoms —
// the engine's incremental evaluation path.
func CountLeafEval(count func(Count) int) LeafEval {
	return func(leaf Constraint) (Status, bool, string) {
		switch x := leaf.(type) {
		case TrueC:
			return Satisfied, true, "constant T"
		case FalseC:
			return Violated, true, "constant F"
		case Count:
			return countLeaf(x, count(x))
		}
		return Pending, false, fmt.Sprintf("non-counting leaf %T outside incremental mode", leaf)
	}
}

// withObserved fills in the Observed field of every count window by
// re-counting against the history (the leaf path records the window
// but not the count, which only the leaf detail carries).
func (a Attribution) withObserved(t trace.Trace, pr ProofOracle) Attribution {
	if len(a.Counts) == 0 || a.Clause == nil {
		return a
	}
	a.Counts = CollectCounts(t, a.Clause, pr)
	return a
}

// CollectCounts returns the window state of every counting atom inside
// c, in pre-order, counted against the history t.
func CollectCounts(t trace.Trace, c Constraint, pr ProofOracle) []CountWindow {
	if pr == nil {
		pr = AllProven
	}
	var out []CountWindow
	Walk(c, func(x Constraint) bool {
		if cnt, ok := x.(Count); ok {
			max := cnt.Max
			if max == Unbounded {
				max = -1
			}
			out = append(out, CountWindow{
				Selector: cnt.Sel.String(),
				Min:      cnt.Min,
				Max:      max,
				Observed: countProven(t, cnt.Sel, pr),
			})
		}
		return true
	})
	return out
}

// Summary renders the attribution on one line, e.g.
// "violated: count(0, 2, sigma[rsw]) — count 3 exceeds ceiling 2 ...".
func (a Attribution) Summary() string {
	var b strings.Builder
	b.WriteString(a.Status.String())
	if a.Clause != nil {
		b.WriteString(": ")
		b.WriteString(String(a.Clause))
	}
	if a.Detail != "" {
		b.WriteString(" — ")
		b.WriteString(a.Detail)
	}
	return b.String()
}
