package srac

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"stac/internal/model"
)

// Parse parses a constraint in the concrete SRAC syntax:
//
//	C      := orExpr [ "->" C ]               (implication, right assoc)
//	orExpr := andExpr { "or" andExpr }
//	andExpr:= unary { "and" unary }
//	unary  := "not" unary | "!" unary | atom
//	atom   := "T" | "F" | "(" C ")"
//	        | access [ ">>" access ]          (atom / ordering a1 ⊗ a2)
//	        | "count" "(" INT "," (INT|"inf") "," selector ")"
//	access := "[" [IDENT ":"] opPat IDENT|"*" "@" IDENT|"*" "]"
//	selector := "sigma" "[" "*" "]"
//	          | "sigma" "[" field "=" ids { ";" field "=" ids } "]"
//	            with field ∈ {o, op, r, s} and ids a comma list
//
// Components written "*" are wildcards (match any value). Example
// (the restricted-software rule of Example 3.5):
//
//	count(0, 5, sigma[r=rsw-licensed,rsw-trial])
func Parse(src string) (Constraint, error) {
	toks, err := lexC(src)
	if err != nil {
		return nil, err
	}
	p := &cparser{toks: toks}
	c, err := p.parseImplies()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, p.errorf("unexpected %q after constraint", p.peek().text)
	}
	if err := Validate(c); err != nil {
		return nil, err
	}
	return c, nil
}

// MustParse is Parse that panics on error — for tests and fixtures.
func MustParse(src string) Constraint {
	c, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return c
}

type ctok struct {
	kind int // 0 EOF, 1 ident/int, 2 punct
	text string
	pos  int
}

const (
	ckEOF = iota
	ckWord
	ckPunct
)

func lexC(src string) ([]ctok, error) {
	var toks []ctok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#' && strings.HasPrefix(src[i:], "##"): // ## comment
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isWordStart(rune(c)):
			j := i
			for j < len(src) && isWordRune(rune(src[j])) {
				j++
			}
			toks = append(toks, ctok{ckWord, src[i:j], i})
			i = j
		default:
			if strings.HasPrefix(src[i:], ">>") || strings.HasPrefix(src[i:], "->") {
				toks = append(toks, ctok{ckPunct, src[i : i+2], i})
				i += 2
				continue
			}
			switch c {
			case '[', ']', '(', ')', ',', ';', '=', '@', '*', ':', '!':
				toks = append(toks, ctok{ckPunct, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("srac: illegal character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, ctok{ckEOF, "", len(src)})
	return toks, nil
}

func isWordStart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) ||
		r == '_' || r == '-' || r == '.' || r == '/'
}

type cparser struct {
	toks []ctok
	pos  int
}

func (p *cparser) peek() ctok { return p.toks[p.pos] }
func (p *cparser) next() ctok { t := p.toks[p.pos]; p.pos++; return t }
func (p *cparser) eof() bool  { return p.peek().kind == ckEOF }

func (p *cparser) errorf(format string, args ...any) error {
	return fmt.Errorf("srac: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *cparser) acceptPunct(text string) bool {
	if t := p.peek(); t.kind == ckPunct && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *cparser) expectPunct(text string) error {
	if !p.acceptPunct(text) {
		return p.errorf("expected %q, found %q", text, p.peek().text)
	}
	return nil
}

func (p *cparser) acceptWord(w string) bool {
	if t := p.peek(); t.kind == ckWord && t.text == w {
		p.pos++
		return true
	}
	return false
}

func (p *cparser) parseImplies() (Constraint, error) {
	left, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.acceptPunct("->") {
		right, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		return Implies(left, right), nil
	}
	return left, nil
}

func (p *cparser) parseOr() (Constraint, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptWord("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Or{Left: left, Right: right}
	}
	return left, nil
}

func (p *cparser) parseAnd() (Constraint, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptWord("and") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = And{Left: left, Right: right}
	}
	return left, nil
}

func (p *cparser) parseUnary() (Constraint, error) {
	if p.acceptWord("not") || p.acceptPunct("!") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{C: inner}, nil
	}
	return p.parseAtom()
}

func (p *cparser) parseAtom() (Constraint, error) {
	t := p.peek()
	switch {
	case t.kind == ckWord && t.text == "T":
		p.pos++
		return TrueC{}, nil
	case t.kind == ckWord && t.text == "F":
		p.pos++
		return FalseC{}, nil
	case t.kind == ckPunct && t.text == "(":
		p.pos++
		inner, err := p.parseImplies()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == ckWord && t.text == "count":
		return p.parseCount()
	case t.kind == ckPunct && t.text == "[":
		first, err := p.parseAccess()
		if err != nil {
			return nil, err
		}
		if p.acceptPunct(">>") {
			second, err := p.parseAccess()
			if err != nil {
				return nil, err
			}
			return Ordered{First: first, Second: second}, nil
		}
		return Atom{A: first}, nil
	}
	return nil, p.errorf("expected constraint, found %q", t.text)
}

// parseAccess parses "[ [obj:] op r @ s ]" with "*" wildcards.
func (p *cparser) parseAccess() (model.Access, error) {
	var a model.Access
	if err := p.expectPunct("["); err != nil {
		return a, err
	}
	first, err := p.wordOrStar()
	if err != nil {
		return a, err
	}
	if p.acceptPunct(":") {
		a.Object = model.ObjectID(first)
		first, err = p.wordOrStar()
		if err != nil {
			return a, err
		}
	}
	a.Op = model.Operation(first)
	r, err := p.wordOrStar()
	if err != nil {
		return a, err
	}
	a.Resource = model.ResourceID(r)
	if err := p.expectPunct("@"); err != nil {
		return a, err
	}
	s, err := p.wordOrStar()
	if err != nil {
		return a, err
	}
	a.Server = model.ServerID(s)
	if err := p.expectPunct("]"); err != nil {
		return a, err
	}
	return a, nil
}

// wordOrStar consumes an identifier or the "*" wildcard; "*" yields
// the empty string (match-any).
func (p *cparser) wordOrStar() (string, error) {
	t := p.peek()
	if t.kind == ckPunct && t.text == "*" {
		p.pos++
		return "", nil
	}
	if t.kind != ckWord {
		return "", p.errorf("expected identifier or \"*\", found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *cparser) parseCount() (Constraint, error) {
	p.next() // "count"
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	minTok := p.peek()
	minVal, err := strconv.Atoi(minTok.text)
	if err != nil || minTok.kind != ckWord {
		return nil, p.errorf("expected lower bound integer, found %q", minTok.text)
	}
	p.pos++
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	maxTok := p.peek()
	maxVal := 0
	if maxTok.kind == ckWord && maxTok.text == "inf" {
		maxVal = Unbounded
		p.pos++
	} else {
		maxVal, err = strconv.Atoi(maxTok.text)
		if err != nil || maxTok.kind != ckWord {
			return nil, p.errorf("expected upper bound integer or \"inf\", found %q", maxTok.text)
		}
		p.pos++
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	sel, err := p.parseSelector()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return Count{Min: minVal, Max: maxVal, Sel: sel}, nil
}

func (p *cparser) parseSelector() (model.Selector, error) {
	var sel model.Selector
	if !p.acceptWord("sigma") {
		return sel, p.errorf("expected \"sigma\", found %q", p.peek().text)
	}
	if err := p.expectPunct("["); err != nil {
		return sel, err
	}
	if p.acceptPunct("*") {
		return sel, p.expectPunct("]")
	}
	if p.acceptPunct("]") {
		return sel, nil
	}
	for {
		field := p.peek()
		if field.kind != ckWord {
			return sel, p.errorf("expected selector field, found %q", field.text)
		}
		p.pos++
		if err := p.expectPunct("="); err != nil {
			return sel, err
		}
		ids, err := p.parseIDList()
		if err != nil {
			return sel, err
		}
		switch field.text {
		case "o":
			for _, id := range ids {
				sel.Objects = append(sel.Objects, model.ObjectID(id))
			}
		case "op":
			for _, id := range ids {
				sel.Ops = append(sel.Ops, model.Operation(id))
			}
		case "r":
			for _, id := range ids {
				sel.Resources = append(sel.Resources, model.ResourceID(id))
			}
		case "s":
			for _, id := range ids {
				sel.Servers = append(sel.Servers, model.ServerID(id))
			}
		default:
			return sel, p.errorf("unknown selector field %q (want o, op, r or s)", field.text)
		}
		if p.acceptPunct(";") {
			continue
		}
		return sel, p.expectPunct("]")
	}
}

func (p *cparser) parseIDList() ([]string, error) {
	var ids []string
	for {
		t := p.peek()
		if t.kind != ckWord {
			return nil, p.errorf("expected identifier, found %q", t.text)
		}
		p.pos++
		ids = append(ids, t.text)
		if !p.acceptPunct(",") {
			return ids, nil
		}
	}
}
