package srac

import (
	"math/rand"
	"testing"

	"stac/internal/model"
	"stac/internal/trace"
)

func TestSimplifyFixedConstraints(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{"T and [read f @ s]", "[read f @ s]"},
		{"[read f @ s] and T", "[read f @ s]"},
		{"F and [read f @ s]", "F"},
		{"T or [read f @ s]", "T"},
		{"F or [read f @ s]", "[read f @ s]"},
		{"not T", "F"},
		{"not not [read f @ s]", "[read f @ s]"},
		{"not not not F", "T"},
		{"[read f @ s] and [read f @ s]", "[read f @ s]"},
		{"[read f @ s] or [read f @ s]", "[read f @ s]"},
		{"count(0, inf, sigma[*])", "T"},
		{"count(1, inf, sigma[*])", "count(1, inf, sigma[*])"},
		// Implication desugars then simplifies: T -> C = ¬T ∨ C = C.
		{"T -> [read f @ s]", "[read f @ s]"},
		{"F -> [read f @ s]", "T"},
		// Nested propagation.
		{"(T and T) or F", "T"},
	}
	for _, tt := range tests {
		got := String(Simplify(MustParse(tt.src)))
		if got != tt.want {
			t.Errorf("Simplify(%q) = %q, want %q", tt.src, got, tt.want)
		}
	}
}

// Property: simplification preserves trace satisfaction and prefix
// status on random traces, and never grows the constraint.
func TestSimplifyEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	pool := []model.Access{
		model.NewAccess("o1", "read", "f1", "s1"),
		model.NewAccess("o1", "write", "f2", "s1"),
		model.NewAccess("o1", "execute", "rsw", "s2"),
	}
	for i := 0; i < 400; i++ {
		c := randomConstraint(r, 3)
		s := Simplify(c)
		if err := Validate(s); err != nil {
			t.Fatalf("iteration %d: simplified constraint invalid: %v", i, err)
		}
		if s.Size() > c.Size() {
			t.Fatalf("iteration %d: simplification grew: %d -> %d\n%s", i, c.Size(), s.Size(), String(c))
		}
		for trial := 0; trial < 10; trial++ {
			var tr trace.Trace
			for j := 0; j < r.Intn(6); j++ {
				tr = append(tr, pool[r.Intn(len(pool))])
			}
			if SatisfiesTrace(tr, c, nil) != SatisfiesTrace(tr, s, nil) {
				t.Fatalf("iteration %d: satisfaction changed on %v:\n%s\nvs\n%s",
					i, tr, String(c), String(s))
			}
			if EvalPrefix(tr, c, nil) != EvalPrefix(tr, s, nil) {
				t.Fatalf("iteration %d: prefix status changed on %v:\n%s\nvs\n%s",
					i, tr, String(c), String(s))
			}
		}
	}
}

// Property: simplification is idempotent.
func TestSimplifyConstraintIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for i := 0; i < 200; i++ {
		c := Simplify(randomConstraint(r, 3))
		if String(Simplify(c)) != String(c) {
			t.Fatalf("iteration %d: not idempotent: %s", i, String(c))
		}
	}
}
