package srac

import (
	"math/rand"
	"testing"

	"stac/internal/model"
	"stac/internal/trace"
)

func TestStatusString(t *testing.T) {
	if Satisfied.String() != "satisfied" || Violated.String() != "violated" || Pending.String() != "pending" {
		t.Fatal("status strings")
	}
}

func TestEvalPrefixAtom(t *testing.T) {
	a := model.Access{Op: "read", Resource: "f1", Server: "s1"}
	if got := EvalPrefix(trace.Empty, Require(a), nil); got != Pending {
		t.Fatalf("empty history atom = %v", got)
	}
	hist := trace.Trace{model.NewAccess("o1", "read", "f1", "s1")}
	if got := EvalPrefix(hist, Require(a), nil); got != Satisfied {
		t.Fatalf("present atom = %v", got)
	}
	if got := EvalPrefix(hist, Require(a), NoneProven); got != Pending {
		t.Fatalf("unproven atom = %v", got)
	}
}

func TestEvalPrefixOrdered(t *testing.T) {
	a1 := model.Access{Op: "read", Resource: "dep"}
	a2 := model.Access{Op: "read", Resource: "mod"}
	c := Before(a1, a2)
	if got := EvalPrefix(trace.Empty, c, nil); got != Pending {
		t.Fatalf("empty = %v", got)
	}
	wrong := trace.Trace{
		model.NewAccess("o1", "read", "mod", "s1"),
		model.NewAccess("o1", "read", "dep", "s1"),
	}
	// Reverse order so far: still pending (mod can be read again after dep).
	if got := EvalPrefix(wrong, c, nil); got != Pending {
		t.Fatalf("reversed = %v", got)
	}
	right := wrong.Concat(trace.Trace{model.NewAccess("o1", "read", "mod", "s2")})
	if got := EvalPrefix(right, c, nil); got != Satisfied {
		t.Fatalf("witnessed = %v", got)
	}
}

func TestEvalPrefixCount(t *testing.T) {
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	c := Count{Min: 1, Max: 2, Sel: sel}
	a := model.NewAccess("o1", "execute", "rsw", "s1")
	if got := EvalPrefix(trace.Empty, c, nil); got != Pending {
		t.Fatalf("below min = %v", got)
	}
	if got := EvalPrefix(trace.Trace{a}, c, nil); got != Satisfied {
		t.Fatalf("in range = %v", got)
	}
	if got := EvalPrefix(trace.Trace{a, a, a}, c, nil); got != Violated {
		t.Fatalf("over max = %v", got)
	}
}

func TestEvalPrefixConnectives(t *testing.T) {
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	over := Count{Min: 0, Max: 0, Sel: sel} // violated once rsw accessed
	atom := Require(model.Access{Resource: "f1"})
	a := model.NewAccess("o1", "execute", "rsw", "s1")
	hist := trace.Trace{a}

	if got := EvalPrefix(hist, And{Left: over, Right: TrueC{}}, nil); got != Violated {
		t.Fatalf("violated ∧ T = %v", got)
	}
	if got := EvalPrefix(hist, Or{Left: over, Right: TrueC{}}, nil); got != Satisfied {
		t.Fatalf("violated ∨ T = %v", got)
	}
	if got := EvalPrefix(hist, Or{Left: over, Right: FalseC{}}, nil); got != Violated {
		t.Fatalf("violated ∨ F = %v", got)
	}
	if got := EvalPrefix(hist, Or{Left: over, Right: atom}, nil); got != Pending {
		t.Fatalf("violated ∨ pending = %v", got)
	}
	if got := EvalPrefix(hist, Not{C: over}, nil); got != Satisfied {
		t.Fatalf("¬violated = %v", got)
	}
	if got := EvalPrefix(hist, Not{C: atom}, nil); got != Pending {
		t.Fatalf("¬pending = %v", got)
	}
	if got := EvalPrefix(hist, Not{C: TrueC{}}, nil); got != Violated {
		t.Fatalf("¬T = %v", got)
	}
}

func TestAdmitsExtension(t *testing.T) {
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	c := AtMost(1, sel)
	a := model.NewAccess("o1", "execute", "rsw", "s1")
	if !AdmitsExtension(trace.Trace{a}, c, nil) {
		t.Fatal("at ceiling should still admit")
	}
	if AdmitsExtension(trace.Trace{a, a}, c, nil) {
		t.Fatal("over ceiling should not admit")
	}
}

func TestHypotheticalOracle(t *testing.T) {
	pending := model.NewAccess("o1", "read", "f1", "s1")
	other := model.NewAccess("o1", "read", "f2", "s1")
	base := OracleFunc(func(a model.Access) bool { return a == other })
	h := HypotheticalOracle(base, pending)
	if !h.Proven(pending) || !h.Proven(other) {
		t.Fatal("hypothetical oracle missing accesses")
	}
	if h.Proven(model.NewAccess("o1", "read", "f3", "s1")) {
		t.Fatal("hypothetical oracle over-proves")
	}
	hn := HypotheticalOracle(nil, pending)
	if !hn.Proven(other) {
		t.Fatal("nil base should default to AllProven")
	}
}

// Property: prefix evaluation is consistent with full trace
// satisfaction — Satisfied prefixes of count/atom/ordering formulas
// without negation satisfy the constraint as completed traces, and
// Violated prefixes never do (for any extension, checked on a few
// random extensions).
func TestEvalPrefixConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	pool := []model.Access{
		model.NewAccess("o1", "read", "f1", "s1"),
		model.NewAccess("o1", "write", "f2", "s1"),
		model.NewAccess("o1", "execute", "rsw", "s2"),
	}
	for i := 0; i < 300; i++ {
		var hist trace.Trace
		for j := 0; j < r.Intn(6); j++ {
			hist = append(hist, pool[r.Intn(len(pool))])
		}
		c := randomConjunctiveConstraint(r, 2)
		status := EvalPrefix(hist, c, nil)
		sat := SatisfiesTrace(hist, c, nil)
		switch status {
		case Satisfied:
			if !sat {
				t.Fatalf("Satisfied prefix does not satisfy as trace: %v vs %s", hist, String(c))
			}
		case Violated:
			// No extension may satisfy: try several random ones.
			for k := 0; k < 10; k++ {
				ext := hist.Clone()
				for j := 0; j < r.Intn(5); j++ {
					ext = append(ext, pool[r.Intn(len(pool))])
				}
				if SatisfiesTrace(ext, c, nil) {
					t.Fatalf("Violated prefix has satisfying extension:\nhist %v\next %v\nC %s",
						hist, ext, String(c))
				}
			}
		}
	}
}
