package srac

// Simplify returns a logically equivalent constraint in a simpler
// form, applying the classical propositional identities:
//
//	T ∧ C = C    F ∧ C = F    T ∨ C = T    F ∨ C = C
//	¬¬C = C      ¬T = F       ¬F = T
//	C ∧ C = C    C ∨ C = C    (syntactic idempotence)
//
// and normalising trivially decided counting atoms:
//
//	#(0, ∞, σ) = T      (no restriction)
//
// Equivalence is with respect to trace satisfaction (Definition 3.6):
// for every trace t and oracle pr, t ⊨ C iff t ⊨ Simplify(C). The
// prefix-evaluation status is also preserved, because the identities
// hold in the three-valued reading as well.
func Simplify(c Constraint) Constraint {
	switch x := c.(type) {
	case And:
		l := Simplify(x.Left)
		r := Simplify(x.Right)
		if isFalse(l) || isFalse(r) {
			return FalseC{}
		}
		if isTrue(l) {
			return r
		}
		if isTrue(r) {
			return l
		}
		if String(l) == String(r) {
			return l
		}
		return And{Left: l, Right: r}
	case Or:
		l := Simplify(x.Left)
		r := Simplify(x.Right)
		if isTrue(l) || isTrue(r) {
			return TrueC{}
		}
		if isFalse(l) {
			return r
		}
		if isFalse(r) {
			return l
		}
		if String(l) == String(r) {
			return l
		}
		return Or{Left: l, Right: r}
	case Not:
		inner := Simplify(x.C)
		switch y := inner.(type) {
		case TrueC:
			return FalseC{}
		case FalseC:
			return TrueC{}
		case Not:
			return y.C
		}
		return Not{C: inner}
	case Count:
		if x.Min <= 0 && x.Max == Unbounded {
			return TrueC{}
		}
		return x
	default:
		return c
	}
}

func isTrue(c Constraint) bool {
	_, ok := c.(TrueC)
	return ok
}

func isFalse(c Constraint) bool {
	_, ok := c.(FalseC)
	return ok
}
