package srac

// Simplify returns a logically equivalent constraint in a simpler
// form, applying the classical propositional identities:
//
//	T ∧ C = C    F ∧ C = F    T ∨ C = T    F ∨ C = C
//	¬¬C = C      ¬T = F       ¬F = T
//	C ∧ C = C    C ∨ C = C    (syntactic idempotence)
//
// and normalising trivially decided counting atoms:
//
//	#(0, ∞, σ) = T      (no restriction)
//
// Equivalence is with respect to trace satisfaction (Definition 3.6):
// for every trace t and oracle pr, t ⊨ C iff t ⊨ Simplify(C). The
// prefix-evaluation status is also preserved. For ¬¬C = C that takes
// care: when C contains a counting atom with a finite ceiling, C can
// be Satisfied-but-unstable, where the sound negation (NegateStable)
// makes ¬¬C only Pending — so double-negation elimination is applied
// only when satisfactionStable reports every Satisfied verdict of C is
// stable.
func Simplify(c Constraint) Constraint {
	switch x := c.(type) {
	case And:
		l := Simplify(x.Left)
		r := Simplify(x.Right)
		if isFalse(l) || isFalse(r) {
			return FalseC{}
		}
		if isTrue(l) {
			return r
		}
		if isTrue(r) {
			return l
		}
		if String(l) == String(r) {
			return l
		}
		return And{Left: l, Right: r}
	case Or:
		l := Simplify(x.Left)
		r := Simplify(x.Right)
		if isTrue(l) || isTrue(r) {
			return TrueC{}
		}
		if isFalse(l) {
			return r
		}
		if isFalse(r) {
			return l
		}
		if String(l) == String(r) {
			return l
		}
		return Or{Left: l, Right: r}
	case Not:
		inner := Simplify(x.C)
		switch y := inner.(type) {
		case TrueC:
			return FalseC{}
		case FalseC:
			return TrueC{}
		case Not:
			if satisfactionStable(y.C) {
				return y.C
			}
		}
		return Not{C: inner}
	case Count:
		if x.Min <= 0 && x.Max == Unbounded {
			return TrueC{}
		}
		return x
	default:
		return c
	}
}

// satisfactionStable reports whether every Satisfied prefix verdict
// the constraint can produce is stable under trace extension — true
// exactly when no counting atom carries a finite ceiling (witnessed
// atoms and orderings cannot be un-witnessed, and an unbounded count
// cannot be pushed over a ceiling). For such constraints ¬¬C = C also
// holds in the three-valued prefix reading.
func satisfactionStable(c Constraint) bool {
	ok := true
	Walk(c, func(x Constraint) bool {
		if cnt, isCnt := x.(Count); isCnt && cnt.Max != Unbounded {
			ok = false
			return false
		}
		return true
	})
	return ok
}

func isTrue(c Constraint) bool {
	_, ok := c.(TrueC)
	return ok
}

func isFalse(c Constraint) bool {
	_, ok := c.(FalseC)
	return ok
}
