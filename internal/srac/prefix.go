package srac

import (
	"stac/internal/model"
	"stac/internal/trace"
)

// Status is the three-valued outcome of evaluating a constraint
// against the *prefix* of an execution — the access history a mobile
// object has accumulated so far. Enforcement needs this rather than
// plain trace satisfaction because the execution is still in progress:
// a required access that has not happened yet is merely pending, while
// a count ceiling that has been crossed can never be repaired.
type Status int

// Prefix-evaluation outcomes.
const (
	// Satisfied: the history already satisfies the constraint, and
	// satisfaction is stable for the constructs that can only be
	// strengthened by more accesses.
	Satisfied Status = iota
	// Violated: no extension of the history can satisfy the
	// constraint (an irreversible violation).
	Violated
	// Pending: not satisfied yet, but some extension could satisfy it.
	Pending
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Satisfied:
		return "satisfied"
	case Violated:
		return "violated"
	default:
		return "pending"
	}
}

// negate flips Satisfied and Violated. For Pending the conservative
// answer is Pending.
func (s Status) negate() Status {
	switch s {
	case Satisfied:
		return Violated
	case Violated:
		return Satisfied
	default:
		return Pending
	}
}

// EvalPrefix evaluates a constraint against a history prefix:
//
//   - Atom a: Satisfied once a proof-backed match is in the history,
//     otherwise Pending (the access can still happen).
//   - a1 ⊗ a2: Satisfied once witnessed in order; otherwise Pending.
//   - #(m, n, σ): Violated when the count already exceeds n (more
//     accesses only increase it); Satisfied within [m, n]; Pending
//     below m.
//   - Connectives combine three-valued: ∧ is Violated if either side
//     is, Satisfied if both are; ∨ dually; ¬ swaps Satisfied and
//     Violated and is conservative (Pending) on Pending operands.
//
// Enforcement denies on Violated and may grant on Satisfied or
// Pending; the static program checker additionally rules out programs
// that can never satisfy the constraint.
func EvalPrefix(t trace.Trace, c Constraint, pr ProofOracle) Status {
	if pr == nil {
		pr = AllProven
	}
	switch x := c.(type) {
	case TrueC:
		return Satisfied
	case FalseC:
		return Violated
	case Atom:
		if firstMatch(t, x.A, 0, pr) >= 0 {
			return Satisfied
		}
		return Pending
	case Ordered:
		i := firstMatch(t, x.First, 0, pr)
		if i >= 0 && firstMatch(t, x.Second, i+1, pr) >= 0 {
			return Satisfied
		}
		return Pending
	case Count:
		n := t.Count(x.Sel)
		switch {
		case n > x.Max:
			return Violated
		case n >= x.Min:
			return Satisfied
		default:
			return Pending
		}
	case And:
		l := EvalPrefix(t, x.Left, pr)
		r := EvalPrefix(t, x.Right, pr)
		switch {
		case l == Violated || r == Violated:
			return Violated
		case l == Satisfied && r == Satisfied:
			return Satisfied
		default:
			return Pending
		}
	case Or:
		l := EvalPrefix(t, x.Left, pr)
		r := EvalPrefix(t, x.Right, pr)
		switch {
		case l == Satisfied || r == Satisfied:
			return Satisfied
		case l == Violated && r == Violated:
			return Violated
		default:
			return Pending
		}
	case Not:
		return EvalPrefix(t, x.C, pr).negate()
	}
	return Pending
}

// AdmitsExtension reports whether the history can still lead to
// satisfaction: it is the enforcement predicate "grant unless the
// constraint is irreversibly violated".
func AdmitsExtension(t trace.Trace, c Constraint, pr ProofOracle) bool {
	return EvalPrefix(t, c, pr) != Violated
}

// HypotheticalOracle extends a base oracle so the single access about
// to be performed counts as proven — enforcement evaluates the
// post-state of a grant before issuing its proof.
func HypotheticalOracle(base ProofOracle, pending model.Access) ProofOracle {
	if base == nil {
		base = AllProven
	}
	return OracleFunc(func(a model.Access) bool {
		return a == pending || base.Proven(a)
	})
}
