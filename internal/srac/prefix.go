package srac

import (
	"stac/internal/model"
	"stac/internal/trace"
)

// Status is the three-valued outcome of evaluating a constraint
// against the *prefix* of an execution — the access history a mobile
// object has accumulated so far. Enforcement needs this rather than
// plain trace satisfaction because the execution is still in progress:
// a required access that has not happened yet is merely pending, while
// a count ceiling that has been crossed can never be repaired.
type Status int

// Prefix-evaluation outcomes.
const (
	// Satisfied: the history already satisfies the constraint. Whether
	// satisfaction is STABLE (no extension can lose it) depends on the
	// construct: a witnessed atom stays witnessed, but a count within a
	// finite ceiling can still be pushed over it. EvalPrefixStable
	// reports the distinction; it is what makes negation sound.
	Satisfied Status = iota
	// Violated: no extension of the history can satisfy the
	// constraint (an irreversible violation).
	Violated
	// Pending: the constraint is not satisfied by the history, but the
	// verdict is not irreversible — an extension may satisfy it.
	Pending
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Satisfied:
		return "satisfied"
	case Violated:
		return "violated"
	default:
		return "pending"
	}
}

// NegateStable derives the prefix status of ¬C from the status and
// stability of C. It is the sound replacement for the naive
// Satisfied↔Violated swap, which is wrong for unstable satisfaction:
// a counting atom #(m, n, σ) with the count inside [m, n] is Satisfied
// but an extension can push the count past n, so ¬#(m, n, σ) is merely
// Pending — denying it as "irreversibly violated" (as the swap did)
// is a wrong verdict in Admissible mode.
//
//   - Satisfied, stable  → Violated (every extension satisfies C, so
//     none satisfies ¬C — truly irreversible), and the verdict is
//     itself stable.
//   - Satisfied, unstable → Pending (¬C unsatisfied now, but some
//     extension may unsatisfy C).
//   - Violated → Satisfied, stable (no extension satisfies C, so every
//     extension satisfies ¬C).
//   - Pending → Pending (conservative: C is unsatisfied now, so ¬C
//     holds on the current prefix, but three-valued enforcement only
//     needs "not Violated" here and stays conservative).
func NegateStable(s Status, stable bool) (Status, bool) {
	switch {
	case s == Satisfied && stable:
		return Violated, true
	case s == Satisfied:
		return Pending, false
	case s == Violated:
		return Satisfied, true
	default:
		return Pending, false
	}
}

// EvalPrefix evaluates a constraint against a history prefix:
//
//   - Atom a: Satisfied once a proof-backed match is in the history,
//     otherwise Pending (the access can still happen).
//   - a1 ⊗ a2: Satisfied once witnessed in order; otherwise Pending.
//   - #(m, n, σ): Violated when the proof-backed count already exceeds
//     n (more accesses only increase it); Satisfied within [m, n];
//     Pending below m.
//   - Connectives combine three-valued: ∧ is Violated if either side
//     is, Satisfied if both are; ∨ dually; ¬ follows NegateStable —
//     it only yields Violated when the operand's satisfaction is
//     stable, so ¬count over an in-range count is Pending, not
//     Violated.
//
// Enforcement denies on Violated and may grant on Satisfied or
// Pending; the static program checker additionally rules out programs
// that can never satisfy the constraint.
func EvalPrefix(t trace.Trace, c Constraint, pr ProofOracle) Status {
	s, _ := EvalPrefixStable(t, c, pr)
	return s
}

// EvalPrefixStable is EvalPrefix plus a stability bit: stable reports
// that the returned status cannot change under ANY extension of the
// history. Violated is stable by definition (it means exactly that no
// extension satisfies); Satisfied is stable for witnessed atoms and
// orderings, for counts with an unbounded ceiling, and for
// combinations thereof; Pending is never stable (it means exactly
// that the verdict can still move).
func EvalPrefixStable(t trace.Trace, c Constraint, pr ProofOracle) (status Status, stable bool) {
	if pr == nil {
		pr = AllProven
	}
	return evalPrefix(t, c, pr)
}

func evalPrefix(t trace.Trace, c Constraint, pr ProofOracle) (Status, bool) {
	switch x := c.(type) {
	case TrueC:
		return Satisfied, true
	case FalseC:
		return Violated, true
	case Atom:
		if firstMatch(t, x.A, 0, pr) >= 0 {
			// The witness is in the history for good: satisfaction is
			// stable under extension.
			return Satisfied, true
		}
		return Pending, false
	case Ordered:
		i := firstMatch(t, x.First, 0, pr)
		if i >= 0 && firstMatch(t, x.Second, i+1, pr) >= 0 {
			return Satisfied, true
		}
		return Pending, false
	case Count:
		n := countProven(t, x.Sel, pr)
		switch {
		case n > x.Max:
			return Violated, true
		case n >= x.Min:
			// Extensions can only grow the count, so satisfaction is
			// stable exactly when there is no ceiling to cross.
			return Satisfied, x.Max == Unbounded
		default:
			return Pending, false
		}
	case And:
		l, lst := evalPrefix(t, x.Left, pr)
		r, rst := evalPrefix(t, x.Right, pr)
		switch {
		case l == Violated || r == Violated:
			return Violated, true
		case l == Satisfied && r == Satisfied:
			return Satisfied, lst && rst
		default:
			return Pending, false
		}
	case Or:
		l, lst := evalPrefix(t, x.Left, pr)
		r, rst := evalPrefix(t, x.Right, pr)
		switch {
		case l == Satisfied || r == Satisfied:
			return Satisfied, (l == Satisfied && lst) || (r == Satisfied && rst)
		case l == Violated && r == Violated:
			return Violated, true
		default:
			return Pending, false
		}
	case Not:
		return NegateStable(evalPrefix(t, x.C, pr))
	}
	return Pending, false
}

// AdmitsExtension reports whether the history can still lead to
// satisfaction: it is the enforcement predicate "grant unless the
// constraint is irreversibly violated".
func AdmitsExtension(t trace.Trace, c Constraint, pr ProofOracle) bool {
	return EvalPrefix(t, c, pr) != Violated
}

// HypotheticalOracle extends a base oracle so the single access about
// to be performed counts as proven — enforcement evaluates the
// post-state of a grant before issuing its proof.
func HypotheticalOracle(base ProofOracle, pending model.Access) ProofOracle {
	if base == nil {
		base = AllProven
	}
	return OracleFunc(func(a model.Access) bool {
		return a == pending || base.Proven(a)
	})
}
