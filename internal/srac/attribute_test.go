package srac

import (
	"math/rand"
	"strings"
	"testing"

	"stac/internal/model"
	"stac/internal/trace"
)

// randomFullConstraint draws from the whole SRAC grammar, negation and
// disjunction included — the corpus for the attribution/eval
// equivalence property.
func randomFullConstraint(r *rand.Rand, depth int) Constraint {
	accs := []model.Access{
		{Op: "read", Resource: "f1", Server: "s1"},
		{Op: "write", Resource: "f2", Server: "s1"},
		{Op: "read", Resource: "f3", Server: "s2"},
	}
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return Require(accs[r.Intn(len(accs))])
		case 1:
			lo := r.Intn(3)
			max := lo + r.Intn(4)
			if r.Intn(4) == 0 {
				max = Unbounded
			}
			return Count{Min: lo, Max: max, Sel: model.Selector{Ops: []model.Operation{"read"}}}
		case 2:
			return Before(accs[r.Intn(len(accs))], accs[r.Intn(len(accs))])
		case 3:
			return TrueC{}
		default:
			return FalseC{}
		}
	}
	switch r.Intn(3) {
	case 0:
		return And{Left: randomFullConstraint(r, depth-1), Right: randomFullConstraint(r, depth-1)}
	case 1:
		return Or{Left: randomFullConstraint(r, depth-1), Right: randomFullConstraint(r, depth-1)}
	default:
		return Not{C: randomFullConstraint(r, depth-1)}
	}
}

// Property: Attribute reports exactly EvalPrefixStable's verdict, for
// every constraint shape and history — the explanation never disagrees
// with the enforcement decision it explains.
func TestAttributeMatchesEvalPrefixStable(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	pool := []model.Access{
		model.NewAccess("", "read", "f1", "s1"),
		model.NewAccess("", "write", "f2", "s1"),
		model.NewAccess("", "read", "f3", "s2"),
		model.NewAccess("", "execute", "rsw", "s2"),
	}
	for i := 0; i < 1500; i++ {
		var hist trace.Trace
		for j := 0; j < r.Intn(7); j++ {
			hist = append(hist, pool[r.Intn(len(pool))])
		}
		c := randomFullConstraint(r, 1+r.Intn(3))
		wantStatus, wantStable := EvalPrefixStable(hist, c, nil)
		a := Attribute(hist, c, nil)
		if a.Status != wantStatus || a.Stable != wantStable {
			t.Fatalf("attribution diverges from eval:\nC    %s\nhist %v\neval (%s, stable=%v)\nattr (%s, stable=%v) clause %s — %s",
				String(c), hist, wantStatus, wantStable, a.Status, a.Stable, a.ClauseString(), a.Detail)
		}
		if a.Clause == nil {
			t.Fatalf("no clause attributed for %s over %v", String(c), hist)
		}
		if a.Detail == "" {
			t.Fatalf("no detail for %s over %v", String(c), hist)
		}
	}
}

func TestAttributePinpointsViolatedConjunct(t *testing.T) {
	sel := model.Selector{Ops: []model.Operation{"read"}}
	ceiling := Count{Min: 0, Max: 2, Sel: sel}
	c := And{
		Left:  Require(model.NewAccess("", "write", "f2", "s1")),
		Right: ceiling,
	}
	read := model.NewAccess("", "read", "f1", "s1")
	hist := trace.Trace{read, read, read}
	a := Attribute(hist, c, nil)
	if a.Status != Violated || !a.Stable {
		t.Fatalf("status = %s stable=%v", a.Status, a.Stable)
	}
	// The blame lands on the counting conjunct, not the whole And.
	if a.ClauseString() != String(ceiling) {
		t.Fatalf("clause = %s, want %s", a.ClauseString(), String(ceiling))
	}
	if !strings.Contains(a.Detail, "count 3 exceeds ceiling 2") {
		t.Fatalf("detail = %q", a.Detail)
	}
	if len(a.Counts) != 1 || a.Counts[0].Observed != 3 || a.Counts[0].Min != 0 || a.Counts[0].Max != 2 {
		t.Fatalf("counts = %+v", a.Counts)
	}
}

func TestAttributeOrBothViolated(t *testing.T) {
	sel := model.Selector{Ops: []model.Operation{"read"}}
	c := Or{
		Left:  FalseC{},
		Right: Count{Min: 0, Max: 1, Sel: sel},
	}
	read := model.NewAccess("", "read", "f1", "s1")
	a := Attribute(trace.Trace{read, read}, c, nil)
	if a.Status != Violated || !a.Stable {
		t.Fatalf("status = %s stable=%v", a.Status, a.Stable)
	}
	// Both disjuncts are dead, so the whole Or is the violated clause
	// and the detail names both sides.
	if a.ClauseString() != String(c) {
		t.Fatalf("clause = %s, want the whole disjunction %s", a.ClauseString(), String(c))
	}
	if !strings.Contains(a.Detail, "both alternatives violated") {
		t.Fatalf("detail = %q", a.Detail)
	}
	if len(a.Counts) != 1 || a.Counts[0].Observed != 2 {
		t.Fatalf("counts = %+v", a.Counts)
	}
}

func TestAttributeNegation(t *testing.T) {
	// ¬(atom) becomes irreversibly violated once the atom is witnessed.
	atom := Require(model.NewAccess("", "read", "f1", "s1"))
	c := Not{C: atom}
	a := Attribute(trace.Trace{model.NewAccess("", "read", "f1", "s1")}, c, nil)
	if a.Status != Violated || !a.Stable {
		t.Fatalf("status = %s stable=%v", a.Status, a.Stable)
	}
	if a.ClauseString() != String(c) {
		t.Fatalf("clause = %s", a.ClauseString())
	}
	if !strings.Contains(a.Detail, "stably satisfied") {
		t.Fatalf("detail = %q", a.Detail)
	}

	// Before the atom is witnessed, ¬(atom) is pending (unstable
	// satisfaction under negation — the PR 2 semantics).
	a = Attribute(trace.Trace{}, c, nil)
	want, wantStable := EvalPrefixStable(trace.Trace{}, c, nil)
	if a.Status != want || a.Stable != wantStable {
		t.Fatalf("empty-history negation: attr (%s,%v), eval (%s,%v)", a.Status, a.Stable, want, wantStable)
	}
}

func TestAttributeSatisfiedAndPending(t *testing.T) {
	atom := Require(model.NewAccess("", "read", "f1", "s1"))
	a := Attribute(trace.Trace{model.NewAccess("", "read", "f1", "s1")}, atom, nil)
	if a.Status != Satisfied || !strings.Contains(a.Detail, "witnessed at history position 0") {
		t.Fatalf("satisfied atom: %s — %q", a.Status, a.Detail)
	}
	a = Attribute(trace.Trace{}, atom, nil)
	if a.Status != Pending || !strings.Contains(a.Detail, "no proof-backed occurrence yet") {
		t.Fatalf("pending atom: %s — %q", a.Status, a.Detail)
	}

	ord := Before(model.NewAccess("", "read", "f1", "s1"), model.NewAccess("", "write", "f2", "s1"))
	a = Attribute(trace.Trace{model.NewAccess("", "read", "f1", "s1")}, ord, nil)
	if a.Status != Pending || !strings.Contains(a.Detail, "second still pending") {
		t.Fatalf("half-ordered: %s — %q", a.Status, a.Detail)
	}
}

func TestCountLeafEvalMatchesTraceScan(t *testing.T) {
	// The incremental-counter leaf evaluator agrees with the trace-scan
	// attribution on pure counting formulas.
	r := rand.New(rand.NewSource(43))
	sel := model.Selector{Ops: []model.Operation{"read"}}
	read := model.NewAccess("", "read", "f1", "s1")
	other := model.NewAccess("", "write", "f2", "s1")
	for i := 0; i < 200; i++ {
		var hist trace.Trace
		reads := 0
		for j := 0; j < r.Intn(8); j++ {
			if r.Intn(2) == 0 {
				hist = append(hist, read)
				reads++
			} else {
				hist = append(hist, other)
			}
		}
		lo := r.Intn(3)
		max := lo + r.Intn(4)
		if r.Intn(5) == 0 {
			max = Unbounded
		}
		c := And{Left: Count{Min: lo, Max: max, Sel: sel}, Right: TrueC{}}
		scan := Attribute(hist, c, nil)
		incr := AttributeWith(c, CountLeafEval(func(Count) int { return reads }))
		if scan.Status != incr.Status || scan.Stable != incr.Stable || scan.Detail != incr.Detail {
			t.Fatalf("incremental diverges from scan:\nC %s hist %v\nscan (%s,%v) %q\nincr (%s,%v) %q",
				String(c), hist, scan.Status, scan.Stable, scan.Detail, incr.Status, incr.Stable, incr.Detail)
		}
	}
}

func TestCountWindowString(t *testing.T) {
	cw := CountWindow{Selector: "sigma", Min: 1, Max: 4, Observed: 2}
	if got := cw.String(); got != "sigma: observed 2 of window [1,4]" {
		t.Fatalf("String = %q", got)
	}
	cw.Max = -1
	if got := cw.String(); got != "sigma: observed 2 of window [1,inf]" {
		t.Fatalf("String = %q", got)
	}
}
