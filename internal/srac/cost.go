package srac

// Evaluation-cost coverage: one prefix evaluation's outcome at every
// node of the constraint tree — exactly what Cover reports — plus the
// work it took to get there: how many leaf evaluations ran in each
// subtree, how many allocating count-window merges fired, and (when
// timing is sampled) the subtree's wall-clock nanoseconds. The cost
// walk is the "before picture" for the SRAC compilation arc: prefix
// evaluation re-walks the whole AST per access, so cost scales with
// history length × formula size, and this is where that product
// becomes visible per clause.
//
// CoverCost is THE transcription of evalPrefix shared with Cover
// (which projects the coverage fields out of it), so the (Status,
// Stable) it reports at every node equal the engine's verdict on that
// subformula; the equivalence with AttributeWith / EvalPrefixStable
// is property-tested over a formula corpus.

import (
	"time"

	"stac/internal/trace"
)

// NodeCost is one subformula's outcome in a single prefix evaluation
// together with the work its subtree performed. Paths address nodes
// exactly as in NodeCoverage: "" is the root, then 'l'/'r' into a
// conjunction or disjunction, 'n' under a negation.
type NodeCost struct {
	Path   string
	Status Status
	Stable bool
	// Decisive marks the node the whole-constraint verdict is
	// attributed to; exactly one node per evaluation is decisive.
	Decisive bool
	// Atoms counts the leaf evaluations performed inside this node's
	// subtree (a leaf counts itself once). The root's Atoms is the
	// total leaf work of the evaluation.
	Atoms int
	// Merges counts allocating count-window merges at this node: 1
	// when combining the children's windows built a fresh slice, 0
	// when both sides were empty (the common, allocation-free case).
	Merges int
	// NS is the subtree's wall-clock evaluation time in nanoseconds,
	// including children. Zero unless the evaluation was timed.
	NS int64
}

// CoverCost evaluates the constraint with the given leaf evaluator
// and returns per-node cost coverage (pre-order left-to-right by
// path) plus the root attribution, which equals AttributeWith(c,
// leaf) field for field. When timed is false the NS fields stay zero
// and no clock is read — callers sample timing (typically 1-in-64)
// because two time.Now calls per node are themselves measurable on
// tiny formulas.
func CoverCost(c Constraint, leaf LeafEval, timed bool) ([]NodeCost, Attribution) {
	var out []NodeCost
	a, decisive, _ := costNode(c, "", leaf, timed, &out)
	for i := range out {
		if out[i].Path == decisive {
			out[i].Decisive = true
		}
	}
	// Reverse the post-order accumulation into pre-order: parents
	// before children reads naturally in reports.
	sortCostNodes(out)
	return out, a
}

// costNode mirrors AttributeWith's connective logic, additionally
// appending each node's outcome and cost and returning the path of
// the node the verdict is attributed to plus the subtree's leaf-eval
// count.
func costNode(c Constraint, path string, leaf LeafEval, timed bool, out *[]NodeCost) (Attribution, string, int) {
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	var a Attribution
	decisive := path
	atoms := 1
	merges := 0
	switch x := c.(type) {
	case And:
		l, lp, la := costNode(x.Left, path+"l", leaf, timed, out)
		r, rp, ra := costNode(x.Right, path+"r", leaf, timed, out)
		atoms = la + ra
		switch {
		case l.Status == Violated:
			a, decisive = l, lp
		case r.Status == Violated:
			a, decisive = r, rp
		case l.Status == Satisfied && r.Status == Satisfied:
			counts := mergeCounts(l.Counts, r.Counts)
			if counts != nil {
				merges = 1
			}
			a = Attribution{
				Status: Satisfied, Stable: l.Stable && r.Stable,
				Clause: c, Detail: "both conjuncts satisfied",
				Counts: counts,
			}
		case l.Status == Pending:
			l.Status = Pending
			l.Stable = false
			a, decisive = l, lp
		default:
			r.Status = Pending
			r.Stable = false
			a, decisive = r, rp
		}
	case Or:
		l, lp, la := costNode(x.Left, path+"l", leaf, timed, out)
		r, rp, ra := costNode(x.Right, path+"r", leaf, timed, out)
		atoms = la + ra
		switch {
		case l.Status == Satisfied && l.Stable:
			a, decisive = l, lp
		case r.Status == Satisfied && r.Stable:
			a, decisive = r, rp
		case l.Status == Satisfied:
			a, decisive = l, lp
		case r.Status == Satisfied:
			a, decisive = r, rp
		case l.Status == Violated && r.Status == Violated:
			counts := mergeCounts(l.Counts, r.Counts)
			if counts != nil {
				merges = 1
			}
			a = Attribution{
				Status: Violated, Stable: true, Clause: c,
				Detail: "both alternatives violated: " + l.Detail + "; " + r.Detail,
				Counts: counts,
			}
		case l.Status == Pending:
			l.Status = Pending
			l.Stable = false
			a, decisive = l, lp
		default:
			r.Status = Pending
			r.Stable = false
			a, decisive = r, rp
		}
	case Not:
		// AttributeWith always blames the negation node itself, so the
		// Not node is decisive regardless of the operand's path.
		in, _, ia := costNode(x.C, path+"n", leaf, timed, out)
		atoms = ia
		st, stable := NegateStable(in.Status, in.Stable)
		a = Attribution{Status: st, Stable: stable, Clause: c, Counts: in.Counts}
		switch st {
		case Violated:
			a.Detail = "negated subformula stably satisfied (" + in.Detail + ")"
		case Satisfied:
			a.Detail = "negated subformula violated (" + in.Detail + ")"
		default:
			if in.Status == Satisfied {
				a.Detail = "negated subformula satisfied but not stably (" + in.Detail + ")"
			} else {
				a.Detail = "negated subformula still pending (" + in.Detail + ")"
			}
		}
	default:
		st, stable, detail := leaf(c)
		a = Attribution{Status: st, Stable: stable, Clause: c, Detail: detail}
		if cnt, ok := c.(Count); ok {
			max := cnt.Max
			if max == Unbounded {
				max = -1
			}
			a.Counts = []CountWindow{{Selector: cnt.Sel.String(), Min: cnt.Min, Max: max, Observed: -1}}
		}
	}
	nc := NodeCost{Path: path, Status: a.Status, Stable: a.Stable, Atoms: atoms, Merges: merges}
	if timed {
		nc.NS = time.Since(t0).Nanoseconds()
	}
	*out = append(*out, nc)
	return a, decisive, atoms
}

// sortCostNodes orders cost coverage by path: parents before
// children, left subtree before right (lexicographic order on paths
// does exactly that, since every child path extends its parent's).
func sortCostNodes(nodes []NodeCost) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Path < nodes[j-1].Path; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// PlainTraceLeafEval mirrors TraceLeafEval's verdicts without
// building detail strings. The cost walk wants its sampled timings to
// reflect eval-shaped work — the history scans of firstMatch and
// countProven — not explanation formatting, so it runs on this
// evaluator instead.
func PlainTraceLeafEval(t trace.Trace, pr ProofOracle) LeafEval {
	if pr == nil {
		pr = AllProven
	}
	return func(leaf Constraint) (Status, bool, string) {
		switch x := leaf.(type) {
		case TrueC:
			return Satisfied, true, ""
		case FalseC:
			return Violated, true, ""
		case Atom:
			if firstMatch(t, x.A, 0, pr) >= 0 {
				return Satisfied, true, ""
			}
			return Pending, false, ""
		case Ordered:
			i := firstMatch(t, x.First, 0, pr)
			if i < 0 {
				return Pending, false, ""
			}
			if firstMatch(t, x.Second, i+1, pr) >= 0 {
				return Satisfied, true, ""
			}
			return Pending, false, ""
		case Count:
			st, stable := countLeafStatus(x, countProven(t, x.Sel, pr))
			return st, stable, ""
		}
		return Pending, false, ""
	}
}

// PlainCountLeafEval is the counting-path twin of PlainTraceLeafEval:
// CountLeafEval's verdicts without the detail strings.
func PlainCountLeafEval(count func(Count) int) LeafEval {
	return func(leaf Constraint) (Status, bool, string) {
		switch x := leaf.(type) {
		case TrueC:
			return Satisfied, true, ""
		case FalseC:
			return Violated, true, ""
		case Count:
			st, stable := countLeafStatus(x, count(x))
			return st, stable, ""
		}
		return Pending, false, ""
	}
}
