package srac

import (
	"fmt"
	"strings"

	"stac/internal/model"
	"stac/internal/sral"
)

// Verdict is the three-valued result of statically checking an SRAL
// program against a constraint without enumerating its (possibly
// infinite) trace model.
type Verdict int

// Verdict values.
const (
	// AllTraces: every trace of the program satisfies the constraint.
	AllTraces Verdict = iota
	// NoTrace: no trace of the program satisfies the constraint.
	NoTrace
	// Mixed: some traces satisfy and some do not, or the checker had
	// to be conservative (see the package notes on exactness).
	Mixed
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case AllTraces:
		return "all-traces"
	case NoTrace:
		return "no-trace"
	default:
		return "mixed"
	}
}

// Negate flips AllTraces and NoTrace; Mixed is self-dual.
func (v Verdict) Negate() Verdict {
	switch v {
	case AllTraces:
		return NoTrace
	case NoTrace:
		return AllTraces
	default:
		return Mixed
	}
}

// CheckProgram statically decides P ⊨ C (Theorem 3.2). It runs in
// O(m·n) time where m = |P| and n = |C|: each constraint construct
// triggers one structural pass over the program.
//
// obj is the mobile object that will execute the program; program
// accesses are written object-neutrally and are attributed to obj
// before they are matched against constraint patterns (pass "" to
// match patterns that do not restrict the object).
//
// The verdict is sound: AllTraces is only reported when every trace
// satisfies C, NoTrace only when none does. It is exact for T, F,
// atoms, counting constraints and negations thereof; for ⊗ under
// sequential composition, and for ∧/∨ over mixed operands, the checker
// may conservatively report Mixed (Definition 3.2's trace semantics
// ignores condition values, so both conditional branches and any loop
// repetition count are considered possible).
//
// Static checking assumes execution proofs will be issued as accesses
// are performed (the AllProven oracle); the runtime trace checker
// re-validates against actual proofs.
func CheckProgram(p sral.Node, c Constraint, obj model.ObjectID) Verdict {
	ck := &checker{obj: obj}
	return ck.verdict(p, c)
}

// Must reports whether every trace of P satisfies C — the enforcement
// reading of Definition 3.7.
func Must(p sral.Node, c Constraint, obj model.ObjectID) bool {
	return CheckProgram(p, c, obj) == AllTraces
}

// May reports whether some trace of P can satisfy C (conservatively
// true when the checker cannot exclude it).
func May(p sral.Node, c Constraint, obj model.ObjectID) bool {
	return CheckProgram(p, c, obj) != NoTrace
}

type checker struct {
	obj model.ObjectID
}

// stampedAccess attributes a program access to the executing object.
func (ck *checker) stampedAccess(pr sral.Prim) model.Access {
	return pr.Access().WithObject(ck.obj)
}

func (ck *checker) verdict(p sral.Node, c Constraint) Verdict {
	switch x := c.(type) {
	case TrueC:
		return AllTraces
	case FalseC:
		return NoTrace
	case Atom:
		occ := ck.occurs(p, x.A)
		switch {
		case occ.must:
			return AllTraces
		case !occ.may:
			return NoTrace
		default:
			return Mixed
		}
	case Ordered:
		ord := ck.ordered(p, x.First, x.Second)
		switch {
		case ord.must:
			return AllTraces
		case !ord.may:
			return NoTrace
		default:
			return Mixed
		}
	case Count:
		lo, hi := ck.countRange(p, x.Sel)
		switch {
		case lo >= x.Min && hi <= x.Max:
			return AllTraces
		case hi < x.Min || lo > x.Max:
			return NoTrace
		default:
			return Mixed
		}
	case And:
		l := ck.verdict(p, x.Left)
		r := ck.verdict(p, x.Right)
		switch {
		case l == NoTrace || r == NoTrace:
			return NoTrace
		case l == AllTraces && r == AllTraces:
			return AllTraces
		default:
			return Mixed
		}
	case Or:
		l := ck.verdict(p, x.Left)
		r := ck.verdict(p, x.Right)
		switch {
		case l == AllTraces || r == AllTraces:
			return AllTraces
		case l == NoTrace && r == NoTrace:
			return NoTrace
		default:
			return Mixed
		}
	case Not:
		return ck.verdict(p, x.C).Negate()
	}
	return Mixed
}

// occInfo summarises whether a pattern occurs on every trace (must)
// and on some trace (may) of a subprogram.
type occInfo struct{ must, may bool }

func (ck *checker) occurs(p sral.Node, pat model.Access) occInfo {
	switch x := p.(type) {
	case sral.Prim:
		hit := pat.Matches(ck.stampedAccess(x))
		return occInfo{must: hit, may: hit}
	case sral.Seq:
		a, b := ck.occurs(x.First, pat), ck.occurs(x.Second, pat)
		return occInfo{must: a.must || b.must, may: a.may || b.may}
	case sral.Par:
		a, b := ck.occurs(x.Left, pat), ck.occurs(x.Right, pat)
		return occInfo{must: a.must || b.must, may: a.may || b.may}
	case sral.If:
		a, b := ck.occurs(x.Then, pat), ck.occurs(x.Else, pat)
		return occInfo{must: a.must && b.must, may: a.may || b.may}
	case sral.While:
		b := ck.occurs(x.Body, pat)
		return occInfo{must: false, may: b.may}
	default: // Recv, Send, Signal, Wait, Skip, nil: ε-traces only
		return occInfo{}
	}
}

// ordInfo summarises whether "x-before-y" holds on every trace (must)
// and on some trace (may) of a subprogram.
type ordInfo struct{ must, may bool }

func (ck *checker) ordered(p sral.Node, first, second model.Access) ordInfo {
	switch x := p.(type) {
	case sral.Prim:
		// A single access can never witness a1 strictly before a2.
		return ordInfo{}
	case sral.Seq:
		s1 := ck.ordered(x.First, first, second)
		s2 := ck.ordered(x.Second, first, second)
		f1 := ck.occurs(x.First, first)
		g2 := ck.occurs(x.Second, second)
		return ordInfo{
			must: s1.must || s2.must || (f1.must && g2.must),
			may:  s1.may || s2.may || (f1.may && g2.may),
		}
	case sral.Par:
		s1 := ck.ordered(x.Left, first, second)
		s2 := ck.ordered(x.Right, first, second)
		f1 := ck.occurs(x.Left, first)
		g1 := ck.occurs(x.Left, second)
		f2 := ck.occurs(x.Right, first)
		g2 := ck.occurs(x.Right, second)
		return ordInfo{
			// An interleaving preserves each side's internal order, so
			// a side that forces the ordering forces it globally;
			// cross-side orderings are never forced (the adversarial
			// interleaving can flip them).
			must: s1.must || s2.must,
			may:  s1.may || s2.may || (f1.may && g2.may) || (f2.may && g1.may),
		}
	case sral.If:
		s1 := ck.ordered(x.Then, first, second)
		s2 := ck.ordered(x.Else, first, second)
		return ordInfo{must: s1.must && s2.must, may: s1.may || s2.may}
	case sral.While:
		sb := ck.ordered(x.Body, first, second)
		fb := ck.occurs(x.Body, first)
		gb := ck.occurs(x.Body, second)
		return ordInfo{
			// ε ∈ traces(while ...), so the ordering is never forced.
			must: false,
			// Two iterations witness first-then-second across bodies.
			may: sb.may || (fb.may && gb.may),
		}
	default:
		return ordInfo{}
	}
}

// countRange computes [lo, hi] bounds on the number of σ-selected
// accesses over all traces of the program; hi is Unbounded when a loop
// body can contribute.
func (ck *checker) countRange(p sral.Node, sel model.Selector) (lo, hi int) {
	switch x := p.(type) {
	case sral.Prim:
		if sel.SelectAccess(ck.stampedAccess(x)) {
			return 1, 1
		}
		return 0, 0
	case sral.Seq:
		lo1, hi1 := ck.countRange(x.First, sel)
		lo2, hi2 := ck.countRange(x.Second, sel)
		return lo1 + lo2, addBound(hi1, hi2)
	case sral.Par:
		lo1, hi1 := ck.countRange(x.Left, sel)
		lo2, hi2 := ck.countRange(x.Right, sel)
		return lo1 + lo2, addBound(hi1, hi2)
	case sral.If:
		lo1, hi1 := ck.countRange(x.Then, sel)
		lo2, hi2 := ck.countRange(x.Else, sel)
		return min(lo1, lo2), max(hi1, hi2)
	case sral.While:
		_, hiB := ck.countRange(x.Body, sel)
		if hiB > 0 {
			return 0, Unbounded
		}
		return 0, 0
	default:
		return 0, 0
	}
}

func addBound(a, b int) int {
	if a == Unbounded || b == Unbounded {
		return Unbounded
	}
	return a + b
}

// Explanation is the per-subformula verdict tree produced by Explain,
// used by diagnostic tools to show *why* a program was admitted or
// rejected.
type Explanation struct {
	Formula  string
	Verdict  Verdict
	Children []*Explanation
}

// Explain checks P against C and records the verdict of every
// subformula.
func Explain(p sral.Node, c Constraint, obj model.ObjectID) *Explanation {
	ck := &checker{obj: obj}
	return explain(ck, p, c)
}

func explain(ck *checker, p sral.Node, c Constraint) *Explanation {
	e := &Explanation{Formula: String(c), Verdict: ck.verdict(p, c)}
	switch x := c.(type) {
	case And:
		e.Children = []*Explanation{explain(ck, p, x.Left), explain(ck, p, x.Right)}
	case Or:
		e.Children = []*Explanation{explain(ck, p, x.Left), explain(ck, p, x.Right)}
	case Not:
		e.Children = []*Explanation{explain(ck, p, x.C)}
	}
	return e
}

// String renders the explanation tree with indentation.
func (e *Explanation) String() string {
	var b strings.Builder
	var rec func(x *Explanation, depth int)
	rec = func(x *Explanation, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-12s %s\n", x.Verdict, x.Formula)
		for _, ch := range x.Children {
			rec(ch, depth+1)
		}
	}
	rec(e, 0)
	return b.String()
}
