package srac

import (
	"testing"

	"stac/internal/model"
	"stac/internal/trace"
)

func acc(o, op, r, s string) model.Access {
	return model.Access{
		Object:   model.ObjectID(o),
		Op:       model.Operation(op),
		Resource: model.ResourceID(r),
		Server:   model.ServerID(s),
	}
}

var (
	read1  = acc("o1", "read", "f1", "s1")
	write2 = acc("o1", "write", "f2", "s1")
	read3  = acc("o1", "read", "f3", "s2")
)

func TestSatisfiesTrueFalse(t *testing.T) {
	tr := trace.Trace{read1}
	if !SatisfiesTrace(tr, TrueC{}, nil) {
		t.Fatal("t ⊭ T")
	}
	if SatisfiesTrace(tr, FalseC{}, nil) {
		t.Fatal("t ⊨ F")
	}
	if !SatisfiesTrace(trace.Empty, TrueC{}, nil) {
		t.Fatal("ε ⊭ T")
	}
}

func TestSatisfiesAtom(t *testing.T) {
	tr := trace.Trace{read1, write2}
	if !SatisfiesTrace(tr, Require(read1), nil) {
		t.Fatal("exact atom not satisfied")
	}
	if SatisfiesTrace(tr, Require(read3), nil) {
		t.Fatal("absent atom satisfied")
	}
	// Pattern atom: empty object matches any object.
	pat := model.Access{Op: "read", Resource: "f1", Server: "s1"}
	if !SatisfiesTrace(tr, Require(pat), nil) {
		t.Fatal("pattern atom not satisfied")
	}
	// Wildcard server.
	anyServer := model.Access{Op: "write", Resource: "f2"}
	if !SatisfiesTrace(tr, Require(anyServer), nil) {
		t.Fatal("wildcard-server atom not satisfied")
	}
}

func TestSatisfiesAtomRequiresProof(t *testing.T) {
	tr := trace.Trace{read1}
	if SatisfiesTrace(tr, Require(read1), NoneProven) {
		t.Fatal("unproven access satisfied atom")
	}
	only2 := OracleFunc(func(a model.Access) bool { return a == write2 })
	if SatisfiesTrace(tr, Require(read1), only2) {
		t.Fatal("oracle ignored")
	}
}

func TestSatisfiesOrdered(t *testing.T) {
	tr := trace.Trace{read1, read3, write2}
	if !SatisfiesTrace(tr, Before(read1, write2), nil) {
		t.Fatal("a1 ⊗ a2 with a1 before a2 not satisfied")
	}
	if SatisfiesTrace(tr, Before(write2, read1), nil) {
		t.Fatal("a1 ⊗ a2 satisfied with a2 before a1")
	}
	// Same access twice satisfies a ⊗ a.
	twice := trace.Trace{read1, read1}
	if !SatisfiesTrace(twice, Before(read1, read1), nil) {
		t.Fatal("a ⊗ a over <a,a> not satisfied")
	}
	once := trace.Trace{read1}
	if SatisfiesTrace(once, Before(read1, read1), nil) {
		t.Fatal("a ⊗ a over <a> satisfied")
	}
}

func TestSatisfiesOrderedUsesEarliestFirstOccurrence(t *testing.T) {
	// a1 at 0 and 2, a2 at 1: the pair (0,1) witnesses the ordering.
	tr := trace.Trace{read1, write2, read1}
	if !SatisfiesTrace(tr, Before(read1, write2), nil) {
		t.Fatal("ordering with interleaved occurrences not satisfied")
	}
}

func TestSatisfiesOrderedProofs(t *testing.T) {
	tr := trace.Trace{read1, write2}
	onlyFirst := OracleFunc(func(a model.Access) bool { return a == read1 })
	if SatisfiesTrace(tr, Before(read1, write2), onlyFirst) {
		t.Fatal("ordering satisfied without proof of second access")
	}
}

func TestSatisfiesCount(t *testing.T) {
	tr := trace.Trace{read1, read1, write2, read1}
	selReads := model.Selector{Ops: []model.Operation{"read"}}
	tests := []struct {
		c    Constraint
		want bool
	}{
		{Count{Min: 0, Max: 5, Sel: selReads}, true},
		{Count{Min: 3, Max: 3, Sel: selReads}, true},
		{Count{Min: 4, Max: Unbounded, Sel: selReads}, false},
		{Count{Min: 0, Max: 2, Sel: selReads}, false},
		{AtMost(1, model.Selector{Ops: []model.Operation{"write"}}), true},
		{AtLeast(1, model.Selector{Servers: []model.ServerID{"s9"}}), false},
		{Exactly(4, model.Selector{}), true},
	}
	for i, tt := range tests {
		if got := SatisfiesTrace(tr, tt.c, nil); got != tt.want {
			t.Errorf("case %d: %s = %v, want %v", i, String(tt.c), got, tt.want)
		}
	}
}

func TestSatisfiesConnectives(t *testing.T) {
	tr := trace.Trace{read1, write2}
	a := Require(read1)
	b := Require(read3)
	if !SatisfiesTrace(tr, And{Left: a, Right: Require(write2)}, nil) {
		t.Fatal("and failed")
	}
	if SatisfiesTrace(tr, And{Left: a, Right: b}, nil) {
		t.Fatal("and with false conjunct satisfied")
	}
	if !SatisfiesTrace(tr, Or{Left: b, Right: a}, nil) {
		t.Fatal("or failed")
	}
	if !SatisfiesTrace(tr, Not{C: b}, nil) {
		t.Fatal("not failed")
	}
	// a1 -> a2 ≡ ¬a1 ∨ a2.
	if !SatisfiesTrace(tr, Implies(a, Require(write2)), nil) {
		t.Fatal("implication with both present failed")
	}
	if !SatisfiesTrace(tr, Implies(b, FalseC{}), nil) {
		t.Fatal("implication with absent premise failed")
	}
	if SatisfiesTrace(tr, Implies(a, b), nil) {
		t.Fatal("implication with present premise, absent conclusion satisfied")
	}
}

func TestSatisfiesAllAny(t *testing.T) {
	s := trace.NewSet(trace.Trace{read1}, trace.Trace{write2})
	c := Require(read1)
	if SatisfiesAll(s, c, nil) {
		t.Fatal("SatisfiesAll over mixed set")
	}
	if !SatisfiesAny(s, c, nil) {
		t.Fatal("SatisfiesAny missed satisfying trace")
	}
	empty := trace.NewSet()
	if !SatisfiesAll(empty, FalseC{}, nil) {
		t.Fatal("vacuous SatisfiesAll failed")
	}
	if SatisfiesAny(empty, TrueC{}, nil) {
		t.Fatal("SatisfiesAny over empty set")
	}
}

func TestStampObject(t *testing.T) {
	anon := model.Access{Op: "read", Resource: "f1", Server: "s1"}
	named := acc("o2", "write", "f2", "s1")
	c := AndOf(
		Require(anon),
		Before(anon, named),
		AtMost(5, model.Selector{Resources: []model.ResourceID{"f1"}}),
		Not{C: Or{Left: Require(anon), Right: TrueC{}}},
	)
	stamped := StampObject(c, "o1")
	var sawStampedAtom, sawKeptNamed, sawStampedSel bool
	Walk(stamped, func(x Constraint) bool {
		switch y := x.(type) {
		case Atom:
			if y.A.Object == "o1" {
				sawStampedAtom = true
			}
		case Ordered:
			if y.First.Object == "o1" && y.Second.Object == "o2" {
				sawKeptNamed = true
			}
		case Count:
			if len(y.Sel.Objects) == 1 && y.Sel.Objects[0] == "o1" {
				sawStampedSel = true
			}
		}
		return true
	})
	if !sawStampedAtom || !sawKeptNamed || !sawStampedSel {
		t.Fatalf("StampObject incomplete: atom=%v named=%v sel=%v",
			sawStampedAtom, sawKeptNamed, sawStampedSel)
	}
	// Original must be unchanged.
	var origUnchanged bool
	Walk(c, func(x Constraint) bool {
		if y, ok := x.(Atom); ok && y.A.Object == "" {
			origUnchanged = true
		}
		return true
	})
	if !origUnchanged {
		t.Fatal("StampObject mutated original")
	}
}

func TestStampObjectPreservesExistingSelectorObjects(t *testing.T) {
	c := AtMost(2, model.Selector{Objects: []model.ObjectID{"team-a", "team-b"}})
	stamped := StampObject(c, "o1").(Count)
	if len(stamped.Sel.Objects) != 2 {
		t.Fatalf("existing selector objects replaced: %v", stamped.Sel.Objects)
	}
}

func TestExample35RestrictedSoftware(t *testing.T) {
	// #(0, 5, σ_RSW): the restricted software package, either licensed
	// or trial version, cannot be accessed more than 5 times, no
	// matter where the mobile object runs.
	rsw := model.Selector{
		Name:      "RSW",
		Resources: []model.ResourceID{"rsw-licensed", "rsw-trial"},
	}
	c := AtMost(5, rsw)
	var tr trace.Trace
	for i := 0; i < 5; i++ {
		server := model.ServerID([]string{"s1", "s2"}[i%2])
		tr = append(tr, model.Access{Object: "o1", Op: "execute", Resource: "rsw-trial", Server: server})
		if !SatisfiesTrace(tr, c, nil) {
			t.Fatalf("constraint violated at %d accesses", i+1)
		}
	}
	tr = append(tr, model.Access{Object: "o1", Op: "execute", Resource: "rsw-licensed", Server: "s3"})
	if SatisfiesTrace(tr, c, nil) {
		t.Fatal("6th access across servers not caught")
	}
}

func TestMentionsOtherObject(t *testing.T) {
	own := model.Access{Object: "o1", Op: "read", Resource: "f"}
	foreign := model.Access{Object: "o2", Op: "write", Resource: "f"}
	anon := model.Access{Op: "read", Resource: "f"}
	tests := []struct {
		c    Constraint
		want bool
	}{
		{Require(anon), false},
		{Require(own), false},
		{Require(foreign), true},
		{Before(own, foreign), true},
		{Before(anon, own), false},
		{AtMost(3, model.Selector{Objects: []model.ObjectID{"o1"}}), false},
		{AtMost(3, model.Selector{Objects: []model.ObjectID{"o1", "o2"}}), true},
		{AtMost(3, model.Selector{}), false},
		{AndOf(Require(anon), Not{C: Require(foreign)}), true},
		{TrueC{}, false},
	}
	for i, tt := range tests {
		if got := MentionsOtherObject(tt.c, "o1"); got != tt.want {
			t.Errorf("case %d (%s): MentionsOtherObject = %v, want %v", i, String(tt.c), got, tt.want)
		}
	}
}
