package srac

import (
	"math/rand"
	"testing"

	"stac/internal/model"
	"stac/internal/sral"
	"stac/internal/trace"
)

func TestVerdictString(t *testing.T) {
	if AllTraces.String() != "all-traces" || NoTrace.String() != "no-trace" || Mixed.String() != "mixed" {
		t.Fatal("Verdict strings wrong")
	}
}

func TestVerdictNegate(t *testing.T) {
	if AllTraces.Negate() != NoTrace || NoTrace.Negate() != AllTraces || Mixed.Negate() != Mixed {
		t.Fatal("Negate wrong")
	}
}

func TestCheckConstants(t *testing.T) {
	p := sral.MustParse("read f1 @ s1")
	if CheckProgram(p, TrueC{}, "o1") != AllTraces {
		t.Fatal("T")
	}
	if CheckProgram(p, FalseC{}, "o1") != NoTrace {
		t.Fatal("F")
	}
}

func TestCheckAtom(t *testing.T) {
	p := sral.MustParse("read f1 @ s1; write f2 @ s1")
	tests := []struct {
		src  string
		want Verdict
	}{
		{"[read f1 @ s1]", AllTraces},
		{"[o1: read f1 @ s1]", AllTraces}, // object stamping
		{"[o2: read f1 @ s1]", NoTrace},   // different object
		{"[read f9 @ s1]", NoTrace},
		{"[* f1 @ *]", AllTraces},
	}
	for _, tt := range tests {
		if got := CheckProgram(p, MustParse(tt.src), "o1"); got != tt.want {
			t.Errorf("check(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestCheckAtomBranching(t *testing.T) {
	p := sral.MustParse("if x > 0 then { read f1 @ s1 } else { read f2 @ s1 }")
	if got := CheckProgram(p, MustParse("[read f1 @ s1]"), "o1"); got != Mixed {
		t.Fatalf("branch-only atom = %v, want mixed", got)
	}
	both := sral.MustParse("if x > 0 then { read f1 @ s1; read f3 @ s1 } else { read f3 @ s1 }")
	if got := CheckProgram(both, MustParse("[read f3 @ s1]"), "o1"); got != AllTraces {
		t.Fatalf("atom in both branches = %v, want all-traces", got)
	}
}

func TestCheckAtomLoop(t *testing.T) {
	p := sral.MustParse("while x > 0 do { read f1 @ s1 }")
	// Zero iterations possible: never must, but may.
	if got := CheckProgram(p, MustParse("[read f1 @ s1]"), "o1"); got != Mixed {
		t.Fatalf("loop atom = %v, want mixed", got)
	}
}

func TestCheckOrdered(t *testing.T) {
	tests := []struct {
		prog, cons string
		want       Verdict
	}{
		{"read f1 @ s1; write f2 @ s1", "[read f1 @ s1] >> [write f2 @ s1]", AllTraces},
		{"write f2 @ s1; read f1 @ s1", "[read f1 @ s1] >> [write f2 @ s1]", NoTrace},
		// Order forced inside one side of a parallel composition.
		{"{ read f1 @ s1; write f2 @ s1 } || read f3 @ s2", "[read f1 @ s1] >> [write f2 @ s1]", AllTraces},
		// Cross-side ordering is possible but never forced.
		{"read f1 @ s1 || write f2 @ s1", "[read f1 @ s1] >> [write f2 @ s1]", Mixed},
		// Branch-dependent ordering.
		{"if x > 0 then { read f1 @ s1; write f2 @ s1 } else { write f2 @ s1 }", "[read f1 @ s1] >> [write f2 @ s1]", Mixed},
		// Loop can witness the order across iterations but may run zero times.
		{"while x > 0 do { read f1 @ s1; write f2 @ s1 }", "[read f1 @ s1] >> [write f2 @ s1]", Mixed},
		// Accesses entirely absent.
		{"read f9 @ s9", "[read f1 @ s1] >> [write f2 @ s1]", NoTrace},
		// Only the first access present: ordering impossible.
		{"read f1 @ s1", "[read f1 @ s1] >> [write f2 @ s1]", NoTrace},
		// A single access never witnesses a ⊗ a.
		{"read f1 @ s1", "[read f1 @ s1] >> [read f1 @ s1]", NoTrace},
		// But two do.
		{"read f1 @ s1; read f1 @ s1", "[read f1 @ s1] >> [read f1 @ s1]", AllTraces},
	}
	for _, tt := range tests {
		p := sral.MustParse(tt.prog)
		c := MustParse(tt.cons)
		if got := CheckProgram(p, c, "o1"); got != tt.want {
			t.Errorf("check(%q, %q) = %v, want %v", tt.prog, tt.cons, got, tt.want)
		}
	}
}

func TestCheckCount(t *testing.T) {
	tests := []struct {
		prog, cons string
		want       Verdict
	}{
		{"read f1 @ s1; read f1 @ s1", "count(0, 5, sigma[r=f1])", AllTraces},
		{"read f1 @ s1; read f1 @ s1", "count(2, 2, sigma[r=f1])", AllTraces},
		{"read f1 @ s1; read f1 @ s1", "count(3, 5, sigma[r=f1])", NoTrace},
		{"read f1 @ s1; read f1 @ s1", "count(0, 1, sigma[r=f1])", NoTrace},
		{"if x > 0 then { read f1 @ s1 } else { skip }", "count(0, 1, sigma[r=f1])", AllTraces},
		{"if x > 0 then { read f1 @ s1 } else { skip }", "count(1, 1, sigma[r=f1])", Mixed},
		{"while x > 0 do { read f1 @ s1 }", "count(0, 5, sigma[r=f1])", Mixed},
		{"while x > 0 do { read f1 @ s1 }", "count(0, inf, sigma[r=f1])", AllTraces},
		{"while x > 0 do { ch ! 1 }", "count(0, 0, sigma[r=f1])", AllTraces},
		{"read f1 @ s1 || read f1 @ s2", "count(2, 2, sigma[r=f1])", AllTraces},
		{"while x > 0 do { read f1 @ s1 }", "count(1, inf, sigma[r=f1])", Mixed},
	}
	for _, tt := range tests {
		p := sral.MustParse(tt.prog)
		c := MustParse(tt.cons)
		if got := CheckProgram(p, c, "o1"); got != tt.want {
			t.Errorf("check(%q, %q) = %v, want %v", tt.prog, tt.cons, got, tt.want)
		}
	}
}

func TestCheckCountSelectorObjectStamping(t *testing.T) {
	p := sral.MustParse("read f1 @ s1")
	c := Count{Min: 1, Max: 1, Sel: model.Selector{Objects: []model.ObjectID{"o1"}}}
	if got := CheckProgram(p, c, "o1"); got != AllTraces {
		t.Fatalf("stamped count = %v", got)
	}
	if got := CheckProgram(p, c, "o2"); got != NoTrace {
		t.Fatalf("foreign-object count = %v", got)
	}
}

func TestCheckConnectives(t *testing.T) {
	p := sral.MustParse("read f1 @ s1; write f2 @ s1")
	all := MustParse("[read f1 @ s1]")
	none := MustParse("[read f9 @ s1]")
	mixed := Require(model.Access{Op: "read", Resource: "f1", Server: "s1"})
	mixedProg := sral.MustParse("if x > 0 then { read f1 @ s1 } else { skip }")

	if CheckProgram(p, And{Left: all, Right: all}, "o1") != AllTraces {
		t.Fatal("all∧all")
	}
	if CheckProgram(p, And{Left: all, Right: none}, "o1") != NoTrace {
		t.Fatal("all∧none")
	}
	if CheckProgram(p, Or{Left: none, Right: all}, "o1") != AllTraces {
		t.Fatal("none∨all")
	}
	if CheckProgram(p, Or{Left: none, Right: none}, "o1") != NoTrace {
		t.Fatal("none∨none")
	}
	if CheckProgram(p, Not{C: all}, "o1") != NoTrace {
		t.Fatal("¬all")
	}
	if CheckProgram(p, Not{C: none}, "o1") != AllTraces {
		t.Fatal("¬none")
	}
	if CheckProgram(mixedProg, And{Left: TrueC{}, Right: mixed}, "o1") != Mixed {
		t.Fatal("T∧mixed")
	}
	if CheckProgram(mixedProg, Or{Left: FalseC{}, Right: mixed}, "o1") != Mixed {
		t.Fatal("F∨mixed")
	}
}

func TestMustMay(t *testing.T) {
	p := sral.MustParse("if x > 0 then { read f1 @ s1 } else { skip }")
	c := MustParse("[read f1 @ s1]")
	if Must(p, c, "o1") {
		t.Fatal("Must over mixed")
	}
	if !May(p, c, "o1") {
		t.Fatal("May over mixed")
	}
	if !Must(sral.MustParse("read f1 @ s1"), c, "o1") {
		t.Fatal("Must over certain")
	}
	if May(sral.MustParse("read f9 @ s9"), c, "o1") {
		t.Fatal("May over impossible")
	}
}

func TestExplain(t *testing.T) {
	p := sral.MustParse("read f1 @ s1")
	c := MustParse("[read f1 @ s1] and not [read f9 @ s9]")
	e := Explain(p, c, "o1")
	if e.Verdict != AllTraces {
		t.Fatalf("root verdict = %v", e.Verdict)
	}
	if len(e.Children) != 2 {
		t.Fatalf("children = %d", len(e.Children))
	}
	if e.Children[1].Verdict != AllTraces || len(e.Children[1].Children) != 1 {
		t.Fatalf("negation child = %+v", e.Children[1])
	}
	s := e.String()
	if len(s) == 0 {
		t.Fatal("empty explanation")
	}
}

// --- Soundness: static verdicts vs exhaustive enumeration ------------

func randomCheckProgram(r *rand.Rand, depth int) sral.Node {
	accs := []sral.Prim{
		sral.AccessOp("read", "f1", "s1"),
		sral.AccessOp("write", "f2", "s1"),
		sral.AccessOp("read", "f3", "s2"),
	}
	if depth <= 0 {
		if r.Intn(4) == 0 {
			return sral.Skip{}
		}
		return accs[r.Intn(len(accs))]
	}
	switch r.Intn(4) {
	case 0:
		return sral.Seq{First: randomCheckProgram(r, depth-1), Second: randomCheckProgram(r, depth-1)}
	case 1:
		return sral.If{Cond: sral.Opaque{Name: "c"}, Then: randomCheckProgram(r, depth-1), Else: randomCheckProgram(r, depth-1)}
	case 2:
		return sral.Par{Left: randomCheckProgram(r, depth-1), Right: randomCheckProgram(r, depth-1)}
	default:
		return randomCheckProgram(r, depth-1)
	}
}

// Property (soundness of Theorem 3.2's checker): on loop-free
// programs, AllTraces implies every enumerated trace satisfies and
// NoTrace implies none does.
func TestStaticSoundnessOnEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		p := randomCheckProgram(r, 3)
		c := randomConstraint(r, 2)
		set, exact := sral.Traces(p, sral.TraceOptions{MaxTraces: -1})
		if !exact {
			t.Fatalf("loop-free enumeration inexact for %s", sral.String(p))
		}
		// Match the static checker's object attribution.
		stamped := stampSet(set, "o1")
		verdict := CheckProgram(p, c, "o1")
		all := SatisfiesAll(stamped, c, nil)
		any := SatisfiesAny(stamped, c, nil)
		switch verdict {
		case AllTraces:
			if !all {
				t.Fatalf("iteration %d: verdict all-traces but a trace fails\nP = %s\nC = %s",
					i, sral.String(p), String(c))
			}
		case NoTrace:
			if any {
				t.Fatalf("iteration %d: verdict no-trace but a trace satisfies\nP = %s\nC = %s",
					i, sral.String(p), String(c))
			}
		}
	}
}

// Property: the checker is exact (never Mixed unless truly mixed) on
// the negation-free, disjunction-free fragment over atoms and counts
// for sequential loop-free programs.
func TestStaticExactnessOnConjunctiveFragment(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for i := 0; i < 300; i++ {
		p := randomSeqOnlyProgram(r, 3)
		c := randomConjunctiveConstraint(r, 2)
		set, _ := sral.Traces(p, sral.TraceOptions{MaxTraces: -1})
		stamped := stampSet(set, "o1")
		verdict := CheckProgram(p, c, "o1")
		all := SatisfiesAll(stamped, c, nil)
		any := SatisfiesAny(stamped, c, nil)
		want := Mixed
		switch {
		case all:
			want = AllTraces
		case !any:
			want = NoTrace
		}
		if verdict != want {
			t.Fatalf("iteration %d: verdict %v, enumeration says %v\nP = %s\nC = %s",
				i, verdict, want, sral.String(p), String(c))
		}
	}
}

func randomSeqOnlyProgram(r *rand.Rand, depth int) sral.Node {
	accs := []sral.Prim{
		sral.AccessOp("read", "f1", "s1"),
		sral.AccessOp("write", "f2", "s1"),
		sral.AccessOp("read", "f3", "s2"),
	}
	if depth <= 0 {
		return accs[r.Intn(len(accs))]
	}
	return sral.Seq{First: randomSeqOnlyProgram(r, depth-1), Second: randomSeqOnlyProgram(r, depth-1)}
}

func randomConjunctiveConstraint(r *rand.Rand, depth int) Constraint {
	accs := []model.Access{
		{Op: "read", Resource: "f1", Server: "s1"},
		{Op: "write", Resource: "f2", Server: "s1"},
		{Op: "read", Resource: "f3", Server: "s2"},
	}
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return Require(accs[r.Intn(len(accs))])
		case 1:
			lo := r.Intn(3)
			return Count{Min: lo, Max: lo + r.Intn(4), Sel: model.Selector{Ops: []model.Operation{"read"}}}
		default:
			return Before(accs[r.Intn(len(accs))], accs[r.Intn(len(accs))])
		}
	}
	return And{Left: randomConjunctiveConstraint(r, depth-1), Right: randomConjunctiveConstraint(r, depth-1)}
}

func stampSet(s *trace.Set, o model.ObjectID) *trace.Set {
	out := trace.NewSet()
	for _, tr := range s.Traces() {
		stamped := make(trace.Trace, len(tr))
		for i, a := range tr {
			stamped[i] = a.WithObject(o)
		}
		out.Add(stamped)
	}
	return out
}
