package srac

// Clause coverage: one prefix evaluation's outcome at EVERY node of
// the constraint tree, plus which node the overall verdict is
// attributed to. Aggregated over traffic (core/coverage.go) this
// answers "which clauses of the policy ever decide anything" — dead
// clauses are candidates for tightening or deletion, and a clause
// that is never decisive cannot be blamed for any denial.
//
// Cover is the coverage counterpart of AttributeWith: its recursion
// is the same transcription of evalPrefix, so the (Status, Stable)
// it reports for the root — and for every interior node — equal the
// engine's verdict on that subformula. The equivalence with
// AttributeWith is property-tested over a formula corpus.

import (
	"fmt"

	"stac/internal/trace"
)

// NodeCoverage is one subformula's outcome in a single prefix
// evaluation, addressed by its path from the root: "" is the root,
// then one letter per step — 'l'/'r' into a conjunction or
// disjunction, 'n' under a negation. Paths are stable across
// evaluations of the same constraint, so they key aggregation.
type NodeCoverage struct {
	Path   string
	Status Status
	Stable bool
	// Decisive marks the node the whole-constraint verdict is
	// attributed to (AttributeWith's Clause); exactly one node per
	// evaluation is decisive.
	Decisive bool
}

// Cover evaluates the constraint with the given leaf evaluator and
// returns per-node coverage (pre-order left-to-right by path) plus
// the root attribution, which equals AttributeWith(c, leaf) field for
// field.
func Cover(c Constraint, leaf LeafEval) ([]NodeCoverage, Attribution) {
	var out []NodeCoverage
	a, decisive := coverNode(c, "", leaf, &out)
	for i := range out {
		if out[i].Path == decisive {
			out[i].Decisive = true
		}
	}
	// Reverse the post-order accumulation into pre-order: parents
	// before children reads naturally in reports.
	sortNodes(out)
	return out, a
}

// coverNode mirrors AttributeWith's connective logic, additionally
// appending each node's outcome and returning the path of the node
// the verdict is attributed to.
func coverNode(c Constraint, path string, leaf LeafEval, out *[]NodeCoverage) (Attribution, string) {
	var a Attribution
	decisive := path
	switch x := c.(type) {
	case And:
		l, lp := coverNode(x.Left, path+"l", leaf, out)
		r, rp := coverNode(x.Right, path+"r", leaf, out)
		switch {
		case l.Status == Violated:
			a, decisive = l, lp
		case r.Status == Violated:
			a, decisive = r, rp
		case l.Status == Satisfied && r.Status == Satisfied:
			a = Attribution{
				Status: Satisfied, Stable: l.Stable && r.Stable,
				Clause: c, Detail: "both conjuncts satisfied",
				Counts: mergeCounts(l.Counts, r.Counts),
			}
		case l.Status == Pending:
			l.Status = Pending
			l.Stable = false
			a, decisive = l, lp
		default:
			r.Status = Pending
			r.Stable = false
			a, decisive = r, rp
		}
	case Or:
		l, lp := coverNode(x.Left, path+"l", leaf, out)
		r, rp := coverNode(x.Right, path+"r", leaf, out)
		switch {
		case l.Status == Satisfied && l.Stable:
			a, decisive = l, lp
		case r.Status == Satisfied && r.Stable:
			a, decisive = r, rp
		case l.Status == Satisfied:
			a, decisive = l, lp
		case r.Status == Satisfied:
			a, decisive = r, rp
		case l.Status == Violated && r.Status == Violated:
			a = Attribution{
				Status: Violated, Stable: true, Clause: c,
				Detail: fmt.Sprintf("both alternatives violated: %s; %s", l.Detail, r.Detail),
				Counts: mergeCounts(l.Counts, r.Counts),
			}
		case l.Status == Pending:
			l.Status = Pending
			l.Stable = false
			a, decisive = l, lp
		default:
			r.Status = Pending
			r.Stable = false
			a, decisive = r, rp
		}
	case Not:
		// AttributeWith always blames the negation node itself, so the
		// Not node is decisive regardless of the operand's path.
		in, _ := coverNode(x.C, path+"n", leaf, out)
		st, stable := NegateStable(in.Status, in.Stable)
		a = Attribution{Status: st, Stable: stable, Clause: c, Counts: in.Counts}
		switch st {
		case Violated:
			a.Detail = fmt.Sprintf("negated subformula stably satisfied (%s)", in.Detail)
		case Satisfied:
			a.Detail = fmt.Sprintf("negated subformula violated (%s)", in.Detail)
		default:
			if in.Status == Satisfied {
				a.Detail = fmt.Sprintf("negated subformula satisfied but not stably (%s)", in.Detail)
			} else {
				a.Detail = fmt.Sprintf("negated subformula still pending (%s)", in.Detail)
			}
		}
	default:
		st, stable, detail := leaf(c)
		a = Attribution{Status: st, Stable: stable, Clause: c, Detail: detail}
		if cnt, ok := c.(Count); ok {
			max := cnt.Max
			if max == Unbounded {
				max = -1
			}
			a.Counts = []CountWindow{{Selector: cnt.Sel.String(), Min: cnt.Min, Max: max, Observed: -1}}
		}
	}
	*out = append(*out, NodeCoverage{Path: path, Status: a.Status, Stable: a.Stable})
	return a, decisive
}

// sortNodes orders coverage by path: parents before children, left
// subtree before right (lexicographic order on paths does exactly
// that, since every child path extends its parent's).
func sortNodes(nodes []NodeCoverage) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Path < nodes[j-1].Path; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// WalkPaths visits every node of the constraint tree with its
// coverage path, pre-order. Aggregators use it to pre-seed cells so
// clauses that never get evaluated still show up (as dead).
func WalkPaths(c Constraint, fn func(path string, c Constraint)) {
	walkPaths(c, "", fn)
}

func walkPaths(c Constraint, path string, fn func(string, Constraint)) {
	fn(path, c)
	switch x := c.(type) {
	case And:
		walkPaths(x.Left, path+"l", fn)
		walkPaths(x.Right, path+"r", fn)
	case Or:
		walkPaths(x.Left, path+"l", fn)
		walkPaths(x.Right, path+"r", fn)
	case Not:
		walkPaths(x.C, path+"n", fn)
	}
}

// SubclauseAt resolves a coverage path against a constraint tree,
// returning the subformula the path addresses (false when the path
// does not exist in this tree — a stale path from another policy).
func SubclauseAt(c Constraint, path string) (Constraint, bool) {
	for i := 0; i < len(path); i++ {
		switch x := c.(type) {
		case And:
			switch path[i] {
			case 'l':
				c = x.Left
			case 'r':
				c = x.Right
			default:
				return nil, false
			}
		case Or:
			switch path[i] {
			case 'l':
				c = x.Left
			case 'r':
				c = x.Right
			default:
				return nil, false
			}
		case Not:
			if path[i] != 'n' {
				return nil, false
			}
			c = x.C
		default:
			return nil, false
		}
	}
	return c, true
}

// TraceLeafEval is the trace-scan leaf evaluator Attribute uses:
// leaves are decided against the proof-backed history t. Exposed so
// Cover can run the scan path with the engine's exact leaf semantics.
func TraceLeafEval(t trace.Trace, pr ProofOracle) LeafEval {
	if pr == nil {
		pr = AllProven
	}
	return func(leaf Constraint) (Status, bool, string) {
		switch x := leaf.(type) {
		case TrueC:
			return Satisfied, true, "constant T"
		case FalseC:
			return Violated, true, "constant F"
		case Atom:
			if i := firstMatch(t, x.A, 0, pr); i >= 0 {
				return Satisfied, true, fmt.Sprintf("witnessed at history position %d", i)
			}
			return Pending, false, "no proof-backed occurrence yet"
		case Ordered:
			i := firstMatch(t, x.First, 0, pr)
			if i < 0 {
				return Pending, false, "first access not yet witnessed"
			}
			if j := firstMatch(t, x.Second, i+1, pr); j >= 0 {
				return Satisfied, true, fmt.Sprintf("witnessed in order at positions %d and %d", i, j)
			}
			return Pending, false, fmt.Sprintf("first access witnessed at position %d, second still pending", i)
		case Count:
			n := countProven(t, x.Sel, pr)
			return countLeaf(x, n)
		}
		return Pending, false, fmt.Sprintf("unknown construct %T", leaf)
	}
}
