package srac

// Clause coverage: one prefix evaluation's outcome at EVERY node of
// the constraint tree, plus which node the overall verdict is
// attributed to. Aggregated over traffic (core/coverage.go) this
// answers "which clauses of the policy ever decide anything" — dead
// clauses are candidates for tightening or deletion, and a clause
// that is never decisive cannot be blamed for any denial.
//
// Cover is the coverage counterpart of AttributeWith: it projects
// CoverCost (cost.go), whose recursion is the same transcription of
// evalPrefix, so the (Status, Stable) it reports for the root — and
// for every interior node — equal the engine's verdict on that
// subformula. The equivalence with AttributeWith is property-tested
// over a formula corpus.

import (
	"fmt"

	"stac/internal/trace"
)

// NodeCoverage is one subformula's outcome in a single prefix
// evaluation, addressed by its path from the root: "" is the root,
// then one letter per step — 'l'/'r' into a conjunction or
// disjunction, 'n' under a negation. Paths are stable across
// evaluations of the same constraint, so they key aggregation.
type NodeCoverage struct {
	Path   string
	Status Status
	Stable bool
	// Decisive marks the node the whole-constraint verdict is
	// attributed to (AttributeWith's Clause); exactly one node per
	// evaluation is decisive.
	Decisive bool
}

// Cover evaluates the constraint with the given leaf evaluator and
// returns per-node coverage (pre-order left-to-right by path) plus
// the root attribution, which equals AttributeWith(c, leaf) field for
// field. It is a projection of CoverCost (untimed): both walks share
// one recursion, so coverage and cost profiles can never drift apart.
func Cover(c Constraint, leaf LeafEval) ([]NodeCoverage, Attribution) {
	nodes, a := CoverCost(c, leaf, false)
	return CoverageOf(nodes), a
}

// CoverageOf projects a cost walk's nodes down to their coverage view,
// so an engine running both aggregations pays for one walk and splits
// the result.
func CoverageOf(nodes []NodeCost) []NodeCoverage {
	out := make([]NodeCoverage, len(nodes))
	for i, n := range nodes {
		out[i] = NodeCoverage{Path: n.Path, Status: n.Status, Stable: n.Stable, Decisive: n.Decisive}
	}
	return out
}

// WalkPaths visits every node of the constraint tree with its
// coverage path, pre-order. Aggregators use it to pre-seed cells so
// clauses that never get evaluated still show up (as dead).
func WalkPaths(c Constraint, fn func(path string, c Constraint)) {
	walkPaths(c, "", fn)
}

func walkPaths(c Constraint, path string, fn func(string, Constraint)) {
	fn(path, c)
	switch x := c.(type) {
	case And:
		walkPaths(x.Left, path+"l", fn)
		walkPaths(x.Right, path+"r", fn)
	case Or:
		walkPaths(x.Left, path+"l", fn)
		walkPaths(x.Right, path+"r", fn)
	case Not:
		walkPaths(x.C, path+"n", fn)
	}
}

// SubclauseAt resolves a coverage path against a constraint tree,
// returning the subformula the path addresses (false when the path
// does not exist in this tree — a stale path from another policy).
func SubclauseAt(c Constraint, path string) (Constraint, bool) {
	for i := 0; i < len(path); i++ {
		switch x := c.(type) {
		case And:
			switch path[i] {
			case 'l':
				c = x.Left
			case 'r':
				c = x.Right
			default:
				return nil, false
			}
		case Or:
			switch path[i] {
			case 'l':
				c = x.Left
			case 'r':
				c = x.Right
			default:
				return nil, false
			}
		case Not:
			if path[i] != 'n' {
				return nil, false
			}
			c = x.C
		default:
			return nil, false
		}
	}
	return c, true
}

// TraceLeafEval is the trace-scan leaf evaluator Attribute uses:
// leaves are decided against the proof-backed history t. Exposed so
// Cover can run the scan path with the engine's exact leaf semantics.
func TraceLeafEval(t trace.Trace, pr ProofOracle) LeafEval {
	if pr == nil {
		pr = AllProven
	}
	return func(leaf Constraint) (Status, bool, string) {
		switch x := leaf.(type) {
		case TrueC:
			return Satisfied, true, "constant T"
		case FalseC:
			return Violated, true, "constant F"
		case Atom:
			if i := firstMatch(t, x.A, 0, pr); i >= 0 {
				return Satisfied, true, fmt.Sprintf("witnessed at history position %d", i)
			}
			return Pending, false, "no proof-backed occurrence yet"
		case Ordered:
			i := firstMatch(t, x.First, 0, pr)
			if i < 0 {
				return Pending, false, "first access not yet witnessed"
			}
			if j := firstMatch(t, x.Second, i+1, pr); j >= 0 {
				return Satisfied, true, fmt.Sprintf("witnessed in order at positions %d and %d", i, j)
			}
			return Pending, false, fmt.Sprintf("first access witnessed at position %d, second still pending", i)
		case Count:
			n := countProven(t, x.Sel, pr)
			return countLeaf(x, n)
		}
		return Pending, false, fmt.Sprintf("unknown construct %T", leaf)
	}
}
