package srac

import (
	"testing"

	"stac/internal/model"
	"stac/internal/trace"
)

// Regression tests for the negation unsoundness: the old negate mapped
// Satisfied to Violated unconditionally, so ¬#(m, n, σ) over a count
// inside [m, n] was reported as irreversibly violated even though an
// extension crossing the ceiling satisfies the negation. These tests
// fail against the old mapping and pin the NegateStable semantics.

func TestNegateStableMapping(t *testing.T) {
	tests := []struct {
		in         Status
		inStable   bool
		want       Status
		wantStable bool
	}{
		{Satisfied, true, Violated, true},
		{Satisfied, false, Pending, false},
		{Violated, true, Satisfied, true},
		{Violated, false, Satisfied, true}, // Violated is stable by definition
		{Pending, false, Pending, false},
	}
	for _, tt := range tests {
		got, gotStable := NegateStable(tt.in, tt.inStable)
		if got != tt.want || gotStable != tt.wantStable {
			t.Errorf("NegateStable(%v, %v) = (%v, %v), want (%v, %v)",
				tt.in, tt.inStable, got, gotStable, tt.want, tt.wantStable)
		}
	}
}

func TestEvalPrefixNegatedCountIsPending(t *testing.T) {
	// ¬#(0, 2, σ): "eventually more than two rsw executions". With the
	// count inside [0, 2] the inner atom is Satisfied but UNSTABLE —
	// further executions can push it over the ceiling — so the negation
	// is Pending, not Violated.
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	c := Not{C: Count{Min: 0, Max: 2, Sel: sel}}
	a := model.NewAccess("o1", "execute", "rsw", "s1")

	for _, hist := range []trace.Trace{
		trace.Empty,
		{a},
		{a, a},
	} {
		if got := EvalPrefix(hist, c, nil); got != Pending {
			t.Fatalf("¬count over %d in-range accesses = %v, want pending", len(hist), got)
		}
	}
	// The extension the old semantics ruled out: a third execution
	// crosses the ceiling, satisfying the negation for good.
	over := trace.Trace{a, a, a}
	if got, stable := EvalPrefixStable(over, c, nil); got != Satisfied || !stable {
		t.Fatalf("¬count over ceiling = (%v, %v), want (satisfied, true)", got, stable)
	}
}

func TestEvalPrefixNegatedUnboundedCount(t *testing.T) {
	// ¬#(2, ∞, σ): once two selected accesses are witnessed the inner
	// count is Satisfied AND stable (no ceiling to cross back), so the
	// negation really is irreversibly Violated.
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	c := Not{C: Count{Min: 2, Max: Unbounded, Sel: sel}}
	a := model.NewAccess("o1", "execute", "rsw", "s1")

	if got := EvalPrefix(trace.Trace{a}, c, nil); got != Pending {
		t.Fatalf("below min = %v, want pending", got)
	}
	if got, stable := EvalPrefixStable(trace.Trace{a, a}, c, nil); got != Violated || !stable {
		t.Fatalf("at min = (%v, %v), want (violated, true)", got, stable)
	}
}

func TestEvalPrefixCountImplication(t *testing.T) {
	// #(1, 2, σ) → a desugars to ¬count ∨ a. With the count in range
	// and the consequent unwitnessed, the verdict must stay Pending:
	// the consequent can still happen, and so can a ceiling crossing.
	// Under the old negate the left disjunct was Violated, so an
	// unwitnessed consequent made the whole implication Violated.
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	cons := model.Access{Op: "write", Resource: "log", Server: "s1"}
	c := Implies(Count{Min: 1, Max: 2, Sel: sel}, Require(cons))
	a := model.NewAccess("o1", "execute", "rsw", "s1")

	if got := EvalPrefix(trace.Trace{a}, c, nil); got != Pending {
		t.Fatalf("in-range count, unwitnessed consequent = %v, want pending", got)
	}
	// Witnessing the consequent satisfies the implication.
	withCons := trace.Trace{a, model.NewAccess("o1", "write", "log", "s1")}
	if got := EvalPrefix(withCons, c, nil); got != Satisfied {
		t.Fatalf("witnessed consequent = %v, want satisfied", got)
	}
	// The hardest shape: count → F. Pre-fix this was Violated on any
	// in-range count; soundly it is Pending until the ceiling is
	// crossed (then Satisfied: the antecedent is irreversibly false).
	toF := Implies(Count{Min: 0, Max: 1, Sel: sel}, FalseC{})
	if got := EvalPrefix(trace.Trace{a}, toF, nil); got != Pending {
		t.Fatalf("count→F in range = %v, want pending", got)
	}
	if got := EvalPrefix(trace.Trace{a, a}, toF, nil); got != Satisfied {
		t.Fatalf("count→F over ceiling = %v, want satisfied", got)
	}
}

func TestEvalPrefixNestedNegation(t *testing.T) {
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	a := model.NewAccess("o1", "execute", "rsw", "s1")

	// ¬¬count: the inner Satisfied is unstable, so the double negation
	// conservatively stays Pending (it cannot claim Satisfied: the
	// inner negation is Pending, and ¬Pending is Pending).
	dnCount := Not{C: Not{C: Count{Min: 0, Max: 2, Sel: sel}}}
	if got := EvalPrefix(trace.Trace{a}, dnCount, nil); got != Pending {
		t.Fatalf("¬¬count in range = %v, want pending", got)
	}

	// ¬¬atom over a witnessed atom: the inner Satisfied is stable, so
	// the double negation recovers Satisfied (and stability).
	dnAtom := Not{C: Not{C: Require(model.Access{Op: "execute", Resource: "rsw"})}}
	if got, stable := EvalPrefixStable(trace.Trace{a}, dnAtom, nil); got != Satisfied || !stable {
		t.Fatalf("¬¬witnessed atom = (%v, %v), want (satisfied, true)", got, stable)
	}
	if got := EvalPrefix(trace.Empty, dnAtom, nil); got != Pending {
		t.Fatalf("¬¬unwitnessed atom = %v, want pending", got)
	}
}

func TestEvalPrefixStableBits(t *testing.T) {
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	a := model.NewAccess("o1", "execute", "rsw", "s1")
	atom := Require(model.Access{Op: "execute", Resource: "rsw"})
	tests := []struct {
		name       string
		c          Constraint
		hist       trace.Trace
		want       Status
		wantStable bool
	}{
		{"witnessed atom", atom, trace.Trace{a}, Satisfied, true},
		{"unwitnessed atom", atom, trace.Empty, Pending, false},
		{"bounded count in range", Count{Min: 0, Max: 2, Sel: sel}, trace.Trace{a}, Satisfied, false},
		{"unbounded count at min", Count{Min: 1, Max: Unbounded, Sel: sel}, trace.Trace{a}, Satisfied, true},
		{"count over ceiling", Count{Min: 0, Max: 0, Sel: sel}, trace.Trace{a}, Violated, true},
		{"and of stable+unstable", And{Left: atom, Right: Count{Min: 0, Max: 2, Sel: sel}}, trace.Trace{a}, Satisfied, false},
		{"or picks stable side", Or{Left: atom, Right: Count{Min: 0, Max: 2, Sel: sel}}, trace.Trace{a}, Satisfied, true},
	}
	for _, tt := range tests {
		got, stable := EvalPrefixStable(tt.hist, tt.c, nil)
		if got != tt.want || stable != tt.wantStable {
			t.Errorf("%s: = (%v, %v), want (%v, %v)", tt.name, got, stable, tt.want, tt.wantStable)
		}
	}
}

// Regression for the counting/oracle mismatch: #(m, n, σ) must count
// only proof-backed accesses, like the atom and ordering cases, in
// both trace satisfaction and prefix evaluation.
func TestCountIgnoresUnprovenAccesses(t *testing.T) {
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	a := model.NewAccess("o1", "execute", "rsw", "s1")
	proven := model.NewAccess("o2", "execute", "rsw", "s1")
	oracle := OracleFunc(func(x model.Access) bool { return x.Object == "o2" })

	ceiling := Count{Min: 0, Max: 1, Sel: sel}
	// Three matching accesses, but only one attested: the ceiling holds.
	hist := trace.Trace{a, a, proven}
	if !SatisfiesTrace(hist, ceiling, oracle) {
		t.Fatal("unproven accesses consumed the ceiling in SatisfiesTrace")
	}
	if got := EvalPrefix(hist, ceiling, oracle); got != Satisfied {
		t.Fatalf("EvalPrefix counted unproven accesses: %v", got)
	}

	floor := Count{Min: 2, Max: Unbounded, Sel: sel}
	// Unproven accesses must not satisfy a floor either.
	if SatisfiesTrace(hist, floor, oracle) {
		t.Fatal("unproven accesses satisfied the floor in SatisfiesTrace")
	}
	if got := EvalPrefix(hist, floor, oracle); got != Pending {
		t.Fatalf("EvalPrefix floor over unproven accesses = %v, want pending", got)
	}
	// With everything attested the floor is met.
	if got := EvalPrefix(trace.Trace{proven, proven}, floor, oracle); got != Satisfied {
		t.Fatal("proven accesses did not satisfy the floor")
	}
}
