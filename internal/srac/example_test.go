package srac_test

import (
	"fmt"

	"stac/internal/model"
	"stac/internal/srac"
	"stac/internal/sral"
	"stac/internal/trace"
)

func ExampleSatisfiesTrace() {
	// Example 3.5's restricted-software rule: at most 5 accesses to
	// the package (licensed or trial), at any server.
	c := srac.MustParse("count(0, 5, sigma[r=rsw-licensed,rsw-trial])")
	var t trace.Trace
	for i := 0; i < 6; i++ {
		t = append(t, model.NewAccess("dev-7", "execute", "rsw-trial", "s1"))
		fmt.Printf("after %d runs: %v\n", i+1, srac.SatisfiesTrace(t, c, nil))
	}
	// Output:
	// after 1 runs: true
	// after 2 runs: true
	// after 3 runs: true
	// after 4 runs: true
	// after 5 runs: true
	// after 6 runs: false
}

func ExampleCheckProgram() {
	// Theorem 3.2: decide P ⊨ C without enumerating traces(P).
	p := sral.MustParse("read dep @ s1; read mod @ s1")
	c := srac.MustParse("[read dep @ *] >> [read mod @ *]")
	fmt.Println(srac.CheckProgram(p, c, "o1"))

	reversed := sral.MustParse("read mod @ s1; read dep @ s1")
	fmt.Println(srac.CheckProgram(reversed, c, "o1"))
	// Output:
	// all-traces
	// no-trace
}

func ExampleEvalPrefix() {
	// Enforcement reading: a crossed ceiling is irreversible, a
	// missing required access is merely pending.
	ceiling := srac.MustParse("count(0, 1, sigma[r=rsw])")
	needed := srac.MustParse("[read manifest @ *]")
	hist := trace.Trace{
		model.NewAccess("o1", "execute", "rsw", "s1"),
		model.NewAccess("o1", "execute", "rsw", "s2"),
	}
	fmt.Println(srac.EvalPrefix(hist, ceiling, nil))
	fmt.Println(srac.EvalPrefix(hist, needed, nil))
	// Output:
	// violated
	// pending
}
