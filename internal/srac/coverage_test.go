package srac

import (
	"math/rand"
	"testing"

	"stac/internal/model"
	"stac/internal/trace"
)

// Property: Cover's root attribution equals AttributeWith, every
// node's (Status, Stable) equals EvalPrefixStable on that subformula,
// exactly one node is decisive, and the decisive node carries the
// attributed clause — over the full grammar.
func TestCoverAgreesWithAttributeAndEval(t *testing.T) {
	r := rand.New(rand.NewSource(211))
	pool := []model.Access{
		model.NewAccess("", "read", "f1", "s1"),
		model.NewAccess("", "write", "f2", "s1"),
		model.NewAccess("", "read", "f3", "s2"),
		model.NewAccess("", "execute", "rsw", "s2"),
	}
	for i := 0; i < 1500; i++ {
		var hist trace.Trace
		for j := 0; j < r.Intn(7); j++ {
			hist = append(hist, pool[r.Intn(len(pool))])
		}
		c := randomFullConstraint(r, 1+r.Intn(3))
		leaf := TraceLeafEval(hist, nil)
		nodes, got := Cover(c, leaf)
		want := AttributeWith(c, leaf)
		if got.Status != want.Status || got.Stable != want.Stable ||
			got.ClauseString() != want.ClauseString() || got.Detail != want.Detail {
			t.Fatalf("Cover root attribution diverges for %s over %v:\n got (%s, %v) %q — %s\nwant (%s, %v) %q — %s",
				String(c), hist, got.Status, got.Stable, got.ClauseString(), got.Detail,
				want.Status, want.Stable, want.ClauseString(), want.Detail)
		}
		decisive := 0
		var decisiveNode NodeCoverage
		seen := make(map[string]bool, len(nodes))
		for _, n := range nodes {
			if seen[n.Path] {
				t.Fatalf("duplicate path %q for %s", n.Path, String(c))
			}
			seen[n.Path] = true
			sub, ok := SubclauseAt(c, n.Path)
			if !ok {
				t.Fatalf("path %q does not resolve in %s", n.Path, String(c))
			}
			st, stable := EvalPrefixStable(hist, sub, nil)
			if n.Status != st || n.Stable != stable {
				t.Fatalf("node %q of %s: coverage (%s, %v) != eval (%s, %v)",
					n.Path, String(c), n.Status, n.Stable, st, stable)
			}
			if n.Decisive {
				decisive++
				decisiveNode = n
			}
		}
		if decisive != 1 {
			t.Fatalf("%d decisive nodes for %s over %v (want exactly 1): %+v",
				decisive, String(c), hist, nodes)
		}
		sub, _ := SubclauseAt(c, decisiveNode.Path)
		if String(sub) != want.ClauseString() {
			t.Fatalf("decisive path %q resolves to %s, but attribution blames %s (constraint %s)",
				decisiveNode.Path, String(sub), want.ClauseString(), String(c))
		}
	}
}

// WalkPaths must enumerate exactly the paths Cover produces, in
// pre-order, and SubclauseAt must invert it.
func TestWalkPathsMatchesCover(t *testing.T) {
	r := rand.New(rand.NewSource(223))
	for i := 0; i < 300; i++ {
		c := randomFullConstraint(r, 1+r.Intn(3))
		var walked []string
		WalkPaths(c, func(path string, sub Constraint) {
			walked = append(walked, path)
			got, ok := SubclauseAt(c, path)
			if !ok || String(got) != String(sub) {
				t.Fatalf("SubclauseAt(%q) = %v/%v, want %s", path, got, ok, String(sub))
			}
		})
		nodes, _ := Cover(c, TraceLeafEval(nil, nil))
		if len(nodes) != len(walked) {
			t.Fatalf("Cover has %d nodes, WalkPaths %d for %s", len(nodes), len(walked), String(c))
		}
		covered := make(map[string]bool, len(nodes))
		for _, n := range nodes {
			covered[n.Path] = true
		}
		for _, p := range walked {
			if !covered[p] {
				t.Fatalf("WalkPaths path %q missing from Cover for %s", p, String(c))
			}
		}
	}
}

func TestSubclauseAtRejectsBadPaths(t *testing.T) {
	c := And{Left: TrueC{}, Right: Not{C: FalseC{}}}
	for _, bad := range []string{"x", "ln", "rl", "rnn", "lll"} {
		if sub, ok := SubclauseAt(c, bad); ok {
			t.Errorf("SubclauseAt(%q) = %s, want miss", bad, String(sub))
		}
	}
	if sub, ok := SubclauseAt(c, "rn"); !ok || String(sub) != String(FalseC{}) {
		t.Errorf("SubclauseAt(rn) = %v/%v, want F", sub, ok)
	}
}
