// Package testutil holds small helpers shared by the integration and
// end-to-end test suites. Its centrepiece is a TestMain-level resource
// leak check: a package that opts in fails its test binary when, after
// all tests pass, the process retains more goroutines or open file
// descriptors than it started with. Per-test leak assertions catch the
// loud leaks; this catches the slow drip a suite of TCP daemons,
// watchers and load workers can accumulate across tests.
package testutil

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"
)

const (
	// goroutineSlack tolerates the handful of goroutines the testing
	// machinery and runtime keep alive after m.Run returns.
	goroutineSlack = 4
	// fdSlack tolerates descriptors the test framework itself holds
	// (coverage/profile outputs, std streams).
	fdSlack = 8
	// drainGrace is how long the check waits for background handlers
	// to unwind before declaring a leak.
	drainGrace = 5 * time.Second
)

// Main wraps testing.M.Run with the leak check: call it from a
// package's TestMain. The baseline is captured before any test runs;
// after a fully passing run the process must drain back to it (within
// the slack constants) before the grace expires. A failing test run is
// reported as-is — leak noise on top of a real failure only obscures
// it.
func Main(m *testing.M) {
	g0 := runtime.NumGoroutine()
	f0 := openFDs()
	code := m.Run()
	if code == 0 {
		if msg := Leaked(g0, f0, drainGrace); msg != "" {
			fmt.Fprintln(os.Stderr, "testutil: "+msg)
			code = 1
		}
	}
	os.Exit(code)
}

// Leaked polls until the process drains to the given goroutine and FD
// baselines (plus slack) or the grace expires, returning "" on a clean
// drain and a description of the leak otherwise. A negative fdBaseline
// disables the FD check (platforms without /proc).
func Leaked(goroutineBaseline, fdBaseline int, grace time.Duration) string {
	// Idle keep-alive connections parked in the default HTTP transport
	// are live FDs and goroutines, but they are cache, not leaks.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(grace)
	for {
		g := runtime.NumGoroutine()
		f := openFDs()
		gOK := g <= goroutineBaseline+goroutineSlack
		fOK := fdBaseline < 0 || f < 0 || f <= fdBaseline+fdSlack
		if gOK && fOK {
			return ""
		}
		if time.Now().After(deadline) {
			return fmt.Sprintf(
				"resource leak after tests: goroutines %d (baseline %d, slack %d), open fds %d (baseline %d, slack %d)",
				g, goroutineBaseline, goroutineSlack, f, fdBaseline, fdSlack)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// openFDs counts the process's open file descriptors via /proc
// (Linux). It returns -1 where that interface is unavailable, which
// disables the FD half of the check.
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir itself holds one descriptor for the directory.
	return len(ents) - 1
}
