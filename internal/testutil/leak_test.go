package testutil

import (
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLeakedCleanProcessDrains(t *testing.T) {
	if msg := Leaked(runtime.NumGoroutine(), openFDs(), time.Second); msg != "" {
		t.Fatalf("clean process reported as leaking: %s", msg)
	}
}

func TestLeakedDetectsGoroutineLeak(t *testing.T) {
	g0 := runtime.NumGoroutine()
	stop := make(chan struct{})
	defer close(stop)
	// Pin goroutines beyond the slack.
	for i := 0; i < goroutineSlack+2; i++ {
		go func() { <-stop }()
	}
	msg := Leaked(g0, -1, 100*time.Millisecond)
	if !strings.Contains(msg, "resource leak") {
		t.Fatalf("leak not detected: %q", msg)
	}
}

func TestLeakedDetectsFDLeak(t *testing.T) {
	f0 := openFDs()
	if f0 < 0 {
		t.Skip("no /proc/self/fd on this platform")
	}
	var mu sync.Mutex
	var conns []net.Conn
	hold := func(c net.Conn) {
		mu.Lock()
		conns = append(conns, c)
		mu.Unlock()
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			hold(c)
		}
	}()
	// Each dialled connection holds an FD on our side too.
	for i := 0; i < fdSlack+4; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		hold(c)
	}
	// Generous goroutine baseline so only the FD half can trip.
	msg := Leaked(runtime.NumGoroutine()+100, f0, 100*time.Millisecond)
	if !strings.Contains(msg, "resource leak") {
		t.Fatalf("fd leak not detected: %q", msg)
	}
}

func TestLeakedWaitsForDrain(t *testing.T) {
	g0 := runtime.NumGoroutine()
	done := make(chan struct{})
	for i := 0; i < goroutineSlack+2; i++ {
		go func() {
			time.Sleep(150 * time.Millisecond)
			<-done
		}()
	}
	close(done)
	// The goroutines unwind inside the grace window: no leak.
	if msg := Leaked(g0, -1, 3*time.Second); msg != "" {
		t.Fatalf("draining goroutines reported as leak: %s", msg)
	}
}
