package stac

// Chaos-mode integration tests: a 3-server coalition runs over TCP
// while internal/faults injects deterministic resets, latency,
// partial writes and dial failures. The headline property is verdict
// stability — every access decision the coalition makes under faults
// is exactly the decision the fault-free engine makes — plus the two
// safety invariants the ISSUE calls out: no proof is ever issued for
// a denied access, and the transport leaks no goroutines.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"stac/internal/agent"
	"stac/internal/core"
	"stac/internal/faults"
	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/obs/record"
	"stac/internal/server"
	"stac/internal/sral"
	"stac/internal/temporal"
)

// The survey policy caps reads at 5 coalition-wide under the global
// base-time scheme, so an 8-stop tour always produces 5 grants
// followed by a denial — a verdict mix that must survive any fault
// schedule.
const chaosPolicy = `
user rover
role surveyor
permission p-survey read * @ * {
    spatial count(0, 5, sigma[op=read])
    scheme  global
}
grant surveyor p-survey
assign rover surveyor
`

var chaosServers = []model.ServerID{"s1", "s2", "s3"}

// chaosProgram visits 8 resources round-robin across the 3 servers.
// The counting bound is spent at runtime, not statically: the loop
// keeps the program admissible under check(P, C).
func chaosProgram() string {
	var b strings.Builder
	b.WriteString("ch ! 8; ch ? x;\nwhile x > 0 do {\n")
	for i := 0; i < 8; i++ {
		srv := chaosServers[i%len(chaosServers)]
		fmt.Fprintf(&b, "  if x == %d then { read r%d @ %s };\n", 8-i, i+1, srv)
	}
	b.WriteString("  ch ! x - 1; ch ? x\n}")
	return b.String()
}

// chaosOutcome is everything observable about one tour that must be
// identical between the fault-free and the faulted runs.
type chaosOutcome struct {
	decisions []string // audited verdicts, per server in ID order
	proofs    int      // proofs the agent carried home
	ledger    int      // proofs the coalition issued in total
	granted   int      // granted decisions across all audit logs
	denied    bool     // the tour ended in a denial

	// Flight-recorder state, populated only when a WAL was attached.
	// equal() ignores these: recorder health may differ between runs,
	// verdicts must not.
	recorder     *record.Status
	recorderErrs int64
}

// runChaosTour runs the 8-stop tour. With a nil injector the network
// behaves perfectly; otherwise every client-side connection goes
// through the fault injector. A non-nil wal attaches a flight
// recorder writing to it — the recorder must never change verdicts,
// even when the wal itself fails.
func runChaosTour(t *testing.T, inj *faults.Injector, wal io.Writer) chaosOutcome {
	t.Helper()
	clk := temporal.NewSimClock(0)
	c := server.NewCoalition(clk, []byte("chaos-key"))
	c.EnableLedger()
	// A per-run registry isolates this tour's metrics so they reconcile
	// exactly against its audit trail, faults and all.
	reg := obs.NewRegistry()
	c.Engine.SetObs(reg)
	if err := core.LoadPolicyString(c.Engine, chaosPolicy); err != nil {
		t.Fatal(err)
	}
	if wal != nil {
		c.Engine.SetRecorder(record.New(record.Config{Capacity: 64, WAL: wal, Registry: reg}))
	}
	for _, id := range chaosServers {
		srv, err := c.AddServer(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if chaosServers[i%len(chaosServers)] == id {
				srv.HostResource(model.ResourceID(fmt.Sprintf("r%d", i+1)), []byte("survey-data"))
			}
		}
	}

	addrs := map[model.ServerID]string{}
	var daemons []*server.Daemon
	for _, s := range c.Servers() {
		d := server.NewDaemonWith(s, server.DaemonConfig{
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
			MaxConns:     16,
			Obs:          reg,
		})
		addr, err := d.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, d)
		addrs[s.ID()] = addr
	}
	defer func() {
		for _, d := range daemons {
			_ = d.Close()
		}
	}()

	// A fleet watcher stays attached for the whole tour: the SSE
	// decision stream must neither perturb verdicts nor leak goroutines
	// once Drain releases it (the caller's leak assertion covers this
	// path too).
	dbg := server.NewDebugServer(c, daemons, nil,
		server.DebugConfig{Registry: reg, Heartbeat: 50 * time.Millisecond})
	dts := httptest.NewServer(dbg.Mux())
	watchResp, werr := http.Get(dts.URL + "/debug/watch")
	if werr != nil {
		t.Fatal(werr)
	}
	watchDrained := make(chan struct{})
	go func() {
		defer close(watchDrained)
		_, _ = io.Copy(io.Discard, watchResp.Body)
	}()
	defer func() {
		dbg.Drain()
		select {
		case <-watchDrained:
		case <-time.After(5 * time.Second):
			t.Error("SSE watch stream still open after Drain")
		}
		watchResp.Body.Close()
		dts.Close()
	}()

	rt := &agent.RemoteRuntime{
		Addrs:       addrs,
		DialTimeout: 2 * time.Second,
		IOTimeout:   2 * time.Second,
		Retries:     30,
		Backoff:     time.Millisecond,
		Seed:        99,
		Obs:         reg,
	}
	if inj != nil {
		rt.Dial = inj.Dialer(nil)
	}

	rover := agent.New("rover",
		c.Signer.IssueCredential("rover", "hq@coalition", []string{"surveyor"}),
		sral.MustParse(chaosProgram()), c.Signer)
	err := rt.Launch(rover)

	out := chaosOutcome{proofs: rover.Proofs.Len(), ledger: c.Ledger().Len()}
	if rec := c.Engine.Recorder(); rec != nil {
		st := rec.Status()
		out.recorder = &st
		out.recorderErrs = reg.CounterValue("stac_recorder_errors_total", "")
	}
	if err != nil {
		if !errors.Is(err, server.ErrDenied) {
			t.Fatalf("tour failed with a non-verdict error: %v", err)
		}
		out.denied = true
	}
	for _, s := range c.Servers() {
		records, total := s.Audit()
		if total != len(records) {
			t.Fatalf("audit log of %s overflowed (%d/%d)", s.ID(), len(records), total)
		}
		for _, r := range records {
			out.decisions = append(out.decisions, r.String())
			if r.Granted {
				out.granted++
			}
		}
	}

	// Metrics/audit reconciliation: every decision the audit trail
	// records was counted exactly once by the engine's decision
	// counters — faults cause retries and redials, but deduplication
	// keeps the engine's view identical to the fault-free run's.
	if got := reg.CounterValue("stac_authz_granted_total", ""); got != int64(out.granted) {
		t.Fatalf("granted counter = %d, audit trail grants = %d", got, out.granted)
	}
	auditDenied := int64(len(out.decisions) - out.granted)
	if got := reg.SumCounters("stac_authz_denied_total"); got != auditDenied {
		t.Fatalf("denied counters = %d, audit trail denials = %d", got, auditDenied)
	}
	if got := reg.HistogramCount("stac_authz_seconds", ""); got != int64(len(out.decisions)) {
		t.Fatalf("latency histogram count = %d, audit trail decisions = %d", got, len(out.decisions))
	}
	// After a full drain no connection is in flight on any daemon.
	for _, d := range daemons {
		_ = d.Close()
	}
	for _, id := range chaosServers {
		lbl := obs.Label("server", string(id))
		if got := reg.GaugeValue("stac_server_inflight_connections", lbl); got != 0 {
			t.Fatalf("daemon %s reports %d in-flight connections after close", id, got)
		}
	}
	return out
}

func (o chaosOutcome) equal(p chaosOutcome) bool {
	if o.proofs != p.proofs || o.ledger != p.ledger || o.granted != p.granted || o.denied != p.denied {
		return false
	}
	if len(o.decisions) != len(p.decisions) {
		return false
	}
	for i := range o.decisions {
		if o.decisions[i] != p.decisions[i] {
			return false
		}
	}
	return true
}

func chaosInjector(seed int64) *faults.Injector {
	return faults.New(faults.Config{
		Seed:           seed,
		DelayProb:      0.2,
		MaxDelay:       2 * time.Millisecond,
		ChunkProb:      0.5,
		WriteResetProb: 0.15,
		ReadResetProb:  0.1,
		DialFailProb:   0.1,
		MaxFaults:      12,
	})
}

// TestChaosVerdictsMatchFaultFreeRun is the tentpole acceptance test:
// under injected resets, latency, partial writes and dial failures at
// several fixed seeds, the coalition reaches byte-for-byte the same
// audited decisions, proof counts and final verdict as the fault-free
// run — and a repeated seed reproduces its run exactly.
func TestChaosVerdictsMatchFaultFreeRun(t *testing.T) {
	base := runChaosTour(t, nil, nil)
	// Sanity-pin the fault-free shape: 5 grants, then a denial.
	if !base.denied || base.proofs != 5 || base.granted != 5 || base.ledger != 5 {
		t.Fatalf("fault-free run shape = %+v", base)
	}
	if len(base.decisions) != 6 {
		t.Fatalf("fault-free decisions = %v", base.decisions)
	}

	for _, seed := range []int64{1, 2, 3} {
		in := chaosInjector(seed)
		got := runChaosTour(t, in, nil)
		if !got.equal(base) {
			t.Fatalf("seed %d: outcome diverged from fault-free run\nfaults: %+v\nbase: %+v\ngot:  %+v\nbase decisions: %v\ngot decisions:  %v",
				seed, in.Stats(), base, got, base.decisions, got.decisions)
		}
	}

	// Determinism of the harness itself: same seed, same fault stats.
	a, b := chaosInjector(2), chaosInjector(2)
	_ = runChaosTour(t, a, nil)
	_ = runChaosTour(t, b, nil)
	if a.Stats() != b.Stats() {
		t.Fatalf("same seed produced different fault schedules: %+v vs %+v", a.Stats(), b.Stats())
	}
}

// TestChaosNoProofForDeniedAccessAndNoGoroutineLeak is the satellite
// property test: across several seeds, the coalition never issues a
// proof for a denied access (the ledger holds exactly one proof per
// granted decision) and the transport drains every goroutine it
// started.
func TestChaosNoProofForDeniedAccessAndNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, seed := range []int64{5, 6, 7, 8} {
		in := chaosInjector(seed)
		out := runChaosTour(t, in, nil)
		if out.ledger != out.granted {
			t.Fatalf("seed %d: ledger holds %d proofs for %d granted decisions", seed, out.ledger, out.granted)
		}
		if out.proofs > out.granted {
			t.Fatalf("seed %d: agent carries %d proofs for %d grants", seed, out.proofs, out.granted)
		}
	}
	// Drain: all daemons and clients are closed when runChaosTour
	// returns; give their handlers a moment to unwind.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
}

// TestChaosServerSideListenerFaults drives the same tour with the
// faults injected on the ACCEPT side (the daemon's listener wrapped),
// exercising the server's handling of torn and stalled client
// connections. Verdict-affecting state must still match fault-free.
func TestChaosServerSideListenerFaults(t *testing.T) {
	clk := temporal.NewSimClock(0)
	c := server.NewCoalition(clk, []byte("chaos-key"))
	c.EnableLedger()
	if err := core.LoadPolicyString(c.Engine, chaosPolicy); err != nil {
		t.Fatal(err)
	}
	in := faults.New(faults.Config{
		Seed:           21,
		ChunkProb:      0.5,
		WriteResetProb: 0.1,
		ReadResetProb:  0.1,
		MaxFaults:      6,
	})
	addrs := map[model.ServerID]string{}
	for _, id := range chaosServers {
		srv, err := c.AddServer(id)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if chaosServers[i%len(chaosServers)] == id {
				srv.HostResource(model.ResourceID(fmt.Sprintf("r%d", i+1)), []byte("survey-data"))
			}
		}
		d := server.NewDaemonWith(srv, server.DaemonConfig{
			ReadTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[id] = d.Serve(in.Listener(ln))
		t.Cleanup(func() { _ = d.Close() })
	}
	rt := &agent.RemoteRuntime{
		Addrs:   addrs,
		Retries: 30,
		Backoff: time.Millisecond,
		Seed:    4,
	}
	rover := agent.New("rover",
		c.Signer.IssueCredential("rover", "hq@coalition", []string{"surveyor"}),
		sral.MustParse(chaosProgram()), c.Signer)
	err := rt.Launch(rover)
	if !errors.Is(err, server.ErrDenied) {
		t.Fatalf("tour = %v, want the budget denial (stats %+v)", err, in.Stats())
	}
	if rover.Proofs.Len() != 5 || c.Ledger().Len() != 5 {
		t.Fatalf("proofs = %d, ledger = %d, want 5/5 (stats %+v)",
			rover.Proofs.Len(), c.Ledger().Len(), in.Stats())
	}
}

// TestChaosWALDiskFullDegradesToRingOnly fills the flight-recorder
// WAL volume mid-tour. The recorder must degrade to ring-only —
// verdicts byte-identical to the fault-free run, the in-memory ring
// still recording — and announce the loss through
// stac_recorder_errors_total exactly once (a full disk is one
// incident, not one alert per decision), never by failing an
// authorization.
func TestChaosWALDiskFullDegradesToRingOnly(t *testing.T) {
	base := runChaosTour(t, nil, nil)

	// ~1 record of budget: the WAL dies almost immediately.
	disk := faults.NewDiskFullWriter(io.Discard, 200)
	got := runChaosTour(t, nil, disk)
	if !disk.Failed() {
		t.Fatal("disk never filled — budget too large for the tour's record volume")
	}
	if !base.equal(got) {
		t.Fatalf("verdicts changed under a full WAL:\nbase %+v\ngot  %+v", base, got)
	}

	st := got.recorder
	if st == nil {
		t.Fatal("no recorder status captured")
	}
	if !st.WALConfigured || !st.WALDegraded {
		t.Fatalf("recorder status = %+v, want a configured, degraded WAL", st)
	}
	if !strings.Contains(st.WALError, "disk full") {
		t.Fatalf("WALError = %q, want the disk-full cause", st.WALError)
	}
	if st.Errors != 1 || got.recorderErrs != 1 {
		t.Fatalf("recorder errors = %d (metric %d), want exactly 1", st.Errors, got.recorderErrs)
	}
	// The ring outlived the WAL: every record of the tour is still
	// retained in memory (tour volume < ring capacity).
	if st.Total == 0 || int(st.Total) != st.Retained {
		t.Fatalf("ring retained %d of %d records after WAL failure", st.Retained, st.Total)
	}

	// Same property under network chaos: a fault-injected tour with a
	// dead-on-arrival WAL still reproduces the fault-free verdicts.
	chaotic := runChaosTour(t, chaosInjector(1), faults.NewDiskFullWriter(io.Discard, 0))
	if !base.equal(chaotic) {
		t.Fatalf("verdicts changed under chaos + full WAL:\nbase %+v\ngot  %+v", base, chaotic)
	}
	if chaotic.recorderErrs != 1 {
		t.Fatalf("chaotic run recorder errors metric = %d, want 1", chaotic.recorderErrs)
	}
}
