package stac

// Multi-core contention benchmarks for the sharded engine (ROADMAP
// item 1, PR 7): N goroutines, each acting as its own credential
// (object + session), authorize in parallel against one engine. Under
// the pre-PR-7 single coarse engine lock these flatlined regardless
// of cores; with per-credential shards and RWMutex-striped policy
// reads they should scale with GOMAXPROCS. EXPERIMENTS E14 records
// the before/after numbers.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"stac/internal/core"
	"stac/internal/model"
	"stac/internal/rbac"
	"stac/internal/srac"
	"stac/internal/temporal"
)

// contentionEngine builds an engine with nCreds registered credentials
// (users u0..uN-1 sharing one role) and a counting-constrained
// permission, and opens one session per credential.
func contentionEngine(b *testing.B, nCreds int, incremental bool) (*core.Engine, []*rbac.Session) {
	b.Helper()
	e := core.NewEngine(temporal.NewSimClock(0))
	if err := e.RBAC.AddRole("traveler"); err != nil {
		b.Fatal(err)
	}
	spec := core.PermSpec{
		Perm:    rbac.Permission{ID: "p-read", Op: model.OpRead},
		Spatial: srac.Count{Min: 0, Max: srac.Unbounded, Sel: model.Selector{Ops: []model.Operation{model.OpRead}}},
	}
	if err := e.DefinePermission(spec); err != nil {
		b.Fatal(err)
	}
	if err := e.RBAC.GrantPermission("traveler", "p-read"); err != nil {
		b.Fatal(err)
	}
	if incremental {
		e.EnableIncrementalCounting()
	}
	sessions := make([]*rbac.Session, nCreds)
	for i := 0; i < nCreds; i++ {
		u := rbac.UserID(fmt.Sprintf("u%d", i))
		if err := e.RBAC.AddUser(u); err != nil {
			b.Fatal(err)
		}
		if err := e.RBAC.AssignUserRole(u, "traveler"); err != nil {
			b.Fatal(err)
		}
		sess, err := e.RBAC.CreateSession(u)
		if err != nil {
			b.Fatal(err)
		}
		if err := sess.ActivateRole("traveler"); err != nil {
			b.Fatal(err)
		}
		obj := model.ObjectID(fmt.Sprintf("u%d", i))
		e.ObjectArrived(obj, "s1")
		e.ActivatePermissions(sess, obj)
		sessions[i] = sess
	}
	return e, sessions
}

// BenchmarkE14_ContentionScaling drives G parallel credentials, each
// authorizing its own accesses in a tight loop — independent
// credentials, so a sharded engine should never make them contend.
// The scan variant carries a short per-credential history; the
// incremental variant exercises the counter fast path.
func BenchmarkE14_ContentionScaling(b *testing.B) {
	for _, mode := range []string{"scan", "incremental"} {
		for _, g := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", mode, g), func(b *testing.B) {
				e, sessions := contentionEngine(b, g, mode == "incremental")
				reqs := make([]core.Request, g)
				for i := range reqs {
					obj := model.ObjectID(fmt.Sprintf("u%d", i))
					hist := make([]model.Access, 8)
					for j := range hist {
						hist[j] = model.Access{Object: obj, Op: model.OpRead, Resource: "f1", Server: "s1"}
					}
					reqs[i] = core.Request{
						Session: sessions[i],
						Access:  model.Access{Object: obj, Op: model.OpRead, Resource: "f1", Server: "s1"},
						History: hist,
						Proofs:  srac.AllProven,
					}
				}
				var idx int64
				b.ReportAllocs()
				b.SetParallelism(1)
				prev := runtime.GOMAXPROCS(g)
				defer runtime.GOMAXPROCS(prev)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					// Each parallel worker takes its own credential.
					me := int(atomic.AddInt64(&idx, 1)-1) % g
					req := reqs[me]
					for pb.Next() {
						if d := e.Authorize(req); !d.Granted {
							b.Error(d.Reason)
							return
						}
					}
				})
			})
		}
	}
}

// BenchmarkAuthorizeMany compares a burst decided one call at a time
// against the batched AuthorizeMany entry point.
func BenchmarkAuthorizeMany(b *testing.B) {
	const burst = 64
	e, sessions := contentionEngine(b, 1, false)
	reqs := make([]core.Request, burst)
	for i := range reqs {
		reqs[i] = core.Request{
			Session: sessions[0],
			Access:  model.Access{Object: "u0", Op: model.OpRead, Resource: "f1", Server: "s1"},
			Proofs:  srac.AllProven,
		}
	}
	b.Run("loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range reqs {
				if d := e.Authorize(reqs[j]); !d.Granted {
					b.Fatal(d.Reason)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, d := range e.AuthorizeMany(reqs) {
				if !d.Granted {
					b.Fatal(d.Reason)
				}
			}
		}
	})
}
