package stac

// End-to-end flight-recorder exercise: a device roams a 3-daemon
// coalition over TCP while the engine records every decision to a
// WAL. The recorded stream must (a) replay bit-identically through a
// fresh engine — the determinism oracle — on both the scan and the
// incremental counting paths, (b) shadow-diff against a tightened
// count ceiling with every flip attributed to the changed clause, and
// (c) agree with the LIVE shadow evaluation the daemons ran
// concurrently, whose flips stream over /debug/watch naming the same
// clause.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"stac/internal/core"
	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/obs/record"
	"stac/internal/proof"
	"stac/internal/server"
	"stac/internal/temporal"
)

// Five reads fit the ceiling; the sixth is denied. The duration
// budget is generous — it keeps the temporal ledger in play (records
// carry advancing SimClock timestamps the replay must honour) without
// ever deciding a verdict.
const replayItineraryPolicy = `
user rover
role roamer
permission p-roam read * @ * {
    spatial count(0, 5, sigma[op=read])
    duration 100s
    scheme  global
}
grant roamer p-roam
assign rover roamer
`

// The candidate tightens the ceiling to 2: hops 3-5 flip to denials
// (a violated ceiling is history-sticky), hop 6 stays denied.
const replayTightenedPolicy = `
user rover
role roamer
permission p-roam read * @ * {
    spatial count(0, 2, sigma[op=read])
    duration 100s
    scheme  global
}
grant roamer p-roam
assign rover roamer
`

func TestReplayShadowEndToEnd(t *testing.T) {
	clk := temporal.NewSimClock(0)
	c := server.NewCoalition(clk, []byte("replay-key"))
	reg := obs.NewRegistry()
	c.Engine.SetObs(reg)
	if err := core.LoadPolicyString(c.Engine, replayItineraryPolicy); err != nil {
		t.Fatal(err)
	}
	c.Engine.EnableCoverage()
	var wal bytes.Buffer
	c.Engine.SetRecorder(record.New(record.Config{Capacity: 128, WAL: &wal, Registry: reg}))
	if err := c.SetShadowPolicy(replayTightenedPolicy); err != nil {
		t.Fatal(err)
	}

	serverIDs := []model.ServerID{"s1", "s2", "s3"}
	addrs := map[model.ServerID]string{}
	var daemons []*server.Daemon
	for i, id := range serverIDs {
		srv, err := c.AddServer(id)
		if err != nil {
			t.Fatal(err)
		}
		srv.HostResource(model.ResourceID(fmt.Sprintf("r%d", i+1)), []byte("data"))
		srv.HostResource(model.ResourceID(fmt.Sprintf("r%d", i+4)), []byte("data"))
		d := server.NewDaemon(srv)
		addr, err := d.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		daemons = append(daemons, d)
		t.Cleanup(func() { _ = d.Close() })
		addrs[id] = addr
	}

	// A live watcher collects the SSE stream for the whole itinerary.
	dbg := server.NewDebugServer(c, daemons, nil,
		server.DebugConfig{Registry: reg, Heartbeat: 50 * time.Millisecond})
	dts := httptest.NewServer(dbg.Mux())
	defer dts.Close()
	watchResp, err := http.Get(dts.URL + "/debug/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer watchResp.Body.Close()
	flipData := make(chan []string, 1)
	go func() {
		var flips []string
		sc := bufio.NewScanner(watchResp.Body)
		event := ""
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				event = strings.TrimPrefix(line, "event: ")
			}
			if strings.HasPrefix(line, "data: ") && event == "flip" {
				flips = append(flips, strings.TrimPrefix(line, "data: "))
			}
		}
		flipData <- flips
	}()

	// The roaming itinerary: 6 reads round-robin across the daemons,
	// the clock advancing 2s per hop, proofs carried hop to hop.
	cred := c.Signer.IssueCredential("rover", "hq@coalition", []string{"roamer"})
	var carried []proof.Proof
	var verdicts []bool
	for hop := 0; hop < 6; hop++ {
		id := serverIDs[hop%len(serverIDs)]
		cl, err := server.Dial(addrs[id])
		if err != nil {
			t.Fatal(err)
		}
		cl.ImportProofs(carried)
		if err := cl.Auth(cred); err != nil {
			t.Fatal(err)
		}
		_, aerr := cl.Access(model.OpRead, model.ResourceID(fmt.Sprintf("r%d", hop+1)), "", nil)
		verdicts = append(verdicts, aerr == nil)
		carried = cl.Proofs()
		cl.Close()
		clk.Advance(2)
	}
	want := []bool{true, true, true, true, true, false}
	for i, v := range verdicts {
		if v != want[i] {
			t.Fatalf("hop verdicts = %v, want %v (live shadow must not leak into served verdicts)", verdicts, want)
		}
	}
	if len(carried) != 5 {
		t.Fatalf("proofs carried = %d, want 5", len(carried))
	}

	// (a) The determinism oracle, both counting paths.
	recs, err := record.ReadAll(bytes.NewReader(wal.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, incr := range []bool{false, true} {
		res, err := core.Replay(replayItineraryPolicy, recs, core.ReplayOptions{Incremental: incr, Coverage: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.PolicyMismatch {
			t.Fatalf("digest mismatch: recorded %s, replayed %s", res.RecordedDigest, res.ReplayDigest)
		}
		if !res.Deterministic() || res.Decisions != 6 {
			t.Fatalf("incremental=%v: decisions=%d divergences=%v", incr, res.Decisions, res.Divergences)
		}
		decisive := int64(0)
		for _, cc := range res.Coverage {
			decisive += cc.Decisive
		}
		if decisive == 0 {
			t.Fatalf("incremental=%v: replay coverage has no decisive clause: %+v", incr, res.Coverage)
		}
	}

	// (b) Offline diff against the tightened ceiling.
	rep, err := core.ShadowDiff(replayTightenedPolicy, recs, core.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flips) != 3 {
		t.Fatalf("flips = %+v, want hops 3-5", rep.Flips)
	}
	for _, f := range rep.Flips {
		if !f.RecordedGranted || f.CandidateGranted {
			t.Fatalf("flip direction wrong: %+v", f)
		}
		if !strings.Contains(f.Clause, "count(0, 2") {
			t.Fatalf("flip not attributed to the tightened ceiling: %+v", f)
		}
	}

	// (c) The live shadow agreed with the offline diff, and the flips
	// reached the watch stream naming the ceiling clause.
	if got := reg.CounterValue("stac_shadow_flip_total", ""); got != int64(len(rep.Flips)) {
		t.Fatalf("live stac_shadow_flip_total = %d, offline diff found %d flips", got, len(rep.Flips))
	}
	dbg.Drain()
	var flips []string
	select {
	case flips = <-flipData:
	case <-time.After(5 * time.Second):
		t.Fatal("watch stream did not close after Drain")
	}
	if len(flips) != len(rep.Flips) {
		t.Fatalf("watch delivered %d flip events, want %d:\n%s", len(flips), len(rep.Flips), strings.Join(flips, "\n"))
	}
	for _, f := range flips {
		if !strings.Contains(f, "count(0, 2") {
			t.Fatalf("flip event does not name the ceiling clause: %s", f)
		}
	}

	// The daemon-side coverage saw every decision and found the
	// ceiling clause decisive.
	cresp, err := http.Get(dts.URL + "/debug/coverage")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	var cov []core.ClauseCoverage
	if err := json.NewDecoder(cresp.Body).Decode(&cov); err != nil {
		t.Fatal(err)
	}
	if len(cov) == 0 {
		t.Fatal("daemon coverage is empty")
	}
	live := int64(0)
	for _, cc := range cov {
		live += cc.Decisive
	}
	if live == 0 {
		t.Fatalf("no clause was decisive on the live daemons: %+v", cov)
	}
}
