package stac

import (
	"testing"

	"stac/internal/testutil"
)

// TestMain arms the suite-wide resource leak check for the root
// integration, chaos, replay and trace suites: after a fully passing
// run, the process must drain back to its goroutine and open-FD
// baseline. Any daemon, watcher, poller or fault-injected connection a
// test forgets to close fails the binary even though every individual
// test passed.
func TestMain(m *testing.M) {
	testutil.Main(m)
}
