// Package stac is a Go reproduction of "A Coordinated Spatio-Temporal
// Access Control Model for Mobile Computing in Coalition Environments"
// (Song Fu and Cheng-Zhong Xu, IPPS 2005).
//
// The library implements the paper's full stack:
//
//   - internal/sral — the Shared Resource Access Language (programs of
//     mobile objects) with parser, printer, trace-model semantics and
//     the Theorem 3.1 synthesis from regular trace models;
//   - internal/srac — the spatial constraint language with exact trace
//     satisfaction (Definition 3.6), prefix evaluation for runtime
//     enforcement, and the polynomial static checker of Theorem 3.2;
//   - internal/temporal — continuous time, piecewise-constant state
//     functions, a decidable duration-calculus fragment (Theorem 4.1)
//     and per-permission validity tracking (Expression 4.1);
//   - internal/rbac — the role-based substrate (hierarchy, sessions,
//     separation of duty) the model extends;
//   - internal/core — the coordinated engine combining all of the
//     above (Expression 3.1 + 4.1) with a text policy format;
//   - internal/agent, internal/server — the mobile-agent emulation
//     (Naplet stand-in): roaming agents interpreting SRAL programs,
//     coalition servers with SecurityManager interposition, execution
//     proofs, and a TCP transport;
//   - internal/digraph — the Section 6 software-module integrity audit
//     and the Figure 1 dependency digraph;
//   - internal/experiments — the reproduction harness behind
//     cmd/coalition-sim and the benchmarks in bench_test.go.
//
// See README.md for a tour and EXPERIMENTS.md for the paper-claim vs
// measured results of every experiment.
package stac
