package stac

// Benchmark harness: one benchmark per experiment of EXPERIMENTS.md.
// Each benchmark exercises the same code path as the corresponding
// experiment in internal/experiments (which cmd/coalition-sim runs as
// a table); the benchmarks give per-operation costs with -benchmem.

import (
	"fmt"
	"math/rand"
	"testing"

	"stac/internal/agent"
	"stac/internal/baseline"
	"stac/internal/core"
	"stac/internal/digraph"
	"stac/internal/experiments"
	"stac/internal/model"
	proofpkg "stac/internal/proof"
	"stac/internal/rbac"
	"stac/internal/server"
	"stac/internal/srac"
	"stac/internal/sral"
	"stac/internal/temporal"
	"stac/internal/workload"
)

// BenchmarkF1_Figure1Audit measures one full Figure 1 audit: the
// 8-module digraph over three servers, constraint-checked hashing in
// dependency order (the paper's only figure, run end to end).
func BenchmarkF1_Figure1Audit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.F1(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1_StaticCheckScaling validates Theorem 3.2's O(m·n) bound:
// ns/op should grow linearly with m at fixed n and with n at fixed m.
func BenchmarkE1_StaticCheckScaling(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	v := workload.DefaultVocabulary(4, 8)
	for _, m := range []int{10, 100, 1000, 10000} {
		prog := workload.Program(r, v, workload.ProgramOptions{Size: m, LoopFraction: 0.1, ParFraction: 0.1})
		for _, n := range []int{4, 64} {
			cons := workload.Constraint(r, v, workload.ConstraintOptions{Size: n})
			b.Run(fmt.Sprintf("m=%d/n=%d", prog.Size(), cons.Size()), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					srac.CheckProgram(prog, cons, "o1")
				}
			})
		}
	}
}

// BenchmarkE2_EnumVsPoly compares the enumeration baseline with the
// polynomial checker on programs with 2^branches traces.
func BenchmarkE2_EnumVsPoly(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	v := workload.DefaultVocabulary(3, 6)
	for _, branches := range []int{4, 8, 12} {
		var nodes []sral.Node
		for i := 0; i < branches; i++ {
			nodes = append(nodes, sral.If{
				Cond: sral.Opaque{Name: "c"},
				Then: workload.LinearProgram(r, v, 1),
				Else: workload.LinearProgram(r, v, 1),
			})
		}
		prog := sral.SeqOf(nodes...)
		cons := workload.Constraint(r, v, workload.ConstraintOptions{Size: 6})
		b.Run(fmt.Sprintf("enum/branches=%d", branches), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				baseline.EnumCheck(prog, cons, "o1", sral.TraceOptions{MaxTraces: -1})
			}
		})
		b.Run(fmt.Sprintf("static/branches=%d", branches), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				srac.CheckProgram(prog, srac.StampObject(cons, "o1"), "o1")
			}
		})
	}
}

// BenchmarkE3_TemporalValidity measures Expression 4.1 evaluation —
// the duration integral and the duration-calculus safety query — as
// the valid-state function grows.
func BenchmarkE3_TemporalValidity(b *testing.B) {
	for _, k := range []int{10, 1000, 100000} {
		st := temporal.NewState()
		for i := 0; i < k; i++ {
			base := float64(2 * i)
			st.SetOn(base, base+1)
		}
		window := temporal.Interval{Begin: 0, End: float64(2 * k)}
		b.Run(fmt.Sprintf("integral/intervals=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = st.Integral(window.Begin, window.End)
			}
		})
		f := temporal.DCNot{D: temporal.Chop{
			Left:  temporal.IntegralCmp{P: "valid", Op: temporal.DCGt, C: float64(k)},
			Right: temporal.LenCmp{Op: temporal.DCGe, C: 0},
		}}
		states := temporal.States{"valid": st}
		b.Run(fmt.Sprintf("dc-query/intervals=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = temporal.EvalDC(f, states, window)
			}
		})
	}
}

// benchCoalition builds a coalition for the enforcement benchmarks.
func benchCoalition(b *testing.B, constrained bool, servers int) (*server.Coalition, []*server.Server) {
	b.Helper()
	c := server.NewCoalition(temporal.NewSimClock(0), []byte("bench-key"))
	policy := `
user o1
role traveler
permission p-read read * @ *
grant traveler p-read
assign o1 traveler
`
	if constrained {
		policy = `
user o1
role traveler
permission p-read read * @ * {
    spatial count(0, 1000000000, sigma[op=read])
    duration 1000000000s
    scheme global
}
grant traveler p-read
assign o1 traveler
`
	}
	if err := core.LoadPolicyString(c.Engine, policy); err != nil {
		b.Fatal(err)
	}
	var srvs []*server.Server
	for i := 0; i < servers; i++ {
		srv, err := c.AddServer(model.ServerID(fmt.Sprintf("s%d", i+1)))
		if err != nil {
			b.Fatal(err)
		}
		srv.HostResource("f1", []byte("payload"))
		srvs = append(srvs, srv)
	}
	return c, srvs
}

// BenchmarkE4_EnforcementOverhead measures a single authorised access
// under plain RBAC vs the full spatio-temporal policy — the per-request
// enforcement cost of Section 5's prototype.
func BenchmarkE4_EnforcementOverhead(b *testing.B) {
	for _, constrained := range []bool{false, true} {
		name := "plain-rbac"
		if constrained {
			name = "spatio-temporal"
		}
		b.Run(name, func(b *testing.B) {
			c, srvs := benchCoalition(b, constrained, 1)
			cred := c.Signer.IssueCredential("o1", "owner", []string{"traveler"})
			sub, err := srvs[0].Authenticate(cred)
			if err != nil {
				b.Fatal(err)
			}
			// No proof store: unbounded accumulation across b.N
			// iterations would distort ns/op; the oracle attests all.
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := srvs[0].Request(sub, model.OpRead, "f1", server.RequestContext{Proofs: srac.AllProven}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4_RoamingTour measures a whole tour (authenticate, access,
// depart at each of 8 servers).
func BenchmarkE4_RoamingTour(b *testing.B) {
	c, _ := benchCoalition(b, true, 8)
	cred := c.Signer.IssueCredential("o1", "owner", []string{"traveler"})
	var nodes []sral.Node
	for i := 0; i < 8; i++ {
		nodes = append(nodes, sral.Prim{Op: model.OpRead, Resource: "f1", Server: model.ServerID(fmt.Sprintf("s%d", i+1))})
	}
	prog := sral.SeqOf(nodes...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ag := agent.New("o1", cred, prog, nil)
		if err := agent.Launch(c, ag); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_TRBACRoleExplosion measures the planning cost and
// documents the role-count gap via the experiment table.
func BenchmarkE5_TRBACRoleExplosion(b *testing.B) {
	perms := make([]baseline.TRBACPermission, 120)
	for i := range perms {
		perms[i] = baseline.TRBACPermission{
			ID:       model.ResourceID(fmt.Sprintf("perm-%03d", i)),
			Duration: float64(10 * (i%40 + 1)),
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := baseline.PlanTRBAC(perms)
		if plan.RoleCount() != 40 {
			b.Fatalf("roles = %d", plan.RoleCount())
		}
		_ = baseline.TotalChurn(plan)
	}
}

// BenchmarkE6_ParallelAudit measures the sharded Section 6 audit at
// k ∈ {1, 4} clones over the Figure 1 digraph hosted coalition.
func BenchmarkE6_ParallelAudit(b *testing.B) {
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("clones=%d", k), func(b *testing.B) {
			g := digraph.Figure1()
			c := server.NewCoalition(temporal.NewSimClock(0), []byte("bench-key"))
			for _, s := range g.ServersOf(g.Modules()) {
				if _, err := c.AddServer(s); err != nil {
					b.Fatal(err)
				}
			}
			for _, id := range g.Modules() {
				m, _ := g.Module(id)
				srv, _ := c.Server(m.Server)
				srv.HostResource(m.Resource(), m.Content)
			}
			if err := c.Engine.RBAC.AddUser("aud"); err != nil {
				b.Fatal(err)
			}
			if err := c.Engine.RBAC.AddRole("auditor"); err != nil {
				b.Fatal(err)
			}
			if err := c.Engine.DefinePermission(core.PermSpec{
				Perm: rbac.Permission{ID: "p-audit", Op: model.OpRead},
			}); err != nil {
				b.Fatal(err)
			}
			if err := c.Engine.RBAC.GrantPermission("auditor", "p-audit"); err != nil {
				b.Fatal(err)
			}
			if err := c.Engine.RBAC.AssignUserRole("aud", "auditor"); err != nil {
				b.Fatal(err)
			}
			order, err := g.TopoOrder()
			if err != nil {
				b.Fatal(err)
			}
			var accesses []agent.AccessPattern
			for _, id := range order {
				m, _ := g.Module(id)
				accesses = append(accesses, agent.AccessPattern{Op: model.OpRead, Res: m.Resource(), Server: m.Server})
			}
			prog := agent.Sharded(accesses, k, nil, nil).Build()
			cred := c.Signer.IssueCredential("aud", "auditor@hq", []string{"auditor"})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ag := agent.New("aud", cred, prog, nil)
				if err := agent.Launch(c, ag); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7_Synthesis measures Theorem 3.1's constructive synthesis
// plus the bounded trace-model equality check.
func BenchmarkE7_Synthesis(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	m, err := sral.ParseRegular("(read f1 @ s1 | read f2 @ s1) . (write f3 @ s2)* . (read f1 @ s2 | eps)")
	if err != nil {
		b.Fatal(err)
	}
	_ = r
	opts := sral.TraceOptions{MaxLoopReps: 3, MaxTraces: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := sral.Synthesize(m)
		got, _ := sral.Traces(p, opts)
		want, _ := sral.Enumerate(m, opts)
		if !got.Equal(want) {
			b.Fatal("synthesis mismatch")
		}
	}
}

// BenchmarkRuntimeTraceCheck measures Definition 3.6 evaluation on a
// growing proof-backed history — the hot path of every access grant.
func BenchmarkRuntimeTraceCheck(b *testing.B) {
	sel := model.Selector{Resources: []model.ResourceID{"rsw"}}
	cons := srac.AndOf(
		srac.AtMost(1000000, sel),
		srac.Before(
			model.Access{Op: "read", Resource: "dep"},
			model.Access{Op: "read", Resource: "mod"},
		),
	)
	for _, histLen := range []int{10, 100, 1000} {
		hist := make([]model.Access, histLen)
		for i := range hist {
			hist[i] = model.NewAccess("o1", "read", model.ResourceID(fmt.Sprintf("f%d", i%7)), "s1")
		}
		b.Run(fmt.Sprintf("history=%d", histLen), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = srac.EvalPrefix(hist, cons, nil)
			}
		})
	}
}

// BenchmarkE8_LedgerCoordination measures one gated decision against a
// coalition ledger of growing size (companion coordination).
func BenchmarkE8_LedgerCoordination(b *testing.B) {
	for _, n := range []int{10, 1000} {
		b.Run(fmt.Sprintf("ledger=%d", n), func(b *testing.B) {
			clk := temporal.NewSimClock(0)
			c := server.NewCoalition(clk, []byte("bench-key"))
			c.EnableLedger()
			policy := `
user scout
user striker
role scouting
role striking
permission p-mark write target @ *
permission p-strike execute target @ * {
    spatial [scout: read go-signal @ *] >> [striker: execute target @ *]
    mode strict
}
grant scouting p-mark
grant striking p-strike
assign scout scouting
assign striker striking
`
			if err := core.LoadPolicyString(c.Engine, policy); err != nil {
				b.Fatal(err)
			}
			s1, err := c.AddServer("s1")
			if err != nil {
				b.Fatal(err)
			}
			s1.HostResource("target", []byte("x"))
			scoutSub, err := s1.Authenticate(c.Signer.IssueCredential("scout", "o", []string{"scouting"}))
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if _, err := s1.Request(scoutSub, model.OpWrite, "target", server.RequestContext{Payload: []byte("m")}); err != nil {
					b.Fatal(err)
				}
			}
			strikerSub, err := s1.Authenticate(c.Signer.IssueCredential("striker", "o", []string{"striking"}))
			if err != nil {
				b.Fatal(err)
			}
			// Measure the still-gated decision (the scout never ran
			// the required *read*): denials scan the merged ledger
			// history — the cost under test — without appending to
			// it, so ns/op reflects the configured ledger size rather
			// than b.N.
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s1.Request(strikerSub, model.OpExecute, "target", server.RequestContext{}); err == nil {
					b.Fatal("gated strike unexpectedly granted")
				}
			}
		})
	}
}

// BenchmarkAblation_StaticProgramCheck isolates the cost of the
// check(P, C) admission step by authorising the same request with and
// without the declared program attached.
func BenchmarkAblation_StaticProgramCheck(b *testing.B) {
	c, srvs := benchCoalition(b, true, 1)
	cred := c.Signer.IssueCredential("o1", "owner", []string{"traveler"})
	sub, err := srvs[0].Authenticate(cred)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	prog := workload.Program(r, workload.DefaultVocabulary(4, 8),
		workload.ProgramOptions{Size: 200, LoopFraction: 0.1, ParFraction: 0.1})
	for _, withProgram := range []bool{false, true} {
		name := "without-program"
		if withProgram {
			name = "with-program"
		}
		b.Run(name, func(b *testing.B) {
			ctx := server.RequestContext{Proofs: srac.AllProven}
			if withProgram {
				ctx.Program = prog
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := srvs[0].Request(sub, model.OpRead, "f1", ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProportionalShares measures the stride scheduler's decision
// cost at different client counts (the Naplet proportional-share
// facility).
func BenchmarkProportionalShares(b *testing.B) {
	for _, clients := range []int{4, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			s := server.NewShareScheduler()
			for i := 0; i < clients; i++ {
				if err := s.SetWeight(fmt.Sprintf("agent-%d", i), 1+i%7); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, ok := s.Next(); !ok {
					b.Fatal("empty scheduler")
				}
			}
		})
	}
}

// BenchmarkPolicyLoad measures parsing + installing a realistic policy.
func BenchmarkPolicyLoad(b *testing.B) {
	var sb []byte
	sb = append(sb, "role worker\nuser o1\nassign o1 worker\n"...)
	for i := 0; i < 50; i++ {
		sb = append(sb, fmt.Sprintf(
			"permission p-%02d read f%d @ * {\n    spatial count(0, %d, sigma[r=f%d])\n    duration %dm\n}\ngrant worker p-%02d\n",
			i, i, i+1, i, i+1, i)...)
	}
	policy := string(sb)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := core.NewEngine(temporal.NewSimClock(0))
		if err := core.LoadPolicyString(e, policy); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProofIssueVerify measures the HMAC proof hot path.
func BenchmarkProofIssueVerify(b *testing.B) {
	s := proofpkg.NewSigner([]byte("bench-key"))
	a := model.NewAccess("o1", "read", "f1", "s1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := s.Issue(a, float64(i))
		if err := s.Verify(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_IncrementalCounting contrasts the scan path (O(n)
// in history length) against the engine-counter fast path (O(|C|)) for
// the restricted-software ceiling.
func BenchmarkAblation_IncrementalCounting(b *testing.B) {
	build := func(incremental bool) (*core.Engine, *rbac.Session) {
		e := core.NewEngine(temporal.NewSimClock(0))
		if incremental {
			e.EnableIncrementalCounting()
		}
		must := func(err error) {
			if err != nil {
				b.Fatal(err)
			}
		}
		must(e.RBAC.AddUser("o1"))
		must(e.RBAC.AddRole("r"))
		must(e.DefinePermission(core.PermSpec{
			Perm:    rbac.Permission{ID: "p"},
			Spatial: srac.AtMost(1_000_000, model.Selector{Resources: []model.ResourceID{"rsw"}}),
		}))
		must(e.RBAC.GrantPermission("r", "p"))
		must(e.RBAC.AssignUserRole("o1", "r"))
		sess, err := e.RBAC.CreateSession("o1")
		must(err)
		must(sess.ActivateRole("r"))
		return e, sess
	}
	for _, histLen := range []int{100, 10000} {
		hist := make([]model.Access, histLen)
		for i := range hist {
			hist[i] = model.NewAccess("o1", "execute", "rsw", "s1")
		}
		a := model.NewAccess("o1", "execute", "rsw", "s1")
		b.Run(fmt.Sprintf("scan/history=%d", histLen), func(b *testing.B) {
			e, sess := build(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := e.Authorize(core.Request{Session: sess, Access: a, History: hist}); !d.Granted {
					b.Fatal(d.Reason)
				}
			}
		})
		b.Run(fmt.Sprintf("incremental/history=%d", histLen), func(b *testing.B) {
			e, sess := build(true)
			for i := 0; i < histLen; i++ {
				e.RecordGrant(a)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := e.Authorize(core.Request{Session: sess, Access: a}); !d.Granted {
					b.Fatal(d.Reason)
				}
			}
		})
	}
}
