// Software audit (Section 6 of the paper): the modules of a large
// software package are distributed over an enterprise coalition. An
// auditor dispatches a mobile agent that hashes every module (SHA-1)
// in dependency order — the module dependency digraph of Figure 1
// induces the SRAC ordering constraints, and the audit must finish
// within the auditor permission's validity duration.
package main

import (
	"fmt"
	"log"

	"stac/internal/agent"
	"stac/internal/core"
	"stac/internal/digraph"
	"stac/internal/model"
	"stac/internal/rbac"
	"stac/internal/server"
	"stac/internal/sral"
	"stac/internal/temporal"
)

func main() {
	g := digraph.Figure1()
	fmt.Println("module dependency digraph (Figure 1):")
	for _, id := range g.Modules() {
		m, _ := g.Module(id)
		fmt.Printf("  %s @ %s  depends on %v\n", id, m.Server, g.Deps(id))
	}

	// A tampered module: the audit must catch E and everything that
	// (transitively) depends on it.
	if err := g.Corrupt("E"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmodule E has been tampered with")

	clock := temporal.NewSimClock(0)
	coalition := server.NewCoalition(clock, []byte("audit-key"))
	for _, s := range g.ServersOf(g.Modules()) {
		if _, err := coalition.AddServer(s); err != nil {
			log.Fatal(err)
		}
	}
	for _, id := range g.Modules() {
		m, _ := g.Module(id)
		srv, _ := coalition.Server(m.Server)
		srv.HostResource(m.Resource(), m.Content)
	}

	// The auditor permission: reads allowed anywhere, but only in
	// dependency order (the digraph's SRAC constraint), and the whole
	// audit must fit in a 100-second validity duration.
	eng := coalition.Engine
	must(eng.RBAC.AddUser("auditor-1"))
	must(eng.RBAC.AddRole("auditor"))
	must(eng.DefinePermission(core.PermSpec{
		Perm:     rbac.Permission{ID: "p-audit", Op: model.OpRead},
		Spatial:  g.OrderingConstraint(),
		Duration: 100,
		Scheme:   temporal.GlobalBase,
	}))
	must(eng.RBAC.GrantPermission("auditor", "p-audit"))
	must(eng.RBAC.AssignUserRole("auditor-1", "auditor"))

	// The audit program: read every module at its hosting server, in
	// topological (dependency-first) order.
	order, err := g.TopoOrder()
	if err != nil {
		log.Fatal(err)
	}
	var steps []sral.Node
	for _, id := range order {
		m, _ := g.Module(id)
		steps = append(steps, sral.Prim{Op: model.OpRead, Resource: m.Resource(), Server: m.Server})
	}
	program := sral.SeqOf(steps...)
	fmt.Printf("\naudit order: %v\n\n", order)

	cred := coalition.Signer.IssueCredential("auditor-1", "auditor@hq", []string{"auditor"})
	ag := agent.New("auditor-1", cred, program, coalition.Signer)

	verified := map[digraph.ModuleID]bool{}
	ag.Hooks.OnArrival = func(at model.ServerID) {
		clock.Advance(3) // migration cost
		fmt.Printf("agent at %s (t=%.0fs)\n", at, clock.Now())
	}
	ag.Hooks.OnAccess = func(a model.Access, data []byte) {
		clock.Advance(1) // hashing cost
		id := digraph.ModuleID(a.Resource[len("module/"):])
		ref, _ := g.Module(id)
		got := digraph.Module{Content: data}.Digest()
		ok := got == ref.WantSHA1
		for _, d := range g.Deps(id) {
			if !verified[d] {
				ok = false
			}
		}
		verified[id] = ok
		status := "OK"
		if !ok {
			status = "FAIL"
		}
		fmt.Printf("  hash %-2s sha1=%s.. %s\n", id, got[:12], status)
	}

	if err := agent.Launch(coalition, ag); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\naudit finished at t=%.0fs (budget 100s)\n", clock.Now())
	fmt.Println("verdicts (module verified iff itself and all dependencies correct):")
	for _, id := range g.Modules() {
		fmt.Printf("  %s: %v\n", id, verified[id])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
