// Quickstart: build a two-server coalition, define a spatio-temporal
// policy, and launch a mobile agent whose SRAL program roams between
// the servers collecting execution proofs.
package main

import (
	"fmt"
	"log"

	"stac/internal/agent"
	"stac/internal/core"
	"stac/internal/model"
	"stac/internal/server"
	"stac/internal/sral"
	"stac/internal/temporal"
)

func main() {
	// 1. A coalition: shared policy engine, proof signing key, and a
	// simulated continuous clock.
	clock := temporal.NewSimClock(0)
	coalition := server.NewCoalition(clock, []byte("quickstart-key"))

	// 2. Two coalition servers hosting shared resources.
	for _, id := range []model.ServerID{"s1", "s2"} {
		srv, err := coalition.AddServer(id)
		if err != nil {
			log.Fatal(err)
		}
		srv.HostResource("report", []byte("quarterly report hosted at "+string(id)))
	}

	// 3. A policy in the stacd text format: the courier role may read
	// anything, but at most three reads of the report are allowed
	// coalition-wide, within a 60-second validity budget.
	policy := `
user courier-1
role courier
permission p-read read * @ * {
    spatial  count(0, 3, sigma[r=report])
    duration 60s
    scheme   global
}
grant courier p-read
assign courier-1 courier
`
	if err := core.LoadPolicyString(coalition.Engine, policy); err != nil {
		log.Fatal(err)
	}

	// 4. The mobile object's program, written in SRAL: read the report
	// at s1, then twice at s2.
	program := sral.MustParse(`
		read report @ s1;
		read report @ s2;
		read report @ s2
	`)

	// 5. Launch the agent with a signed owner credential.
	cred := coalition.Signer.IssueCredential("courier-1", "owner@example.org", []string{"courier"})
	ag := agent.New("courier-1", cred, program, coalition.Signer)
	ag.Hooks.OnArrival = func(at model.ServerID) {
		fmt.Printf("arrived at %s (t=%.0fs)\n", at, clock.Now())
		clock.Advance(5)
	}
	ag.Hooks.OnAccess = func(a model.Access, data []byte) {
		fmt.Printf("  granted %s -> %q\n", a, data)
	}
	if err := agent.Launch(coalition, ag); err != nil {
		log.Fatal(err)
	}

	// 6. The agent carries verifiable execution proofs of everything
	// it did — the history other servers use for coordination.
	fmt.Printf("\ncollected %d execution proofs:\n", ag.Proofs.Len())
	for _, p := range ag.Proofs.All() {
		fmt.Printf("  t=%-4.0f %s\n", p.Time, p.Access)
	}

	// 7. A fourth read would exceed the spatial ceiling: the engine
	// denies it no matter which server receives the request.
	srv, _ := coalition.Server("s1")
	sub, err := srv.Authenticate(cred)
	if err != nil {
		log.Fatal(err)
	}
	_, err = srv.Request(sub, model.OpRead, "report", server.RequestContext{Store: ag.Proofs})
	fmt.Printf("\nfourth read: %v\n", err)
}
