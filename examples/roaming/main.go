// Restricted software roaming (the first motivating example of the
// paper): "if a mobile device accesses a resource r (e.g. a licensed
// software package or its trial version) on site s1 for too many
// times during a certain time period, it is not allowed to access the
// resource on site s2" — a spatial counting constraint over BOTH the
// licensed and trial forms of the package, enforced coalition-wide
// through the execution proofs the device carries, over the TCP
// transport.
package main

import (
	"fmt"
	"log"

	"stac/internal/core"
	"stac/internal/model"
	"stac/internal/server"
	"stac/internal/temporal"
)

func main() {
	coalition := server.NewCoalition(temporal.NewRealClock(), []byte("roaming-key"))

	// σ_RSW of Example 3.5: the selector covers the licensed and the
	// trial version, at any server, so #(0, 5, σ_RSW) caps the total.
	policy := `
user device-7
role fieldworker
permission p-rsw execute * @ * {
    spatial  count(0, 5, sigma[r=rsw-licensed,rsw-trial])
    describe restricted software: at most 5 runs coalition-wide
}
grant fieldworker p-rsw
assign device-7 fieldworker
`
	if err := core.LoadPolicyString(coalition.Engine, policy); err != nil {
		log.Fatal(err)
	}

	// Three sites expose the package over TCP; s1 and s2 carry the
	// licensed build, s3 only the trial.
	addrs := map[model.ServerID]string{}
	for _, id := range []model.ServerID{"site-1", "site-2", "site-3"} {
		srv, err := coalition.AddServer(id)
		if err != nil {
			log.Fatal(err)
		}
		if id == "site-3" {
			srv.HostResource("rsw-trial", []byte("trial build"))
		} else {
			srv.HostResource("rsw-licensed", []byte("licensed build"))
		}
		d := server.NewDaemon(srv)
		addr, err := d.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		addrs[id] = addr
	}

	cred := coalition.Signer.IssueCredential("device-7", "ops@coalition", []string{"fieldworker"})

	// The device's tour: 2 licensed runs at site-1, 2 at site-2, then
	// 2 trial runs at site-3 — the 6th must be denied even though
	// site-3 never saw the device before.
	type stop struct {
		site model.ServerID
		res  model.ResourceID
		runs int
	}
	tour := []stop{
		{"site-1", "rsw-licensed", 2},
		{"site-2", "rsw-licensed", 2},
		{"site-3", "rsw-trial", 2},
	}

	var carried = 0
	var history []string
	var prev *server.Client
	for _, st := range tour {
		cl, err := server.Dial(addrs[st.site])
		if err != nil {
			log.Fatal(err)
		}
		if prev != nil {
			cl.ImportProofs(prev.Proofs())
			_ = prev.Depart()
			prev.Close()
		}
		if err := cl.Auth(cred); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device at %s (carrying %d proofs)\n", st.site, len(cl.Proofs()))
		for i := 0; i < st.runs; i++ {
			_, err := cl.Access(model.OpExecute, st.res, "", nil)
			carried++
			if err != nil {
				fmt.Printf("  run %d of %s DENIED: %v\n", carried, st.res, err)
			} else {
				fmt.Printf("  run %d of %s ok\n", carried, st.res)
				history = append(history, string(st.site))
			}
		}
		prev = cl
	}
	if prev != nil {
		_ = prev.Depart()
		prev.Close()
	}
	fmt.Printf("\ngranted runs: %d (limit 5), sites that served them: %v\n", len(history), history)
}
