// Newspaper deadline (a motivating example from the paper's
// introduction): "the editing deadline for an issue of a daily
// newspaper is by 3am". Editing permissions carry a validity
// duration; when an editor's accumulated editing time exhausts the
// budget, the permission flips to active-but-invalid and further
// writes are denied — on every coalition server, without revoking the
// editor's role or other permissions.
package main

import (
	"fmt"
	"log"

	"stac/internal/core"
	"stac/internal/model"
	"stac/internal/proof"
	"stac/internal/server"
	"stac/internal/temporal"
)

func main() {
	// The newsroom clock starts at midnight (t = 0); the deadline is
	// 3am, i.e. a 3-hour (10800 s) global validity duration on the
	// editing permission. Reading the archive is time-insensitive.
	clock := temporal.NewSimClock(0)
	coalition := server.NewCoalition(clock, []byte("newsroom-key"))

	policy := `
user editor-1
role editor
permission p-edit write issue @ * {
    duration 3h
    scheme   global
    describe editing window closes at 3am
}
permission p-archive read archive @ * {
    duration inf
}
grant editor p-edit
grant editor p-archive
assign editor-1 editor
`
	if err := core.LoadPolicyString(coalition.Engine, policy); err != nil {
		log.Fatal(err)
	}

	// Two bureau servers, both carrying the issue being edited.
	for _, id := range []model.ServerID{"bureau-east", "bureau-west"} {
		srv, err := coalition.AddServer(id)
		if err != nil {
			log.Fatal(err)
		}
		srv.HostResource("issue", []byte("## tomorrow's front page ##"))
		srv.HostResource("archive", []byte("yesterday's paper"))
	}

	cred := coalition.Signer.IssueCredential("editor-1", "editor@daily", []string{"editor"})
	store := proof.NewStore(coalition.Signer)

	// The editor holds an open session while working: the edit
	// permission is active, so its validity duration (the 3-hour
	// window) is being consumed. The validity accumulates only while
	// the permission is active — an editor who logs out stops the
	// clock, which is why the deadline emulation keeps the session
	// open from midnight on.
	var srv *server.Server
	var sub *server.Subject
	moveTo := func(at model.ServerID) {
		if sub != nil {
			srv.Depart(sub)
		}
		srv, _ = coalition.Server(at)
		var err error
		sub, err = srv.Authenticate(cred)
		if err != nil {
			log.Fatal(err)
		}
	}
	edit := func(text string) {
		_, err := srv.Request(sub, model.OpWrite, "issue", server.RequestContext{
			Store:   store,
			Payload: []byte(text),
		})
		hh := int(clock.Now()) / 3600
		mm := int(clock.Now()) % 3600 / 60
		if err != nil {
			fmt.Printf("%02d:%02d  %-12s write DENIED: %v\n", hh, mm, srv.ID(), err)
			return
		}
		fmt.Printf("%02d:%02d  %-12s write ok\n", hh, mm, srv.ID())
	}

	fmt.Println("editing session (deadline 03:00):")
	moveTo("bureau-east") // session opens at midnight
	edit("draft v1")      // 00:00
	clock.Advance(3600)
	edit("draft v2") // 01:00
	clock.Advance(3600)
	// Migrating does not reset a GLOBAL validity budget: 2h consumed.
	moveTo("bureau-west")
	edit("draft v3") // 02:00
	clock.Advance(3540)
	edit("final tweaks") // 02:59 — just inside
	clock.Advance(120)
	edit("one more headline") // 03:01 — past the deadline
	moveTo("bureau-east")
	edit("try the other bureau") // still denied: the budget is global

	// The editor's other permission is unaffected: no role was
	// revoked, only the edit permission's validity expired (the
	// paper's point against role-level TRBAC disabling).
	if _, err := srv.Request(sub, model.OpRead, "archive", server.RequestContext{Store: store}); err != nil {
		log.Fatal(err)
	}
	srv.Depart(sub)
	fmt.Println("\nafter the deadline the editor still reads the archive:")
	fmt.Println("  read archive ok — only the editing permission expired, not the role")
}
