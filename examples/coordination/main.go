// Companion coordination: the paper's introduction notes that in a
// coalition, "permissions may be granted based not only on the
// requesting subject, but also on the previous access actions of the
// device and even of its companions". This example runs a two-agent
// teamwork: a scout must mark the target (a write at any site) before
// its companion striker may act on it — a strict-mode cross-object
// ordering constraint, enforced through the coalition proof ledger and
// synchronised with SRAL's signal/wait.
package main

import (
	"fmt"
	"log"
	"sync"

	"stac/internal/agent"
	"stac/internal/core"
	"stac/internal/model"
	"stac/internal/server"
	"stac/internal/sral"
	"stac/internal/temporal"
)

func main() {
	clock := temporal.NewSimClock(0)
	coalition := server.NewCoalition(clock, []byte("teamwork-key"))
	// The ledger lets servers see every coalition object's proofs, not
	// just the requester's carried ones — the basis for constraints
	// that mention a companion.
	coalition.EnableLedger()

	policy := `
user scout-1
user striker-1
role scout
role striker
permission p-recon read recon @ *
permission p-mark write target @ *
permission p-strike execute target @ * {
    spatial [scout-1: write target @ *] >> [striker-1: execute target @ *]
    mode strict
    describe strike only after the scout marked the target
}
grant scout p-recon
grant scout p-mark
grant striker p-strike
assign scout-1 scout
assign striker-1 striker
`
	if err := core.LoadPolicyString(coalition.Engine, policy); err != nil {
		log.Fatal(err)
	}

	for _, id := range []model.ServerID{"forward-base", "command-post"} {
		srv, err := coalition.AddServer(id)
		if err != nil {
			log.Fatal(err)
		}
		srv.HostResource("recon", []byte("sector grid"))
		srv.HostResource("target", []byte("coordinates"))
	}

	// The striker first tries without waiting: the strict ordering
	// constraint denies it (the scout has not marked anything yet).
	strikerCred := coalition.Signer.IssueCredential("striker-1", "ops@hq", []string{"striker"})
	eager := agent.New("striker-1", strikerCred, nil, coalition.Signer)
	eager.Program = mustProg("execute target @ command-post")
	if err := agent.Launch(coalition, eager); err != nil {
		fmt.Printf("eager strike: %v\n\n", err)
	} else {
		log.Fatal("eager strike was granted — constraint broken")
	}

	// The coordinated run: the scout recons and marks at forward-base,
	// then raises the "marked" signal; the striker waits for it and
	// strikes at command-post. The ledger carries the scout's proof to
	// a server the scout never contacted directly.
	scoutCred := coalition.Signer.IssueCredential("scout-1", "ops@hq", []string{"scout"})
	scout := agent.New("scout-1", scoutCred, mustProg(`
		read recon @ forward-base;
		write target @ forward-base;
		signal(marked)
	`), coalition.Signer)
	striker := agent.New("striker-1", strikerCred, mustProg(`
		wait(marked);
		execute target @ command-post
	`), coalition.Signer)

	report := func(tag string) func(model.Access, []byte) {
		return func(a model.Access, _ []byte) {
			fmt.Printf("%-9s %s\n", tag+":", a)
		}
	}
	scout.Hooks.OnAccess = report("scout")
	striker.Hooks.OnAccess = report("striker")

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = agent.Launch(coalition, striker) }()
	go func() { defer wg.Done(); _ = agent.Launch(coalition, scout) }()
	wg.Wait()

	if scout.Err() != nil || striker.Err() != nil {
		log.Fatalf("teamwork failed: scout=%v striker=%v", scout.Err(), striker.Err())
	}
	fmt.Printf("\nledger now records %d coalition-wide proofs; the strike was\n", coalition.Ledger().Len())
	fmt.Println("authorised by the scout's proof, issued at a different server.")
}

func mustProg(src string) sral.Node { return sral.MustParse(src) }
