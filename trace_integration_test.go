package stac

// End-to-end tracing and explainability: a mobile agent roams a
// 3-server coalition over TCP under ONE trace context; a count-ceiling
// denial at the last hop must be attributable from every artefact the
// run leaves behind — the span store, the Chrome trace-event export,
// and the JSONL audit log — all correlated by the same trace and
// decision IDs.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"stac/internal/agent"
	"stac/internal/core"
	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/server"
	"stac/internal/sral"
	"stac/internal/temporal"
)

const tracedPolicy = `
user dev-1
role courier
permission p-doc read doc @ * {
    spatial count(0, 2, sigma[r=doc])
}
grant courier p-doc
assign dev-1 courier
`

func TestTracedItineraryExplainsDenialAcrossHops(t *testing.T) {
	clk := temporal.NewSimClock(0)
	c := server.NewCoalition(clk, []byte("trace-e2e-key"))
	if err := core.LoadPolicyString(c.Engine, tracedPolicy); err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(1024)
	c.Engine.SetTracer(tracer)
	var audit bytes.Buffer
	c.SetAuditSink(&audit)

	addrs := map[model.ServerID]string{}
	for _, id := range []model.ServerID{"s1", "s2", "s3"} {
		srv, err := c.AddServer(id)
		if err != nil {
			t.Fatal(err)
		}
		srv.HostResource("doc", []byte("payload at "+id))
		d := server.NewDaemon(srv)
		addr, err := d.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = d.Close() })
		addrs[id] = addr
	}

	// The client-side runtime and the coalition engine share one
	// tracer, so the whole itinerary lands in one span store.
	rt := &agent.RemoteRuntime{Addrs: addrs, Tracer: tracer}
	// The third read is conditional, so the static check cannot rule
	// the program out (some trace stays within the ceiling) — but the
	// runtime path takes the else branch and trips count(0,2) at s3.
	prog := sral.MustParse(
		"read doc @ s1; read doc @ s2; if x > 0 then skip else read doc @ s3")
	ag := agent.New("dev-1",
		c.Signer.IssueCredential("dev-1", "owner@hq", []string{"courier"}),
		prog, c.Signer)
	tc := tracer.NewContext()
	err := rt.LaunchTraced(tc, ag)
	if err == nil {
		t.Fatal("3rd doc read granted despite count(0,2) ceiling")
	}
	if !strings.Contains(err.Error(), "spatial") {
		t.Fatalf("denial reason: %v", err)
	}
	if got := ag.Proofs.Len(); got != 2 {
		t.Fatalf("proofs before denial = %d", got)
	}

	// --- One trace ID spans every hop, client and server side. ---
	spans := tracer.Store().Trace(tc.Trace)
	if len(spans) == 0 {
		t.Fatal("no spans recorded for the launch trace")
	}
	for _, sp := range tracer.Store().Spans() {
		if sp.TraceID != tc.Trace {
			t.Fatalf("span %s escaped the itinerary trace: %s", sp.Name, sp.TraceID)
		}
	}
	services := map[string]bool{}
	names := map[string]int{}
	for _, sp := range spans {
		services[sp.Service] = true
		names[sp.Name]++
	}
	for _, svc := range []string{"agent", "daemon:s1", "daemon:s2", "daemon:s3",
		"server:s1", "server:s2", "server:s3", "engine"} {
		if !services[svc] {
			t.Fatalf("trace missing service %q (have %v)", svc, services)
		}
	}
	for name, want := range map[string]int{"itinerary": 1, "access": 3, "wire.access": 3, "authorize": 3} {
		if names[name] != want {
			t.Fatalf("span %q count = %d, want %d (all: %v)", name, names[name], want, names)
		}
	}

	// --- The Chrome export parses and carries the decision tree. ---
	var chrome bytes.Buffer
	if err := obs.WriteChromeTrace(&chrome, spans); err != nil {
		t.Fatal(err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &ct); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	spanIDs := map[string]string{} // span_id -> name
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" {
			spanIDs[ev.Args["span_id"]] = ev.Name
		}
	}
	var sawDecisionTree bool
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" && ev.Name == "prefix_eval" && spanIDs[ev.Args["parent_id"]] == "authorize" {
			sawDecisionTree = true
		}
	}
	if !sawDecisionTree {
		t.Fatal("export lacks the authorize → prefix_eval decision tree")
	}

	// --- The audit JSONL names the violated clause, same trace. ---
	var denied *server.AuditEntry
	grants := 0
	for _, line := range strings.Split(strings.TrimSpace(audit.String()), "\n") {
		var e server.AuditEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("audit line not JSON: %v\n%s", err, line)
		}
		if e.TraceID != tc.Trace.String() {
			t.Fatalf("audit entry off-trace: %+v", e)
		}
		if e.Granted {
			grants++
		} else {
			denied = &e
		}
	}
	if grants != 2 || denied == nil {
		t.Fatalf("audit log: %d grants, denied=%v\n%s", grants, denied, audit.String())
	}
	x := denied.Explanation
	if x == nil {
		t.Fatal("denial entry carries no explanation")
	}
	if !strings.Contains(x.Clause, "count") || !strings.Contains(x.Detail, "count 3 exceeds ceiling 2") {
		t.Fatalf("explanation does not name the violated counting clause: %+v", x)
	}
	if len(x.Counts) != 1 || x.Counts[0].Observed != 3 || x.Counts[0].Max != 2 {
		t.Fatalf("count window = %+v", x.Counts)
	}

	// --- The decision ID resolves server-side to the same clause
	// (what `stacctl explain -addr` serves). ---
	rec, ok := c.Explain(denied.DecisionID)
	if !ok {
		t.Fatalf("decision %s not resolvable via Coalition.Explain", denied.DecisionID)
	}
	if got := rec.Decision.Explanation; got == nil || got.Clause != x.Clause {
		t.Fatalf("Explain clause = %+v, audit clause = %q", got, x.Clause)
	}
	if rec.Server != "s3" {
		t.Fatalf("denial recorded at %s, want s3", rec.Server)
	}
}
