package stac

// Full-stack integration scenarios: each test drives the public
// surface the way a deployment would — policy file in, coalition up,
// agents roaming (in-process and over TCP), decisions audited.

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"stac/internal/agent"
	"stac/internal/core"
	"stac/internal/digraph"
	"stac/internal/model"
	"stac/internal/proof"
	"stac/internal/rbac"
	"stac/internal/server"
	"stac/internal/srac"
	"stac/internal/sral"
	"stac/internal/temporal"
	"stac/internal/trace"
	"stac/internal/workload"
)

const integrationPolicy = `
# Coalition-wide audit deployment.
user auditor-1
user auditor-2
role auditor
role lead-auditor
inherit lead-auditor auditor

permission p-audit read * @ * {
    spatial  count(0, 100, sigma[op=read])
    duration 500s
    scheme   global
}
permission p-seal write seal @ * {
    spatial  [auditor-1: read module/H @ *] >> [auditor-2: write seal @ *]
    mode     strict
    describe the lead seals the audit only after the last module was hashed
}
grant auditor p-audit
grant lead-auditor p-seal
assign auditor-1 auditor
assign auditor-2 lead-auditor

class audit-pool 1000s global p-audit p-seal
`

func buildIntegrationCoalition(t *testing.T) (*server.Coalition, *temporal.SimClock, *digraph.Graph) {
	t.Helper()
	clk := temporal.NewSimClock(0)
	c := server.NewCoalition(clk, []byte("integration-key"))
	c.EnableLedger()
	if err := core.LoadPolicyString(c.Engine, integrationPolicy); err != nil {
		t.Fatal(err)
	}
	g := digraph.Figure1()
	for _, s := range g.ServersOf(g.Modules()) {
		if _, err := c.AddServer(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range g.Modules() {
		m, _ := g.Module(id)
		srv, _ := c.Server(m.Server)
		srv.HostResource(m.Resource(), m.Content)
	}
	sealHost, _ := c.Server("s1")
	sealHost.HostResource("seal", nil)
	return c, clk, g
}

// The flagship scenario: auditor-1 hashes the Figure 1 modules in
// dependency order; auditor-2's strict sealing permission is gated on
// auditor-1 having read the final module, coordinated purely through
// the ledger; both draw on one pooled validity class.
func TestIntegrationAuditThenSeal(t *testing.T) {
	c, clk, g := buildIntegrationCoalition(t)

	sealProg := sral.MustParse("wait(audited); write seal @ s1")
	lead := agent.New("auditor-2",
		c.Signer.IssueCredential("auditor-2", "lead@hq", []string{"lead-auditor"}),
		sealProg, c.Signer)

	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	var steps []sral.Node
	for _, id := range order {
		m, _ := g.Module(id)
		steps = append(steps, sral.Prim{Op: model.OpRead, Resource: m.Resource(), Server: m.Server})
	}
	steps = append(steps, sral.Signal{Sig: "audited"})
	worker := agent.New("auditor-1",
		c.Signer.IssueCredential("auditor-1", "field@hq", []string{"auditor"}),
		sral.SeqOf(steps...), c.Signer)
	worker.Hooks.OnAccess = func(model.Access, []byte) { clk.Advance(1) }

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); _ = agent.Launch(c, lead) }()
	go func() { defer wg.Done(); _ = agent.Launch(c, worker) }()
	wg.Wait()

	if worker.Err() != nil {
		t.Fatalf("worker: %v", worker.Err())
	}
	if lead.Err() != nil {
		t.Fatalf("lead: %v", lead.Err())
	}
	if worker.Proofs.Len() != 8 || lead.Proofs.Len() != 1 {
		t.Fatalf("proofs = %d / %d", worker.Proofs.Len(), lead.Proofs.Len())
	}
	// The ledger saw all nine grants.
	if c.Ledger().Len() != 9 {
		t.Fatalf("ledger = %d", c.Ledger().Len())
	}
	// Audit logs across servers account for every grant.
	grants := 0
	for _, s := range c.Servers() {
		records, _ := s.Audit()
		for _, r := range records {
			if r.Granted {
				grants++
			}
		}
	}
	if grants != 9 {
		t.Fatalf("audited grants = %d", grants)
	}
	// The shared validity pool was consumed by both members.
	if got := c.Engine.ClassRemaining("auditor-1", "audit-pool"); got >= 1000 {
		t.Fatalf("pool untouched: %v", got)
	}
}

// Sealing without the audit is denied (strict gate), and the denial is
// audited with its reason.
func TestIntegrationSealWithoutAuditDenied(t *testing.T) {
	c, _, _ := buildIntegrationCoalition(t)
	lead := agent.New("auditor-2",
		c.Signer.IssueCredential("auditor-2", "lead@hq", []string{"lead-auditor"}),
		sral.MustParse("write seal @ s1"), c.Signer)
	err := agent.Launch(c, lead)
	if !errors.Is(err, server.ErrDenied) {
		t.Fatalf("ungated seal: %v", err)
	}
	s1, _ := c.Server("s1")
	records, _ := s1.Audit()
	found := false
	for _, r := range records {
		if !r.Granted && strings.Contains(r.Reason, "strict") {
			found = true
		}
	}
	if !found {
		t.Fatal("denial not audited with strict-mode reason")
	}
}

// The same deployment over TCP with the remote runtime: the worker's
// proofs travel on the wire, and the pooled validity budget expires
// mid-tour when the clock advances past the class duration.
func TestIntegrationRemoteRuntimeWithPoolExpiry(t *testing.T) {
	c, clk, g := buildIntegrationCoalition(t)
	addrs := map[model.ServerID]string{}
	for _, s := range c.Servers() {
		d := server.NewDaemon(s)
		addr, err := d.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = d.Close() })
		addrs[s.ID()] = addr
	}
	rt := &agent.RemoteRuntime{Addrs: addrs}

	order, _ := g.TopoOrder()
	var steps []sral.Node
	for _, id := range order {
		m, _ := g.Module(id)
		steps = append(steps, sral.Prim{Op: model.OpRead, Resource: m.Resource(), Server: m.Server})
	}
	worker := agent.New("auditor-1",
		c.Signer.IssueCredential("auditor-1", "field@hq", []string{"auditor"}),
		sral.SeqOf(steps...), c.Signer)
	// Each hash consumes 200s of the 1000s pool: the 6th access
	// exceeds it (the permission itself allows 500s... the PermSpec
	// duration is overridden by the class pool of 1000s; 5×200 = 1000).
	worker.Hooks.OnAccess = func(model.Access, []byte) { clk.Advance(200) }
	err := rt.Launch(worker)
	if err == nil {
		t.Fatal("pool expiry not enforced over TCP")
	}
	if !strings.Contains(err.Error(), "active-but-invalid") {
		t.Fatalf("expiry reason: %v", err)
	}
	if worker.Proofs.Len() != 5 {
		t.Fatalf("proofs before expiry = %d", worker.Proofs.Len())
	}
}

// Carried proofs from the in-process run are honoured over TCP and
// vice versa: a device may switch transports mid-life.
func TestIntegrationTransportInterop(t *testing.T) {
	c, _, _ := buildIntegrationCoalition(t)
	s1, _ := c.Server("s1")
	d := server.NewDaemon(s1)
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cred := c.Signer.IssueCredential("auditor-1", "field@hq", []string{"auditor"})
	store := proof.NewStore(c.Signer)

	// In-process access first.
	sub, err := s1.Authenticate(cred)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Request(sub, model.OpRead, "module/A", server.RequestContext{Store: store}); err != nil {
		t.Fatal(err)
	}
	s1.Depart(sub)

	// Continue over TCP carrying the same store's proofs.
	cl, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.ImportProofs(store.All())
	if err := cl.Auth(cred); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Access(model.OpRead, "module/D", "", nil); err != nil {
		t.Fatal(err)
	}
	if got := len(cl.Proofs()); got != 2 {
		t.Fatalf("carried+new proofs = %d", got)
	}
}

// Randomised enforcement soundness: under random counting-ceiling
// policies and random roaming programs, every access history the
// coalition actually granted satisfies every permission's spatial
// constraint — regardless of whether the agent's run ended in a grant
// or a denial. This is the end-to-end counterpart of the checker-level
// property tests.
func TestIntegrationRandomisedEnforcementSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(2029))
	v := workload.DefaultVocabulary(3, 4)
	for trial := 0; trial < 25; trial++ {
		clk := temporal.NewSimClock(0)
		c := server.NewCoalition(clk, []byte("soundness-key"))
		for _, id := range v.Servers {
			srv, err := c.AddServer(id)
			if err != nil {
				t.Fatal(err)
			}
			for _, res := range v.Resources {
				srv.HostResource(res, []byte("x"))
			}
		}
		// A random ceiling over a random selector.
		sel := model.Selector{Resources: []model.ResourceID{v.Resources[r.Intn(len(v.Resources))]}}
		maxN := 1 + r.Intn(4)
		constraint := srac.AtMost(maxN, sel)
		if err := c.Engine.RBAC.AddUser("o1"); err != nil {
			t.Fatal(err)
		}
		if err := c.Engine.RBAC.AddRole("roam"); err != nil {
			t.Fatal(err)
		}
		if err := c.Engine.DefinePermission(core.PermSpec{
			Perm:    rbac.Permission{ID: "p-any"},
			Spatial: constraint,
		}); err != nil {
			t.Fatal(err)
		}
		if err := c.Engine.RBAC.GrantPermission("roam", "p-any"); err != nil {
			t.Fatal(err)
		}
		if err := c.Engine.RBAC.AssignUserRole("o1", "roam"); err != nil {
			t.Fatal(err)
		}

		prog := workload.Program(r, v, workload.ProgramOptions{
			Size: 12, LoopFraction: 0.2, ParFraction: 0.2,
		})
		cred := c.Signer.IssueCredential("o1", "owner", []string{"roam"})
		ag := agent.New("o1", cred, prog, c.Signer)
		ag.MaxSteps = 300
		_ = agent.Launch(c, ag) // denial is a legitimate outcome

		// Whatever was GRANTED must satisfy the ceiling.
		granted := trace.Trace(ag.Proofs.Trace())
		if !srac.SatisfiesTrace(granted, srac.StampObject(constraint, "o1"), nil) {
			t.Fatalf("trial %d: granted history violates the policy ceiling\nconstraint: %s\nhistory: %v\nprogram: %s",
				trial, srac.String(constraint), granted, sral.String(prog))
		}
	}
}
