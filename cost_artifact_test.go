package stac

// Cost-profile baseline artifact: a fixed spatially-constrained
// workload against one coordinated engine with coverage and cost
// profiling on (the production default). The resulting per-clause
// cost report is written as COST_pr10.json when ARTIFACTS_DIR is set;
// ci.sh diffs it against the committed baseline with `benchdiff`
// (cost format), so a structural regression — clauses evaluated more
// often per decision, re-walk amplification growing — surfaces even
// when raw nanoseconds are machine-noisy.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"stac/internal/core"
	"stac/internal/model"
	"stac/internal/obs"
	"stac/internal/sral"
	"stac/internal/temporal"
	"stac/internal/trace"
)

const costArtifactPolicy = `
user o1
role worker
permission p-scan read f @ * {
    spatial count(0, 64, sigma[op=read]) and ([read dep @ *] -> ([read dep @ *] >> [read f @ *]))
}
permission p-count write log @ * {
    spatial count(0, inf, sigma[op=write])
}
grant worker p-scan
grant worker p-count
assign o1 worker
`

func TestCostBaselineArtifact(t *testing.T) {
	e := core.NewEngine(temporal.NewSimClock(0))
	e.SetObs(obs.NewRegistry())
	if err := core.LoadPolicyString(e, costArtifactPolicy); err != nil {
		t.Fatal(err)
	}
	e.EnableCoverage()
	e.EnableCostProfiling()
	sess, err := e.RBAC.CreateSession("o1")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.ActivateRole("worker"); err != nil {
		t.Fatal(err)
	}

	// 640 decisions per permission: with 1-in-64 sampling that pins
	// ≥10 timed evaluations per clause, enough for a stable-ish mean.
	// The scan-path history re-walk is 4 entries deep; every grant is
	// recorded so the amplification gauge has a real denominator.
	hist := trace.Trace{
		model.NewAccess("o1", "read", "dep", "s1"),
		model.NewAccess("o1", "read", "f", "s1"),
		model.NewAccess("o1", "read", "dep", "s1"),
		model.NewAccess("o1", "read", "f", "s1"),
	}
	prog := sral.MustParse("read f @ s1; write log @ s1")
	// Each permission runs in its own burst: the 1-in-64 tick is a
	// collector-global counter, so a strictly alternating workload
	// would alias every sampled tick onto the same permission.
	const perPerm = 640
	for _, acc := range []model.Access{
		model.NewAccess("o1", "read", "f", "s1"),
		model.NewAccess("o1", "write", "log", "s1"),
	} {
		for i := 0; i < perPerm; i++ {
			req := core.Request{Session: sess, Access: acc, History: hist}
			if i == 0 {
				req.Program = prog // one static check per permission
			}
			d := e.Authorize(req)
			if !d.Granted {
				t.Fatalf("decision %d for %s denied: %s", i, acc.Resource, d.Reason)
			}
			e.RecordGrant(acc)
		}
	}

	rep := e.CostReport()
	if len(rep.Clauses) == 0 {
		t.Fatal("no clause cost rows")
	}
	roots := 0
	for _, cc := range rep.Clauses {
		if cc.Path != "" {
			continue
		}
		roots++
		if cc.Evals != perPerm {
			t.Fatalf("%s root evals = %d, want %d", cc.Perm, cc.Evals, perPerm)
		}
		if cc.SampledEvals < perPerm/64 || cc.SampledNS <= 0 {
			t.Fatalf("%s root sampling = %d evals / %d ns", cc.Perm, cc.SampledEvals, cc.SampledNS)
		}
	}
	if roots != 2 {
		t.Fatalf("root clause rows = %d, want one per permission", roots)
	}
	if len(rep.Static) == 0 {
		t.Fatal("no static-check cost rows")
	}
	amp := rep.Amplification
	if amp.PrefixEvals != 2*perPerm || amp.Appends != 2*perPerm {
		t.Fatalf("amplification = %+v", amp)
	}

	if dir := os.Getenv("ARTIFACTS_DIR"); dir != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "COST_pr10.json"), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
