#!/bin/sh
# Tier-1 verification loop: format gate, build, vet, test, then test
# again under the race detector. Run from the repository root; any
# failure aborts.
#
# A note on the race pass: the seed tree was already race-clean when
# -race joined this loop, so a failure here means a regression, not
# pre-existing debt.
set -eux

# Formatting is a hard gate: any file gofmt would rewrite fails the
# run, with the offenders listed.
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go build ./...
go vet ./...
go test ./...
go test -race ./...
# Fuzz smoke: a couple of seconds per target, so a crasher in any
# parser/decoder surfaces in CI without a dedicated fuzzing job. The
# seed corpora also run as plain tests in the passes above; this adds
# a short randomised probe on top.
go test -run '^$' -fuzz '^FuzzRecordDecode$' -fuzztime 2s ./internal/obs/record
go test -run '^$' -fuzz '^FuzzLoadPolicy$' -fuzztime 2s ./internal/core
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 2s ./internal/srac
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 2s ./internal/sral
go test -run '^$' -fuzz '^FuzzParseRegular$' -fuzztime 2s ./internal/sral
go test -run '^$' -fuzz '^FuzzJournalDecode$' -fuzztime 2s ./internal/obs/journal

# Smoke outputs are build products, not sources: they land in
# $ARTIFACTS_DIR (CI sets it and uploads the directory; locally it
# defaults to a temp dir so nothing litters the working tree).
ARTIFACTS=${ARTIFACTS_DIR:-$(mktemp -d)}
mkdir -p "$ARTIFACTS"

# Benchmark smoke: one iteration each, so a broken benchmark (or a
# regression that panics only on the bench path) fails CI without
# paying for a real measurement run. The sweep includes the E14
# contention benchmarks (root package), so the sharded-engine parallel
# path runs under CI every time. The output lands in a file first
# (a pipe would mask go test's exit status under set -e), then
# `benchdiff -distill` turns it into the BENCH artifact — ns/op,
# allocs/op and the host fingerprint benchdiff uses to flag
# cross-machine comparisons.
go test -bench . -benchtime=1x -benchmem -run '^$' ./... >"$ARTIFACTS/bench_smoke.txt"
go run ./cmd/benchdiff -distill "$ARTIFACTS/bench_smoke.txt" >"$ARTIFACTS/BENCH_pr8.json"
# Compare against the committed previous-PR baseline. Regressions
# beyond 25% (ns/op or allocs/op) surface as CI warnings (benchdiff
# exits 0 on warnings — a 1x smoke run is too noisy to gate on).
go run ./cmd/benchdiff BENCH_pr7.json "$ARTIFACTS/BENCH_pr8.json"

# Contention-profile digest: rerun the E14 contention benchmarks with
# mutex/block profiling on and distil each profile's hot frames into a
# JSON digest next to the bench numbers, so a regression hunt starts
# from "which lock got hot" instead of a raw pprof blob. On the
# sharded engine the mutex digest is typically EMPTY — near-zero
# contended unlocks is the property PR 7 bought, and a digest that
# suddenly grows frames is exactly the regression signal this exists
# to catch; the block digest always names the scheduler-wait frames.
go test -bench 'E14_ContentionScaling|AuthorizeMany' -benchtime=1000x -run '^$' \
    -mutexprofilefraction 16 -mutexprofile "$ARTIFACTS/mutex_smoke.pb.gz" \
    -blockprofile "$ARTIFACTS/block_smoke.pb.gz" . >/dev/null
go run ./cmd/benchdiff -digest mutex "$ARTIFACTS/mutex_smoke.pb.gz" >"$ARTIFACTS/PROFILE_mutex_pr8.json"
go run ./cmd/benchdiff -digest block "$ARTIFACTS/block_smoke.pb.gz" >"$ARTIFACTS/PROFILE_block_pr8.json"

# Load smoke: a short scenario-matrix run over real TCP — one churn
# and one hostile scenario against the coordinated engine and the RBAC
# floor, time boxes capped to keep the whole smoke near ten seconds.
# The summary diffs against the committed LOAD_pr6.json baseline:
# drift warns at 50%, and a throughput collapse beyond 90% fails the
# build (cross-machine load numbers are noisy, order-of-magnitude
# slips are not).
go run ./cmd/stacload -scenarios scenarios -systems stac,rbac \
    -only churn,hostile -trials 1 -duration-cap 1s -out "$ARTIFACTS/LOAD_pr8.json"
go run ./cmd/benchdiff -threshold 50 -fail-over 90 LOAD_pr6.json "$ARTIFACTS/LOAD_pr8.json"

# Timeline smoke: the PR 9 acceptance e2e — three TCP daemons, one
# clock skewed −5 s, a roaming itinerary — re-run with the artifact
# dir set so it writes TIMELINE_pr9.json, then gate on the merged
# stream being causally clean. (The test itself asserts much more;
# the grep is the cheap tamper-check that the artifact says so too.)
ARTIFACTS_DIR="$ARTIFACTS" go test -run '^TestTimelineMergesSkewedCoalition$' -count=1 .
grep -q '"causality_violations": 0' "$ARTIFACTS/TIMELINE_pr9.json"

# Cost-profile smoke: the PR 10 fixed workload re-run with the
# artifact dir set so it writes COST_pr10.json (the per-clause
# evaluation-cost report), then diffed against the committed baseline
# with benchdiff's cost format. Per-clause ns/eval drift warns at 50%;
# only an order-of-magnitude blow-up (a clause suddenly evaluated far
# more, or re-walks amplifying) fails the build — raw nanoseconds are
# too machine-noisy to gate tighter on a shared runner.
ARTIFACTS_DIR="$ARTIFACTS" go test -run '^TestCostBaselineArtifact$' -count=1 .
go run ./cmd/benchdiff -threshold 50 -fail-over 900 COST_pr10.json "$ARTIFACTS/COST_pr10.json"
echo "smoke artifacts in $ARTIFACTS"
