#!/bin/sh
# Tier-1 verification loop: format gate, build, vet, test, then test
# again under the race detector. Run from the repository root; any
# failure aborts.
#
# A note on the race pass: the seed tree was already race-clean when
# -race joined this loop, so a failure here means a regression, not
# pre-existing debt.
set -eux

# Formatting is a hard gate: any file gofmt would rewrite fails the
# run, with the offenders listed.
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go build ./...
go vet ./...
go test ./...
go test -race ./...
# Fuzz smoke: a couple of seconds per target, so a crasher in any
# parser/decoder surfaces in CI without a dedicated fuzzing job. The
# seed corpora also run as plain tests in the passes above; this adds
# a short randomised probe on top.
go test -run '^$' -fuzz '^FuzzRecordDecode$' -fuzztime 2s ./internal/obs/record
go test -run '^$' -fuzz '^FuzzLoadPolicy$' -fuzztime 2s ./internal/core
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 2s ./internal/srac
go test -run '^$' -fuzz '^FuzzParse$' -fuzztime 2s ./internal/sral
go test -run '^$' -fuzz '^FuzzParseRegular$' -fuzztime 2s ./internal/sral

# Benchmark smoke: one iteration each, so a broken benchmark (or a
# regression that panics only on the bench path) fails CI without
# paying for a real measurement run. The sweep includes the E14
# contention benchmarks (root package), so the sharded-engine parallel
# path runs under CI every time. The output lands in a file first
# (a pipe would mask go test's exit status under set -e), then gets
# distilled into BENCH_pr7.json for the CI artifact.
go test -bench . -benchtime=1x -benchmem -run '^$' ./... >bench_smoke.txt
awk '
    BEGIN { print "[" }
    /^Benchmark/ && $8 == "allocs/op" {
        if (n++) printf ",\n"
        printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", $1, $3, $7
    }
    END { print "\n]" }
' bench_smoke.txt >BENCH_pr7.json
rm bench_smoke.txt
# Compare against the committed previous-PR baseline. Regressions
# beyond 25% ns/op surface as CI warnings (benchdiff exits 0 on
# warnings — a 1x smoke run is too noisy to gate on).
go run ./cmd/benchdiff BENCH_pr5.json BENCH_pr7.json

# Load smoke: a short scenario-matrix run over real TCP — one churn
# and one hostile scenario against the coordinated engine and the RBAC
# floor, time boxes capped to keep the whole smoke near ten seconds.
# The summary diffs against the committed LOAD_pr6.json baseline:
# drift warns at 50%, and a throughput collapse beyond 90% fails the
# build (cross-machine load numbers are noisy, order-of-magnitude
# slips are not).
go run ./cmd/stacload -scenarios scenarios -systems stac,rbac \
    -only churn,hostile -trials 1 -duration-cap 1s -out LOAD_pr6.new.json
go run ./cmd/benchdiff -threshold 50 -fail-over 90 LOAD_pr6.json LOAD_pr6.new.json
