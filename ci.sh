#!/bin/sh
# Tier-1 verification loop: build, vet, test, then test again under
# the race detector. Run from the repository root; any failure aborts.
#
# A note on the race pass: the seed tree was already race-clean when
# -race joined this loop, so a failure here means a regression, not
# pre-existing debt.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...
# Benchmark smoke: one iteration each, so a broken benchmark (or a
# regression that panics only on the bench path) fails CI without
# paying for a real measurement run.
go test -bench . -benchtime=1x -run '^$' ./...
